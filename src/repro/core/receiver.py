"""Process ``q`` — the receiver (Sections 2 and 4 of the paper).

Two concrete receivers share :class:`BaseReceiver`:

* :class:`UnprotectedReceiver` — the Section 2 process: just the window
  ``(wdw, r)``.  On wake-up after a reset the window state is gone and q
  "resumes its operation with r set to 0" (Section 3) — at which point an
  adversary can replay the entire pre-reset history.

* :class:`SaveFetchReceiver` — the Section 4 process.  After processing
  each message it checks ``r >= Kq + lst`` and if so initiates a
  background ``SAVE(r)``.  On wake-up it runs ``FETCH(r);
  SAVE(r + 2Kq); r := r + 2Kq; lst := r`` and floods the whole window to
  *received* ("every sequence number up to r should be assumed to be
  already received").  Messages arriving while the post-wake SAVE is in
  flight are "temporarily kept ... in a buffer" and adjudicated after the
  commit — both behaviours are implemented literally.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

from repro.core.audit import DeliveryAuditor
from repro.core.encap import IntegrityError, open_packet
from repro.core.persistent import PersistentStore
from repro.ipsec.costs import CostModel, PAPER_COSTS
from repro.ipsec.replay_window import (
    ArrayReplayWindow,
    BitmapReplayWindow,
    ReplayWindow,
    Verdict,
)
from repro.ipsec.sa import SecurityAssociation
from repro.sim.engine import Engine
from repro.sim.process import SimProcess
from repro.util.validation import check_positive

#: Listener signature for :meth:`BaseReceiver.add_process_listener`:
#: ``(packet, verdict)`` after every processed packet.
ProcessListener = Callable[[Any, Verdict], None]

#: Default window size; RFC 2401 recommends a minimum of 32, default 64.
DEFAULT_WINDOW = 64


def make_window(w: int, impl: str = "bitmap") -> ReplayWindow:
    """Build a replay window of size ``w``.

    ``impl``: ``"bitmap"`` (RFC 2401 style, default), ``"array"``
    (paper-literal boolean array) or ``"blocked"`` (RFC 6479 block ring;
    requires ``w`` to be a multiple of 32).
    """
    if impl == "bitmap":
        return BitmapReplayWindow(w)
    if impl == "array":
        return ArrayReplayWindow(w)
    if impl == "blocked":
        from repro.ipsec.replay_window_blocked import BlockedReplayWindow

        return BlockedReplayWindow(w)
    raise ValueError(
        f"unknown window impl {impl!r}; expected 'bitmap', 'array' or 'blocked'"
    )


@dataclass
class ReceiverResetRecord:
    """Everything about one receiver reset/wake cycle (feeds Fig. 2 / E2 / E4).

    Attributes:
        reset_time: when the reset hit.
        right_edge_at_reset: ``r`` at crash time.
        save_in_flight: whether a background SAVE was executing (Fig. 2's
            two cases).
        fetched: value FETCH returned on wake (None for unprotected).
        resumed_right_edge: ``r`` after recovery completed.
        wake_time: when the host came back up.
        resume_time: when normal processing resumed (post-wake SAVE
            committed and the buffer drained).
        buffered_during_wake: messages held in the wake buffer.
    """

    reset_time: float
    right_edge_at_reset: int
    save_in_flight: bool
    fetched: int | None
    resumed_right_edge: int | None = None
    wake_time: float | None = None
    resume_time: float | None = None
    buffered_during_wake: int = 0

    @property
    def gap(self) -> int | None:
        """Fig. 2's gap: right edge at reset minus the fetched value."""
        if self.fetched is None:
            return None
        return self.right_edge_at_reset - self.fetched


class BaseReceiver(SimProcess):
    """Common receiver machinery: decapsulation, window, fault hooks.

    Args:
        engine: simulation engine.
        name: trace name (conventionally ``"q"``).
        w: anti-replay window size.
        window_impl: ``"bitmap"`` (default) or ``"array"`` (paper-literal).
        costs: operation cost model.
        auditor: optional :class:`DeliveryAuditor` for run scoring.
        sa: security association for ESP/AH decapsulation.
        encap: ``"plain"`` (default), ``"esp"`` or ``"ah"``.
        on_deliver: optional callback ``(seq, payload)`` per delivery.
    """

    def __init__(
        self,
        engine: Engine,
        name: str,
        w: int = DEFAULT_WINDOW,
        window_impl: str = "bitmap",
        costs: CostModel = PAPER_COSTS,
        auditor: DeliveryAuditor | None = None,
        sa: SecurityAssociation | None = None,
        encap: str = "plain",
        on_deliver: Callable[[int, bytes], None] | None = None,
    ) -> None:
        super().__init__(engine, name)
        check_positive("w", w)
        self.w = int(w)
        self.window_impl = window_impl
        self.window: ReplayWindow = make_window(self.w, window_impl)
        self.costs = costs
        self.auditor = auditor
        self.sa = sa
        self.encap = encap
        self.on_deliver = on_deliver
        # Host/fault state.
        self.is_up = True
        self.wait = False
        # Statistics.
        self.delivered_total = 0
        self.verdict_counts: dict[Verdict, int] = {v: 0 for v in Verdict}
        self.integrity_failures = 0
        self.dropped_while_down = 0
        self.delivered_log: list[tuple[float, int]] = []
        self.reset_records: list[ReceiverResetRecord] = []
        self._process_listeners: list[ProcessListener] = []
        self._resume_listeners: list[Callable[[], None]] = []
        self._wake_buffer: list[Any] = []

    # ------------------------------------------------------------------
    # Receive path
    # ------------------------------------------------------------------
    @property
    def right_edge(self) -> int:
        """Current right edge ``r`` of the anti-replay window."""
        return self.window.right_edge

    def add_process_listener(self, listener: ProcessListener) -> None:
        """Register a callback invoked after every processed packet."""
        self._process_listeners.append(listener)

    def add_resume_listener(self, listener: Callable[[], None]) -> None:
        """Register a callback invoked when post-reset recovery completes."""
        self._resume_listeners.append(listener)

    def _notify_resumed(self) -> None:
        for listener in self._resume_listeners:
            listener()

    def on_receive(self, packet: Any) -> None:
        """Link sink: handle one arriving packet."""
        if not self.is_up:
            # The host is off; the packet is lost like any other arriving
            # at a dead interface.
            self.dropped_while_down += 1
            if self.traced:
                self.trace("drop_down", packet=repr(packet))
            return
        if self.wait:
            # Section 4: buffer until the post-wake SAVE commits.
            self._wake_buffer.append(packet)
            if self.reset_records:
                self.reset_records[-1].buffered_during_wake += 1
            if self.traced:
                self.trace("buffer", packet=repr(packet))
            return
        self._process(packet)

    def _process(self, packet: Any) -> None:
        try:
            seq, payload = open_packet(self.encap, self.sa, packet)
        except IntegrityError:
            self.integrity_failures += 1
            if self.traced:
                self.trace("integrity_fail", packet=repr(packet))
            if self.auditor is not None:
                self.auditor.note_processed(packet, DeliveryAuditor.INTEGRITY_FAIL)
            return
        verdict = self.window.update(seq)
        self.verdict_counts[verdict] += 1
        if self.auditor is not None:
            self.auditor.note_processed(packet, verdict)
        if verdict.accepted:
            self.delivered_total += 1
            self.delivered_log.append((self.now, seq))
            if self.traced:
                self.trace("deliver", seq=seq, verdict=verdict.value)
            if self.on_deliver is not None:
                self.on_deliver(seq, payload)
        else:
            if self.traced:
                self.trace("discard", seq=seq, verdict=verdict.value)
        self._after_process(verdict)
        for listener in self._process_listeners:
            listener(packet, verdict)

    def _after_process(self, verdict: Verdict) -> None:
        """Hook for subclasses (the SAVE check of Section 4)."""

    # ------------------------------------------------------------------
    # Faults
    # ------------------------------------------------------------------
    def reset(self, down_for: float | None = 0.0) -> ReceiverResetRecord:
        """A reset hits the host: the window and counters are lost.

        Args:
            down_for: down time before waking (``None`` = wait for an
                explicit :meth:`wake`).
        """
        record = ReceiverResetRecord(
            reset_time=self.now,
            right_edge_at_reset=self.window.right_edge,
            save_in_flight=self._save_in_flight(),
            fetched=None,
        )
        self.reset_records.append(record)
        self.trace("reset", right_edge=record.right_edge_at_reset)
        self.is_up = False
        self.wait = True
        self._wake_buffer.clear()  # volatile; lost with the host
        self._on_crash(record)
        if down_for is not None:
            self.call_later(down_for, self.wake)
        return record

    def wake(self) -> None:
        """The host comes back up; run the recovery action."""
        if self.is_up:
            return
        self.is_up = True
        record = self.reset_records[-1]
        record.wake_time = self.now
        self.trace("wake")
        self._on_wake(record)

    def _save_in_flight(self) -> bool:
        """Whether a background SAVE is executing (subclass)."""
        return False

    def _on_crash(self, record: ReceiverResetRecord) -> None:
        """Subclass hook: abort in-flight persistent operations."""

    def _on_wake(self, record: ReceiverResetRecord) -> None:
        """Subclass hook: the paper's third action."""
        raise NotImplementedError

    def _drain_wake_buffer(self) -> None:
        buffered, self._wake_buffer = self._wake_buffer, []
        for packet in buffered:
            self._process(packet)


class UnprotectedReceiver(BaseReceiver):
    """The Section 2 receiver: window state only, no persistence.

    On wake-up the window is recreated in its cold-start state (``r = 0``):
    every sequence number above 0 now looks fresh, which is what lets the
    Section 3 adversary replay the entire history.
    """

    def _on_wake(self, record: ReceiverResetRecord) -> None:
        self.window = make_window(self.w, self.window_impl)
        record.resumed_right_edge = self.window.right_edge
        record.resume_time = self.now
        self.wait = False
        self.trace("resume", r=self.window.right_edge)
        self._drain_wake_buffer()
        self._notify_resumed()


class SaveFetchReceiver(BaseReceiver):
    """The Section 4 receiver with SAVE and FETCH.

    Args:
        k: the SAVE interval ``Kq`` (window advance between checkpoints).
        store: persistent store (default: built from ``costs``, initial
            value 0 matching ``lst`` initially 0).
        leap_factor: multiple of ``k`` added on wake (paper: 2; E11 ablates).
        skip_wake_save: ablation switch for the synchronous post-wake SAVE.
        **base_kwargs: forwarded to :class:`BaseReceiver`.
    """

    def __init__(
        self,
        engine: Engine,
        name: str,
        k: int,
        store: PersistentStore | None = None,
        leap_factor: int = 2,
        skip_wake_save: bool = False,
        **base_kwargs: Any,
    ) -> None:
        super().__init__(engine, name, **base_kwargs)
        check_positive("k", k)
        self.k = int(k)
        if leap_factor < 0:
            raise ValueError(f"leap_factor must be >= 0, got {leap_factor}")
        self.leap_factor = int(leap_factor)
        self.skip_wake_save = skip_wake_save
        if store is None:
            store = PersistentStore(
                engine,
                f"disk:{name}",
                t_save=self.costs.t_save,
                t_fetch=self.costs.t_fetch,
                initial_value=0,
            )
        self.store = store
        self.lst = 0  # last stored sequence number, initially 0 (paper)

    # -- Section 4, first action: background SAVE every Kq advance ------
    def _after_process(self, verdict: Verdict) -> None:
        r = self.window.right_edge
        if r >= self.k + self.lst:
            self.lst = r
            self.store.begin_save(r)  # "& SAVE(r)" — in the background

    def _save_in_flight(self) -> bool:
        return self.store.save_in_flight

    # -- Section 4, second action: reset --------------------------------
    def _on_crash(self, record: ReceiverResetRecord) -> None:
        self.store.crash()

    # -- Section 4, third action: wake-up recovery ----------------------
    def _on_wake(self, record: ReceiverResetRecord) -> None:
        fetched = self.store.fetch()
        record.fetched = fetched
        leaped = fetched + self.leap_factor * self.k

        def resume() -> None:
            self.window = make_window(self.w, self.window_impl)
            self.window.resume(leaped)  # r := fetched + 2Kq, wdw all true
            self.lst = leaped
            self.wait = False
            record.resumed_right_edge = leaped
            record.resume_time = self.now
            self.trace("resume", r=leaped, fetched=fetched)
            self._drain_wake_buffer()
            self._notify_resumed()

        if self.skip_wake_save:
            self.call_later(self.store.fetch_delay(), resume)
            return

        def after_fetch() -> None:
            self.store.begin_save(leaped, on_commit=resume, synchronous=True)

        fetch_delay = self.store.fetch_delay()
        if fetch_delay > 0:
            self.call_later(fetch_delay, after_fetch)
        else:
            after_fetch()
