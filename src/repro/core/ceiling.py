"""Write-ahead *ceiling* variant — a repair discovered by this reproduction.

Model-checking the paper's SAVE/FETCH protocol (see
:mod:`repro.verify`) confirms its Section 5 theorems for the setting the
proofs assume — a lossless channel and resets on one side at a time — but
finds two boundary cases where "no replayed message will be accepted"
fails:

1. **loss before a receiver reset**: if the channel drops messages, one
   received message can advance the right edge ``r`` by more than ``Kq``,
   so the last committed checkpoint can lag ``r`` by more than ``2Kq``
   and the wake-up leap no longer clears every delivered sequence number;
2. **staggered dual resets**: a sender reset leaps ``s`` by ``2Kp``,
   which (once one post-leap message arrives) jumps ``r`` the same way;
   a receiver reset landing inside the following save window has the same
   effect.

Both have one root cause: SAVE checkpoints *where the counter has been*,
so its guarantee degrades when the counter moves faster than the
checkpoint cadence.  The classical fix — used by production IPsec
implementations for the sender counter — is to checkpoint *where the
counter is allowed to go*:

* The :class:`CeilingSender` never sends a sequence number unless a
  strictly larger **ceiling** is already committed to persistent memory;
  it reserves ``k`` numbers ahead in the background.  On wake-up it
  simply resumes at ``s := FETCH()``: every previously used number is
  strictly below the fetched ceiling, unconditionally.
* The :class:`CeilingReceiver` never *delivers* a sequence number unless
  it is strictly below the committed ceiling; messages at or above it are
  buffered while a new ceiling is committed.  On wake-up it resumes with
  ``r := FETCH()`` and the window flooded — every previously delivered
  number is below the new right edge, so no replay is accepted, under
  loss, reorder and arbitrarily interleaved resets.

The price is a bounded stall (at most one save latency) when traffic
outruns the reservation, and up to ``k`` sequence numbers lost per reset
(vs ``2k`` for SAVE/FETCH).  The APN form of this protocol is
:func:`repro.apn.specs_ceiling.make_ceiling_system`, which the explorer
verifies safe in exactly the configurations where SAVE/FETCH fails.
"""

from __future__ import annotations

from typing import Any

from repro.core.persistent import PersistentStore
from repro.core.receiver import BaseReceiver, ReceiverResetRecord, make_window
from repro.core.sender import BaseSender, SenderResetRecord
from repro.ipsec.replay_window import Verdict
from repro.net.link import PacketPipe
from repro.sim.engine import Engine
from repro.util.validation import check_positive


class CeilingSender(BaseSender):
    """Sender that persists a sequence-number ceiling *before* using it.

    Args:
        k: reservation chunk — how many sequence numbers each ceiling
            save covers.  Line-rate operation needs ``k`` at least the
            cost model's ``min_save_interval()`` (the paper's sizing
            rule, unchanged): each save must grant at least as many
            numbers as are consumed while it commits.
        headroom: start reserving the next chunk when at most this many
            numbers remain under the committed ceiling.  Defaults to the
            cost model's ``min_save_interval()`` — one save latency of
            line-rate sending — so the next chunk lands before the
            current one is exhausted.  Too-small headroom only *stalls*
            (counted, never unsafe).
        **base_kwargs: forwarded to :class:`BaseSender`.
    """

    def __init__(
        self,
        engine: Engine,
        name: str,
        pipe: PacketPipe,
        k: int,
        store: PersistentStore | None = None,
        headroom: int | None = None,
        **base_kwargs: Any,
    ) -> None:
        super().__init__(engine, name, pipe, **base_kwargs)
        check_positive("k", k)
        self.k = int(k)
        if headroom is None:
            headroom = self.costs.min_save_interval()
        self.headroom = max(1, int(headroom))
        if store is None:
            store = PersistentStore(
                engine,
                f"disk:{name}",
                t_save=self.costs.t_save,
                t_fetch=self.costs.t_fetch,
                # The SA-establishment write: the first chunk is reserved
                # before the first message is ever sent.
                initial_value=1 + self.k,
            )
        self.store = store
        self.stalls = 0

    @property
    def committed_ceiling(self) -> int:
        """Largest value such that every used seq is strictly below it."""
        return self.store.committed_value

    @property
    def can_send(self) -> bool:
        return super().can_send and self.s < self.committed_ceiling

    def send_one(self) -> bool:
        if self.is_up and not self.wait and self.s >= self.committed_ceiling:
            # Traffic outran the reservation: stall (and make sure a
            # reservation is in flight so the stall is bounded).
            self.stalls += 1
            self._reserve_if_needed()
            self.sends_suppressed += 1
            self.trace("stall", s=self.s, ceiling=self.committed_ceiling)
            return False
        return super().send_one()

    def _after_send(self) -> None:
        self._reserve_if_needed()

    def _reserve_if_needed(self) -> None:
        remaining = self.committed_ceiling - self.s
        if remaining <= self.headroom and not self.store.save_in_flight:
            self.store.begin_save(self.committed_ceiling + self.k)

    def _save_in_flight(self) -> bool:
        return self.store.save_in_flight

    def _on_crash(self, record: SenderResetRecord) -> None:
        self.store.crash()

    def _on_wake(self, record: SenderResetRecord) -> None:
        def resume() -> None:
            fetched = self.store.fetch()
            record.fetched = fetched
            # Every used sequence number is < fetched; no leap needed.
            self.s = fetched
            self.wait = False
            record.resumed_seq = self.s
            record.resume_time = self.now
            self.trace("resume", s=self.s, fetched=fetched)
            self._notify_resumed()

        fetch_delay = self.store.fetch_delay()
        if fetch_delay > 0:
            self.call_later(fetch_delay, resume)
        else:
            resume()


class CeilingReceiver(BaseReceiver):
    """Receiver that persists a delivery ceiling *before* crossing it.

    A message whose sequence number is at or above the committed ceiling
    is buffered; a new ceiling covering it (plus ``k`` slack) is saved;
    the buffer drains on commit.  Wake-up resumes at ``r := FETCH()``
    with the window flooded — no replayed message is ever accepted,
    regardless of loss, reorder or concurrent sender resets.
    """

    def __init__(
        self,
        engine: Engine,
        name: str,
        k: int,
        store: PersistentStore | None = None,
        **base_kwargs: Any,
    ) -> None:
        super().__init__(engine, name, **base_kwargs)
        check_positive("k", k)
        self.k = int(k)
        if store is None:
            store = PersistentStore(
                engine,
                f"disk:{name}",
                t_save=self.costs.t_save,
                t_fetch=self.costs.t_fetch,
                initial_value=self.k,  # first chunk reserved at SA setup
            )
        self.store = store
        self.buffered_for_ceiling = 0
        self._ceiling_buffer: list[Any] = []
        self._raise_in_flight = False

    @property
    def committed_ceiling(self) -> int:
        """Every delivered seq is strictly below this committed value."""
        return self.store.committed_value

    def _process(self, packet: Any) -> None:
        seq = getattr(packet, "seq", None)
        if (
            isinstance(seq, int)
            and seq >= self.committed_ceiling
            and self.is_up
            and not self.wait
        ):
            # Crossing the ceiling: hold the packet, commit a higher one.
            self._ceiling_buffer.append(packet)
            self.buffered_for_ceiling += 1
            self.trace("ceiling_buffer", seq=seq, ceiling=self.committed_ceiling)
            self._raise_ceiling(seq + self.k)
            return
        super()._process(packet)

    def _raise_ceiling(self, target: int) -> None:
        if self._raise_in_flight:
            return

        self._raise_in_flight = True
        highest = max(
            [target]
            + [
                packet.seq + self.k
                for packet in self._ceiling_buffer
                if isinstance(getattr(packet, "seq", None), int)
            ]
        )

        def on_commit() -> None:
            self._raise_in_flight = False
            buffered, self._ceiling_buffer = self._ceiling_buffer, []
            for packet in buffered:
                self._process(packet)

        self.store.begin_save(highest, on_commit=on_commit)

    def _after_process(self, verdict: Verdict) -> None:
        # Proactive background reservation, mirroring the sender.
        r = self.window.right_edge
        if (
            self.committed_ceiling - r <= max(1, self.k // 2)
            and not self.store.save_in_flight
        ):
            self.store.begin_save(self.committed_ceiling + self.k)

    def _save_in_flight(self) -> bool:
        return self.store.save_in_flight

    def _on_crash(self, record: ReceiverResetRecord) -> None:
        self.store.crash()
        self._ceiling_buffer.clear()
        self._raise_in_flight = False

    def _on_wake(self, record: ReceiverResetRecord) -> None:
        def resume() -> None:
            fetched = self.store.fetch()
            record.fetched = fetched
            self.window = make_window(self.w, self.window_impl)
            self.window.resume(fetched)  # r := ceiling, all marked seen
            self.wait = False
            record.resumed_right_edge = fetched
            record.resume_time = self.now
            self.trace("resume", r=fetched)
            self._drain_wake_buffer()
            self._notify_resumed()

        fetch_delay = self.store.fetch_delay()
        if fetch_delay > 0:
            self.call_later(fetch_delay, resume)
        else:
            resume()
