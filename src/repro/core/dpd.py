"""Dead-peer detection (system S12).

Section 3 and the concluding remarks lean on reset *detection*: the IETF
remedy fires "once the reset is detected", and the Section 6 recovery
keeps SAs alive "after one host ... detects the unavailability of its
peer".  The two mechanisms the paper cites are:

* draft-ietf-ipsec-heartbeats ("Using ISAKMP Heartbeats for Dead Peer
  Detection") — periodic proactive probes: :class:`HeartbeatDpd`.
* draft-ietf-ipsec-dpd ("A Traffic-Based Method of Detecting Dead IKE
  Peers") — probe only when traffic is flowing out but nothing is coming
  back: :class:`TrafficDpd`.

Both report the same outcome: a *detection time* (reset -> declared dead),
the quantity the E7 recovery-latency comparison feeds on.
"""

from __future__ import annotations

from typing import Callable

from repro.sim.engine import Engine
from repro.sim.process import SimProcess, Timer
from repro.util.validation import check_non_negative, check_positive

#: Callback invoked with a probe token; must get the probe to the peer.
ProbeSender = Callable[[int], None]
#: Callback invoked once when the peer is declared dead.
DeadCallback = Callable[[], None]


class _DpdBase(SimProcess):
    """Probe bookkeeping shared by both DPD flavours."""

    def __init__(
        self,
        engine: Engine,
        name: str,
        send_probe: ProbeSender,
        on_dead: DeadCallback,
        timeout: float,
        max_misses: int,
    ) -> None:
        super().__init__(engine, name)
        check_positive("timeout", timeout)
        check_positive("max_misses", max_misses)
        self.send_probe = send_probe
        self.on_dead = on_dead
        self.timeout = timeout
        self.max_misses = int(max_misses)
        self.peer_alive = True
        self.declared_dead_at: float | None = None
        self.probes_sent = 0
        self.acks_received = 0
        self._misses = 0
        self._next_token = 1
        self._outstanding: set[int] = set()

    def _probe(self) -> None:
        token = self._next_token
        self._next_token += 1
        self._outstanding.add(token)
        self.probes_sent += 1
        self.trace("probe", token=token)
        self.send_probe(token)
        self.call_later(self.timeout, self._check_token, token)

    def on_probe_ack(self, token: int) -> None:
        """The peer answered probe ``token``."""
        if token not in self._outstanding:
            return  # late or duplicate ack
        self._outstanding.discard(token)
        self.acks_received += 1
        self._misses = 0
        if not self.peer_alive:
            self.peer_alive = True
            self.declared_dead_at = None
            self.trace("peer_revived")

    def _check_token(self, token: int) -> None:
        if token not in self._outstanding:
            return  # answered in time
        self._outstanding.discard(token)
        self._misses += 1
        self.trace("probe_timeout", token=token, misses=self._misses)
        if self._misses >= self.max_misses and self.peer_alive:
            self.peer_alive = False
            self.declared_dead_at = self.now
            self.trace("peer_dead")
            self.on_dead()


class HeartbeatDpd(_DpdBase):
    """Proactive periodic probing (the heartbeats draft).

    Worst-case detection time is
    ``interval + max_misses * max(interval, timeout)`` — the cost of
    proactivity is steady probe traffic even when the SA is busy.
    """

    def __init__(
        self,
        engine: Engine,
        name: str,
        send_probe: ProbeSender,
        on_dead: DeadCallback,
        interval: float,
        timeout: float,
        max_misses: int = 3,
    ) -> None:
        super().__init__(engine, name, send_probe, on_dead, timeout, max_misses)
        check_positive("interval", interval)
        self.interval = interval
        self._timer = Timer(engine, interval, self._probe)

    def start(self, first_delay: float | None = None) -> None:
        """Begin probing."""
        self._timer.start(first_delay=first_delay)

    def stop(self) -> None:
        """Stop probing."""
        self._timer.stop()


class TrafficDpd(_DpdBase):
    """Traffic-based probing (the DPD draft).

    The host tells the detector about its own sends (:meth:`note_sent`)
    and about anything received from the peer (:meth:`note_received`).
    A probe is sent only when there has been outbound traffic but nothing
    inbound for ``idle_threshold`` — "there is no need to prove liveness
    when there is no traffic to protect".
    """

    def __init__(
        self,
        engine: Engine,
        name: str,
        send_probe: ProbeSender,
        on_dead: DeadCallback,
        idle_threshold: float,
        timeout: float,
        max_misses: int = 3,
        check_interval: float | None = None,
    ) -> None:
        super().__init__(engine, name, send_probe, on_dead, timeout, max_misses)
        check_positive("idle_threshold", idle_threshold)
        self.idle_threshold = idle_threshold
        self.last_sent: float | None = None
        self.last_received: float | None = None
        interval = check_interval if check_interval is not None else idle_threshold / 2
        check_positive("check interval", interval)
        self._timer = Timer(engine, interval, self._maybe_probe)

    def start(self, first_delay: float | None = None) -> None:
        """Begin idle monitoring."""
        self._timer.start(first_delay=first_delay)

    def stop(self) -> None:
        """Stop idle monitoring."""
        self._timer.stop()

    def note_sent(self) -> None:
        """The host sent protected traffic to the peer."""
        self.last_sent = self.now

    def note_received(self) -> None:
        """The host received protected traffic from the peer (proof of life)."""
        self.last_received = self.now
        self.on_probe_ack_any()

    def on_probe_ack_any(self) -> None:
        """Any inbound traffic counts as an implicit ack for all probes."""
        for token in list(self._outstanding):
            self.on_probe_ack(token)

    def _maybe_probe(self) -> None:
        if self.last_sent is None:
            return  # nothing outbound: nothing to prove
        received_recently = (
            self.last_received is not None
            and self.now - self.last_received < self.idle_threshold
        )
        if received_recently:
            return
        if self.now - self.last_sent > self.idle_threshold:
            return  # conversation fully idle; don't probe
        if self._outstanding:
            return  # one probe at a time; its timeout drives the misses
        self._probe()


def detection_time(dpd: _DpdBase, reset_time: float) -> float | None:
    """Reset -> declared-dead latency, or None if not (yet) detected."""
    check_non_negative("reset_time", reset_time)
    if dpd.declared_dead_at is None:
        return None
    return dpd.declared_dead_at - reset_time
