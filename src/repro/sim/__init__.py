"""Deterministic discrete-event simulation engine (system S1).

The engine is a classic event-heap simulator:

* :class:`~repro.sim.engine.Engine` owns the virtual clock and the event
  heap and runs callbacks in ``(time, priority, insertion order)`` order,
  which makes every run fully deterministic.
* :class:`~repro.sim.events.Event` is a cancellable scheduled callback.
* :class:`~repro.sim.process.SimProcess` is the base class for simulated
  entities (hosts, links, adversaries) that need to schedule work.
* :class:`~repro.sim.process.Timer` is a recurring timer built on top.
* :class:`~repro.sim.trace.TraceRecorder` captures a structured log of
  everything that happened, for debugging and for assertions in tests.
* :mod:`~repro.sim.metrics` provides counters and summary statistics used
  by the experiment harness.

Example::

    from repro.sim import Engine

    engine = Engine()
    ticks = []
    engine.call_later(1.0, lambda: ticks.append(engine.now))
    engine.run()
    assert ticks == [1.0]
"""

from repro.sim.engine import Engine, EngineEventLimitError
from repro.sim.events import Event, EventQueue, HeapEventQueue, make_event_queue
from repro.sim.metrics import Counter, MetricSet, SummaryStat, TimeSeries
from repro.sim.process import SimProcess, Timer
from repro.sim.trace import NULL_TRACE, NullTraceRecorder, TraceRecord, TraceRecorder

__all__ = [
    "Counter",
    "Engine",
    "EngineEventLimitError",
    "Event",
    "EventQueue",
    "HeapEventQueue",
    "MetricSet",
    "NULL_TRACE",
    "NullTraceRecorder",
    "SimProcess",
    "SummaryStat",
    "TimeSeries",
    "Timer",
    "TraceRecord",
    "TraceRecorder",
    "make_event_queue",
]
