"""Base classes for simulated entities.

:class:`SimProcess` gives components a name, a handle on the engine and
trace helpers.  :class:`Timer` is a restartable, cancellable recurring
timer built on engine events — used by traffic generators, DPD probes and
keep-alive logic.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.sim.engine import Engine
from repro.sim.events import Event
from repro.util.validation import check_positive


class SimProcess:
    """A named participant in a simulation.

    Subclasses are ordinary Python objects whose methods get invoked by
    scheduled events; this base class only centralises the engine handle,
    naming, and trace recording.
    """

    def __init__(self, engine: Engine, name: str) -> None:
        self.engine = engine
        self.name = name

    @property
    def now(self) -> float:
        """Current simulated time."""
        return self.engine.now

    @property
    def traced(self) -> bool:
        """Whether trace records are being kept.

        Hot paths that build expensive detail for a trace call — ``repr``
        of a packet on every delivery, say — should check this first so an
        untraced session skips the work entirely.
        """
        return self.engine.trace.enabled

    def trace(self, kind: str, **detail: Any) -> None:
        """Record a trace event attributed to this process."""
        recorder = self.engine.trace
        if recorder.enabled:
            recorder.record(self.engine.now, self.name, kind, **detail)

    def call_later(
        self, delay: float, callback: Callable[..., None], *args: Any
    ) -> Event:
        """Schedule ``callback(*args)`` after ``delay`` seconds."""
        return self.engine.call_later(delay, callback, *args)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.name!r}>"


class Timer:
    """A recurring timer.

    Calls ``callback()`` every ``interval`` simulated seconds after
    :meth:`start`, until :meth:`stop` (or the callback raises).  The timer
    may be restarted after being stopped; :meth:`reset` restarts the
    current period (useful for inactivity timers such as dead-peer
    detection).
    """

    def __init__(
        self,
        engine: Engine,
        interval: float,
        callback: Callable[[], None],
    ) -> None:
        check_positive("interval", interval)
        self.engine = engine
        self.interval = interval
        self.callback = callback
        self._event: Event | None = None
        self._stopped = True

    @property
    def running(self) -> bool:
        """Whether the timer is armed."""
        return not self._stopped

    def start(self, first_delay: float | None = None) -> None:
        """Arm the timer; first tick after ``first_delay`` (default: interval)."""
        self.stop()
        self._stopped = False
        delay = self.interval if first_delay is None else first_delay
        self._event = self.engine.call_later(delay, self._tick)

    def stop(self) -> None:
        """Disarm the timer (safe to call when not running, or from inside
        the timer's own callback)."""
        self._stopped = True
        if self._event is not None:
            self._event.cancel()
            self._event = None

    def reset(self) -> None:
        """Restart the current period (next tick is a full interval away)."""
        # Inlined start(): reset is the inactivity-timer hot path (every
        # data packet defers its DPD deadline), so skip the two extra
        # method frames and cancel/re-arm directly.
        if self._stopped:
            return
        event = self._event
        if event is not None and not event.cancelled:
            # Event.cancel, inlined (the cancel/re-arm pair below is the
            # inactivity-timer hot path; see Event.cancel for the shape).
            event.cancelled = True
            queue = event._queue
            if queue is not None:
                queue._live -= 1
                dead = queue._dead = queue._dead + 1
                if dead > queue._live and dead >= queue.COMPACT_MIN:
                    queue._compact()
        self._event = self.engine.call_later(self.interval, self._tick)

    def _tick(self) -> None:
        self._event = None
        self.callback()
        # The callback may have stopped or restarted the timer; only
        # re-arm if it did neither.
        if not self._stopped and self._event is None:
            self._event = self.engine.call_later(self.interval, self._tick)
