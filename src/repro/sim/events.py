"""Scheduled events and the event queue.

Events are ordered by ``(time, priority, sequence)``.  ``priority`` breaks
ties between events scheduled for the same instant (lower runs first), and
``sequence`` (a monotonically increasing insertion counter) guarantees FIFO
order among equal-priority simultaneous events — the property that makes
simulation runs reproducible.

Cancellation is lazy: :meth:`Event.cancel` marks the event and the queue
skips cancelled entries on pop, which keeps cancellation O(1).
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable

#: Default priority for ordinary events.
PRIORITY_NORMAL = 0
#: Priority for bookkeeping that must run before normal events at the same time.
PRIORITY_EARLY = -10
#: Priority for bookkeeping that must run after normal events at the same time.
PRIORITY_LATE = 10


@dataclass(order=True)
class Event:
    """A cancellable callback scheduled at a simulated time.

    Instances are created by :class:`EventQueue.push` /
    :meth:`repro.sim.engine.Engine.call_at`; user code normally only keeps
    them around to call :meth:`cancel`.
    """

    time: float
    priority: int
    sequence: int
    callback: Callable[..., None] = field(compare=False)
    args: tuple[Any, ...] = field(compare=False, default=())
    cancelled: bool = field(compare=False, default=False)

    def cancel(self) -> None:
        """Prevent this event from firing (no-op if already fired)."""
        self.cancelled = True

    def fire(self) -> None:
        """Invoke the callback (the engine calls this; not user code)."""
        self.callback(*self.args)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        name = getattr(self.callback, "__qualname__", repr(self.callback))
        state = " cancelled" if self.cancelled else ""
        return f"<Event t={self.time:.9f} prio={self.priority} {name}{state}>"


class EventQueue:
    """A priority queue of :class:`Event` objects with lazy cancellation."""

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._counter = itertools.count()

    def __len__(self) -> int:
        return sum(1 for event in self._heap if not event.cancelled)

    def __bool__(self) -> bool:
        return any(not event.cancelled for event in self._heap)

    def push(
        self,
        time: float,
        callback: Callable[..., None],
        args: tuple[Any, ...] = (),
        priority: int = PRIORITY_NORMAL,
    ) -> Event:
        """Schedule ``callback(*args)`` at ``time`` and return the event."""
        event = Event(
            time=time,
            priority=priority,
            sequence=next(self._counter),
            callback=callback,
            args=args,
        )
        heapq.heappush(self._heap, event)
        return event

    def pop(self) -> Event:
        """Remove and return the earliest non-cancelled event.

        Raises:
            IndexError: if the queue holds no live events.
        """
        while self._heap:
            event = heapq.heappop(self._heap)
            if not event.cancelled:
                return event
        raise IndexError("pop from empty EventQueue")

    def peek_time(self) -> float | None:
        """Return the time of the earliest live event, or ``None`` if empty."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        if not self._heap:
            return None
        return self._heap[0].time

    def clear(self) -> None:
        """Drop all pending events."""
        self._heap.clear()
