"""Scheduled events and the event queue (hierarchical timer-wheel core).

Events are ordered by ``(time, priority, sequence)``.  ``priority`` breaks
ties between events scheduled for the same instant (lower runs first), and
``sequence`` (a monotonically increasing insertion counter) guarantees FIFO
order among equal-priority simultaneous events — the property that makes
simulation runs reproducible.

Two cores implement the same contract:

* :class:`EventQueue` — the default **hierarchical timer wheel**.  Time is
  quantised into 2\\ :sup:`-20`-second ticks.  The *current window* — the
  2\\ :sup:`23`-tick (8 s) span the simulation is executing inside — is a
  binary heap (``front``), so everything a protocol schedules within its
  own near horizon (deliveries, retransmits, one-period timers) runs at C
  ``heapq`` speed with **one** handling per event, exactly like the plain
  heap core but on a heap bounded by one window's population.  Only
  genuinely far timers park in three wheel levels of 1024 slots each
  (slot widths 8 s / ~2.3 h / ~4 days; the levels span ~2.3 h / ~97 days
  / ~272 years, and an overflow list catches the rest): a far push is an
  O(1) list append, a cancel is an O(1) flag, and dead entries are
  dropped — and their handles recycled — the one time their slot is
  loaded, so cancel-heavy schedules never pay per-pop skip costs or
  compaction storms.  When the front drains, the next occupied slot
  *cascades*: level-1 slots load straight into the front (one C
  ``heapify``), coarser slots redistribute one level down.  Exact pop
  order is preserved because slots only bucket — the heap orders every
  window by the full ``(time, priority, sequence)`` key.  The wide window
  is the perf-critical choice: it buys the heap's C speed for the common
  case while keeping the heap's size — and therefore its O(log n) — bound
  by an 8 s horizon instead of the whole schedule.

* :class:`HeapEventQueue` — the previous single binary-heap core
  (O(log n) schedule over the whole horizon, lazy cancellation with
  threshold compaction).  Kept for A/B ordering-parity tests and
  selectable via ``REPRO_EVENT_CORE=heap``; the golden fixtures in
  ``tests/sim`` pin that both cores fire the exact same sequence on
  adversarial schedules.

Both cores store ``(time, priority, sequence, event, callback, args)``
tuples: tuple comparison is a single C call that short-circuits on
``time`` and can never reach the ``event`` slot because ``sequence`` is
unique.

**Zero-alloc hot path.**  Two mechanisms remove per-event allocation:

* :meth:`EventQueue.post` schedules a fire-and-forget callback with *no*
  :class:`Event` object at all — the entry tuple is the event.  Internal
  hot paths that never cancel (link deliveries, one-shot bookkeeping)
  use it via :meth:`~repro.sim.engine.Engine.post_at` / ``post_later``.
* Cancellable events drawn through :meth:`EventQueue.push` come from a
  per-queue free list when possible.  An event is only recycled when
  ``sys.getrefcount`` proves the queue holds the last reference — a
  handle retained anywhere (a :class:`~repro.sim.process.Timer`, test
  code, a stale variable) pins the object and it is simply not reused, so
  the pinned contract "``cancel()`` after fire/clear is harmless" can
  never alias a new incarnation.  ``pool_hits`` / ``pool_misses`` /
  ``pool_recycled`` counters expose the pool's effectiveness (the obs
  layer publishes them through :class:`repro.obs.probe.EventCoreProbe`).
"""

from __future__ import annotations

import os
import sys as _sys
from heapq import heapify, heappop, heappush
from sys import getrefcount
from typing import Any, Callable

#: Default priority for ordinary events.
PRIORITY_NORMAL = 0
#: Priority for bookkeeping that must run before normal events at the same time.
PRIORITY_EARLY = -10
#: Priority for bookkeeping that must run after normal events at the same time.
PRIORITY_LATE = 10

#: Ticks per simulated second (2**20 — a power of two keeps the float
#: multiply exact for binary-friendly times; ``int()`` of a monotone
#: product is monotone, which is all bucketing needs).
TICK_HZ = 1048576.0

#: log2(slots per wheel level).
_SLOT_BITS = 10
_SLOTS = 1 << _SLOT_BITS          # 1024
_SLOT_MASK = _SLOTS - 1

#: log2(front-window ticks): the front heap covers 2**23 ticks (8 s).
#: Deliberately wide — see the module docstring — so ordinary protocol
#: schedules never touch the wheel levels at all.
_FRONT_BITS = 23
_FRONT_SPAN = 1 << _FRONT_BITS

#: Wheel levels 1..3; level ``i`` slots are one level-``i-1`` span wide
#: (level-0 being the front window), so the wheel spans
#: ``2**(23 + 30)`` ticks (~272 simulated years at TICK_HZ) before the
#: overflow list takes over.  Rows are ``(level, width, span)`` shift
#: counts: a tick belongs to level ``i`` iff it shares the window base's
#: ``span``-aligned prefix, in slot ``(tick >> width) & _SLOT_MASK``.
_LEVELS = 4
_LEVEL_GEOMETRY = tuple(
    (
        level,
        _FRONT_BITS + _SLOT_BITS * (level - 1),
        _FRONT_BITS + _SLOT_BITS * level,
    )
    for level in range(1, _LEVELS)
)
_L1_SPAN = _FRONT_BITS + _SLOT_BITS
_HORIZON_BITS = _FRONT_BITS + _SLOT_BITS * (_LEVELS - 1)

#: Maximum events kept on the free list (bounds stale-reference pinning).
#: Recycling is gated on refcount semantics, which only CPython provides;
#: a zero cap disables the free list entirely elsewhere.
_POOL_CAP = 4096 if _sys.implementation.name == "cpython" else 0


def _probe_reclaim_refs() -> int:
    """Refcount observed through ``_reclaim``'s exact call shape.

    The recycling guard asks "does anything outside this call chain still
    reference the event?".  What count that corresponds to depends on the
    interpreter's calling convention (CPython 3.11 steals argument
    references from the caller's stack; older versions kept an extra one),
    so the sole-reference baseline is probed at import rather than
    hardcoded.
    """

    def consume(obj: object) -> int:
        return getrefcount(obj)

    # The caller must HOLD the object in a local while passing it — that
    # is the shape of every real _reclaim() call site.  Passing a
    # temporary instead would let the interpreter hand over the sole
    # reference and the probe would read one short.
    probe = object()
    return consume(probe)


#: getrefcount() value meaning "the caller's local is the only reference"
#: when observed from inside a helper the caller passed the object to.
_RECLAIM_REFS = _probe_reclaim_refs()

#: The same sole-reference baseline when the holder of the local calls
#: ``getrefcount`` directly (one fewer frame in the chain) — the form the
#: engine's inlined run loop uses.
_DIRECT_RECLAIM_REFS = _RECLAIM_REFS - 1

#: Expected count in :meth:`EventQueue._reclaim` for a queue-drained
#: event: the helper baseline plus the event's own :attr:`Event.entry`
#: back-reference (the entry tuple holds the event at index 3).
_RECLAIM_REFS_ENTRY = _RECLAIM_REFS + 1


class Event:
    """A cancellable callback scheduled at a simulated time.

    Instances are created by :class:`EventQueue.push` /
    :meth:`repro.sim.engine.Engine.call_at`; user code normally only keeps
    them around to call :meth:`cancel`.

    The scheduling fields live in :attr:`entry` — the exact
    ``(time, priority, sequence, event, callback, args)`` tuple the queue
    orders — and are exposed read-only as properties.  Holding the one
    tuple instead of five separate slots makes (re)arming a pooled handle
    a single store, which is what keeps the cancellable push path within
    reach of the zero-alloc :meth:`EventQueue.post` path.
    """

    __slots__ = ("entry", "cancelled", "_queue")

    def __init__(
        self,
        time: float,
        priority: int,
        sequence: int,
        callback: Callable[..., None],
        args: tuple[Any, ...] = (),
    ) -> None:
        self.entry: tuple | None = (time, priority, sequence, self,
                                    callback, args)
        self.cancelled = False
        self._queue: "EventQueue | HeapEventQueue | None" = None

    @property
    def time(self) -> float:
        """Scheduled time in simulated seconds."""
        return self.entry[0]

    @property
    def priority(self) -> int:
        """Tie-break priority (lower fires first)."""
        return self.entry[1]

    @property
    def sequence(self) -> int:
        """Insertion counter (FIFO tie-break among equal priorities)."""
        return self.entry[2]

    @property
    def callback(self) -> Callable[..., None]:
        """The scheduled callable."""
        return self.entry[4]

    @property
    def args(self) -> tuple[Any, ...]:
        """Positional arguments passed to :attr:`callback`."""
        return self.entry[5]

    def cancel(self) -> None:
        """Prevent this event from firing (no-op if already fired)."""
        # The counter bookkeeping is inlined rather than delegated to the
        # queue: cancellation is on the timer-churn hot path (every
        # re-armed inactivity timer cancels its predecessor) and both
        # cores share the same live/dead counter shape.
        if self.cancelled:
            return
        self.cancelled = True
        queue = self._queue
        if queue is None:
            return
        queue._live -= 1
        dead = queue._dead = queue._dead + 1
        if dead > queue._live and dead >= queue.COMPACT_MIN:
            queue._compact()

    def fire(self) -> None:
        """Invoke the callback (the engine calls this; not user code)."""
        entry = self.entry
        entry[4](*entry[5])

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        entry = self.entry
        if entry is None:
            return "<Event (pooled)>"
        name = getattr(entry[4], "__qualname__", repr(entry[4]))
        state = " cancelled" if self.cancelled else ""
        return f"<Event t={entry[0]:.9f} prio={entry[1]} {name}{state}>"


#: Entry layout shared by both cores (and the reason mixed push/post
#: entries sort together: comparison never reaches index 3).
Entry = tuple  # (time, priority, sequence, Event | None, callback, args)

#: Allocating an Event *shell* and filling its slots inline is ~3x
#: cheaper than running ``Event.__init__`` (the ctor call frame costs
#: more than the three slot stores).  Pool-miss paths use this; the
#: ctor remains for ordinary construction.
_new_event = Event.__new__


class EventQueue:
    """Timer-wheel priority queue of scheduled callbacks.

    ``len()`` / ``bool()`` are O(1): the queue tracks a live-entry counter
    that :meth:`push`/:meth:`post` increment and :meth:`Event.cancel` /
    the pop paths decrement.

    Layout (see module docstring): ``_front`` is a binary heap of the
    entries whose tick falls before ``_window_end`` — including anything
    scheduled in the past relative to the window, so no separate
    "behind the cursor" case exists; ``_slots[level][index]`` are the
    wheel buckets for ticks at or beyond the window, with one occupancy
    bitmap int per level; ``_overflow`` holds entries beyond the wheel
    horizon.  ``_window_base`` only ever jumps to the start of an occupied
    slot's span, which keeps the invariant that every bucketed entry is at
    or beyond the current window — the cascade scans can therefore always
    take the lowest set bitmap bit.
    """

    #: Compact once at least this many dead entries outnumber the live
    #: ones (i.e. the dead fraction exceeds COMPACT_FRACTION).  Slots
    #: reclaim their dead lazily anyway; the trigger mostly serves the
    #: *front* heap, where a cancel storm inside the current window would
    #: otherwise make every drain pop pay O(log n) for dead weight.
    COMPACT_MIN = 4096
    #: The effective dead-fraction threshold of the ``dead > live``
    #: trigger in :meth:`Event.cancel`.
    COMPACT_FRACTION = 0.5

    __slots__ = (
        "_front", "_slots", "_maps", "_overflow",
        "_window_base", "_window_end", "_window_end_time",
        "_seq", "_live", "_dead",
        "_free", "pool_misses", "pool_recycled",
    )

    def __init__(self) -> None:
        self._front: list[Entry] = []
        self._slots: list[list[list[Entry] | None] | None] = [
            None,
            [None] * _SLOTS,
            [None] * _SLOTS,
            [None] * _SLOTS,
        ]
        self._maps: list[int] = [0] * _LEVELS
        self._overflow: list[Entry] = []
        self._window_base = 0
        self._window_end = _FRONT_SPAN
        # The same boundary in seconds: dividing by a power of two is
        # exact, so `time < _window_end_time` is equivalent to
        # `int(time * TICK_HZ) < _window_end` — without paying for the
        # multiply-and-truncate on every push.
        self._window_end_time = _FRONT_SPAN / TICK_HZ
        self._seq = 0
        self._live = 0
        self._dead = 0
        # Event free list (refcount-guarded recycling; see module doc).
        self._free: list[Event] = []
        self.pool_misses = 0
        self.pool_recycled = 0

    def __len__(self) -> int:
        return self._live

    def __bool__(self) -> bool:
        return self._live > 0

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def push(
        self,
        time: float,
        callback: Callable[..., None],
        args: tuple[Any, ...] = (),
        priority: int = PRIORITY_NORMAL,
    ) -> Event:
        """Schedule ``callback(*args)`` at ``time`` and return the event."""
        sequence = self._seq
        self._seq = sequence + 1
        free = self._free
        if free:
            # Pool invariant: recycled events arrive with cancelled=False,
            # _queue already bound to this queue, and entry=None — so
            # re-arming is the single entry store below.
            event = free.pop()
        else:
            event = _new_event(Event)
            event.cancelled = False
            event._queue = self
            self.pool_misses += 1
        entry = (time, priority, sequence, event, callback, args)
        event.entry = entry
        self._live += 1
        if time < self._window_end_time:
            heappush(self._front, entry)
        else:
            self._place_far(entry)
        return event

    def post(
        self,
        time: float,
        callback: Callable[..., None],
        args: tuple[Any, ...] = (),
        priority: int = PRIORITY_NORMAL,
    ) -> None:
        """Schedule a fire-and-forget callback with no :class:`Event`.

        The zero-alloc fast path: the entry tuple is the whole event.  Use
        for schedules that are never cancelled (deliveries, one-shot
        bookkeeping); there is no handle to cancel.  Ordering is identical
        to :meth:`push` at the same instant — posts and pushes share one
        sequence counter.
        """
        sequence = self._seq
        self._seq = sequence + 1
        self._live += 1
        entry = (time, priority, sequence, None, callback, args)
        if time < self._window_end_time:
            heappush(self._front, entry)
        else:
            self._place_far(entry)

    def _place_far(self, entry: Entry) -> None:
        """Bucket an entry whose time is at or beyond the current window.

        This is :meth:`_place` with the tick conversion fused in — far
        pushes are one frame instead of two; the split ``_place`` remains
        for :meth:`_scatter`, which already has the tick.
        """
        try:
            tick = int(entry[0] * TICK_HZ)
        except (OverflowError, ValueError):
            # inf (overflow) and nan (value) can't be bucketed.
            self._overflow.append(entry)
            return
        base = self._window_base
        for level, width, span in _LEVEL_GEOMETRY:
            if (tick >> span) == (base >> span):
                index = (tick >> width) & _SLOT_MASK
                slots = self._slots[level]
                slot = slots[index]
                if slot:
                    slot.append(entry)
                elif slot is None:
                    slots[index] = [entry]
                    self._maps[level] |= 1 << index
                else:
                    slot.append(entry)
                    self._maps[level] |= 1 << index
                return
        self._overflow.append(entry)

    def _place(self, tick: int, entry: Entry) -> None:
        """Bucket an at-or-beyond-window ``tick`` into the wheel levels.

        Level ``L`` owns the tick iff the tick shares the window base's
        level-``L+1`` span but not its level-``L`` span — i.e. the lowest
        level whose current slot array covers it.  Within one span the
        slot index of any beyond-window tick is strictly greater than the
        base's own index, so the lowest set bitmap bit is always the next
        span to visit.
        """
        base = self._window_base
        for level, width, span in _LEVEL_GEOMETRY:
            if (tick >> span) == (base >> span):
                index = (tick >> width) & _SLOT_MASK
                slots = self._slots[level]
                slot = slots[index]
                if slot:
                    slot.append(entry)
                elif slot is None:
                    slots[index] = [entry]
                    self._maps[level] |= 1 << index
                else:
                    slot.append(entry)
                    self._maps[level] |= 1 << index
                return
        self._overflow.append(entry)

    # ------------------------------------------------------------------
    # Cancellation bookkeeping
    # ------------------------------------------------------------------
    def _reclaim(self, event: Event) -> None:
        """Recycle a cancelled, drained event if nothing else holds it.

        Refcount proof: every call site has just dropped the entry tuple
        from its bucket, so the expected references are the caller's
        local, this call's plumbing, and the event's own ``entry``
        back-reference (:data:`_RECLAIM_REFS_ENTRY`).  A bucket cannot
        account for the extra count — entries live in exactly one bucket
        and the caller removed this one — so any surplus is an external
        handle, which vetoes recycling.  Vetoed handles keep their
        ``entry`` for introspection; only recycled events are stripped.
        """
        if (len(self._free) < _POOL_CAP
                and getrefcount(event) == _RECLAIM_REFS_ENTRY):
            event.entry = None
            event.cancelled = False
            event._queue = self
            self._free.append(event)
            self.pool_recycled += 1
        else:
            event._queue = None

    def _compact(self) -> None:
        """Drop cancelled entries from every bucket (memory bound only).

        Ordering keys are immutable, so filtering can never reorder live
        events.  Bitmaps are rebuilt for emptied slots.
        """
        for level in range(1, _LEVELS):
            bitmap = self._maps[level]
            if not bitmap:
                continue
            slots = self._slots[level]
            for index in range(_SLOTS):
                if not (bitmap >> index) & 1:
                    continue
                slot = slots[index]
                kept = [e for e in slot if e[3] is None or not e[3].cancelled]
                dropped = len(slot) - len(kept)
                if dropped:
                    self._dead -= dropped
                    slot[:] = kept
                    if not kept:
                        bitmap &= ~(1 << index)
            self._maps[level] = bitmap
        kept = [
            e for e in self._overflow if e[3] is None or not e[3].cancelled
        ]
        self._dead -= len(self._overflow) - len(kept)
        self._overflow = kept
        kept = [e for e in self._front if e[3] is None or not e[3].cancelled]
        if len(kept) != len(self._front):
            self._dead -= len(self._front) - len(kept)
            self._front[:] = kept
            heapify(self._front)

    # ------------------------------------------------------------------
    # Window advancement
    # ------------------------------------------------------------------
    def _load_front(self, slot: list[Entry]) -> bool:
        """Load a level-1 slot into the empty front heap.

        Cancelled entries die here — once per entry, the O(1)-cancel
        counterpart to the heap core's compaction — and their handles are
        recycled when provably unreferenced.
        """
        kept = [e for e in slot if e[3] is None or not e[3].cancelled]
        if len(kept) != len(slot):
            dead = [e[3] for e in slot if e[3] is not None and e[3].cancelled]
            self._dead -= len(dead)
            slot.clear()  # drop the entry tuples before refcount checks
            while dead:
                event = dead.pop()
                self._reclaim(event)
        else:
            slot.clear()
        front = self._front
        front[:] = kept
        if len(front) > 1:
            heapify(front)
        return bool(front)

    def _scatter(self, entries: list[Entry]) -> None:
        """Re-place a cascaded coarse slot's entries one level down.

        Entries landing inside the (new) current window go straight onto
        the front heap; the caller heapifies once afterwards.
        """
        front = self._front
        window_end = self._window_end
        for i in range(len(entries)):
            entry = entries[i]
            event = entry[3]
            if event is not None and event.cancelled:
                self._dead -= 1
                entries[i] = None
                del entry
                self._reclaim(event)
                continue
            try:
                tick = int(entry[0] * TICK_HZ)
            except (OverflowError, ValueError):
                self._overflow.append(entry)
                continue
            if tick < window_end:
                front.append(entry)
            else:
                self._place(tick, entry)

    def _advance(self) -> bool:
        """Move the window to the next occupied span and load the front.

        Returns ``False`` when no entries remain anywhere.  Scans take the
        lowest set bitmap bit per level (valid because bucketed ticks are
        always at or beyond the window — see class docstring); coarser
        hits cascade via :meth:`_scatter` and the scan restarts.
        """
        maps = self._maps
        front = self._front
        while True:
            bitmap = maps[1]
            if bitmap:
                index = (bitmap & -bitmap).bit_length() - 1
                slots = self._slots[1]
                slot = slots[index]
                maps[1] = bitmap & ~(1 << index)
                base = ((self._window_base >> _L1_SPAN)
                        << _L1_SPAN) + (index << _FRONT_BITS)
                self._window_base = base
                self._window_end = base + _FRONT_SPAN
                self._window_end_time = (base + _FRONT_SPAN) / TICK_HZ
                if slot and self._load_front(slot):
                    return True
                continue
            advanced = False
            for level, width, span in _LEVEL_GEOMETRY[1:]:
                bitmap = maps[level]
                if not bitmap:
                    continue
                index = (bitmap & -bitmap).bit_length() - 1
                slots = self._slots[level]
                slot = slots[index]
                maps[level] = bitmap & ~(1 << index)
                base = ((self._window_base >> span) << span) + (index << width)
                self._window_base = base
                self._window_end = base + _FRONT_SPAN
                self._window_end_time = (base + _FRONT_SPAN) / TICK_HZ
                if slot:
                    entries = slot[:]
                    slot.clear()
                    self._scatter(entries)
                    if front:
                        if len(front) > 1:
                            heapify(front)
                        return True
                advanced = True
                break
            if advanced:
                continue
            if self._overflow:
                if self._refill_from_overflow():
                    # The refill may have landed entries straight on the
                    # front heap; they are the earliest (every bucketed
                    # slot holds a strictly later span), so loading a
                    # level-1 slot now would clobber them.
                    if front:
                        return True
                    continue
                return bool(front)
            return False

    def _refill_from_overflow(self) -> bool:
        """Rebase the wheel at the earliest overflow entry.

        Returns True if anything was re-placed (the scan then restarts).
        Non-finite times (``inf``) can never be bucketed; once they are
        all that remains, the earliest goes straight to the front so a
        queue holding only far-infinite events still drains.
        """
        pending = self._overflow
        best: Entry | None = None
        live: list[Entry] = []
        for i in range(len(pending)):
            entry = pending[i]
            event = entry[3]
            if event is not None and event.cancelled:
                self._dead -= 1
                pending[i] = None
                del entry
                self._reclaim(event)
                continue
            live.append(entry)
            if best is None or entry[:3] < best[:3]:
                best = entry
        self._overflow = []
        if best is None:
            return False
        try:
            tick = int(best[0] * TICK_HZ)
        except (OverflowError, ValueError):
            tick = None
        if tick is None:
            # Only non-bucketable times remain in front of the schedule.
            heappush(self._front, best)
            for entry in live:
                if entry is not best:
                    self._overflow.append(entry)
            return True
        base = (tick >> _FRONT_BITS) << _FRONT_BITS
        self._window_base = base
        self._window_end = base + _FRONT_SPAN
        self._window_end_time = (base + _FRONT_SPAN) / TICK_HZ
        self._scatter(live)
        if len(self._front) > 1:
            heapify(self._front)
        return True

    # ------------------------------------------------------------------
    # Popping
    # ------------------------------------------------------------------
    def _fill_front(self) -> bool:
        """Ensure the front heap's min is the earliest live entry.

        Prunes (and recycles) dead entries off the top and advances the
        window when the front empties.  Returns ``False`` when the queue
        holds no live events.
        """
        front = self._front
        while True:
            if front:
                entry = front[0]
                event = entry[3]
                if event is None or not event.cancelled:
                    return True
                heappop(front)
                self._dead -= 1
                del entry
                self._reclaim(event)
                continue
            if not self._advance():
                return False

    def pop(self) -> Event:
        """Remove and return the earliest non-cancelled event.

        Raises:
            IndexError: if the queue holds no live events.
        """
        event = self.pop_next()
        if event is None:
            raise IndexError("pop from empty EventQueue")
        return event

    def pop_next(self, until: float | None = None) -> Event | None:
        """Pop the earliest live event, or ``None``.

        When ``until`` is given and the earliest live event is strictly
        after it, the event is left queued and ``None`` is returned.
        Entries scheduled through :meth:`post` are materialised into a
        (pooled) :class:`Event` here — the engine's inlined run loop fires
        entries directly and never pays this cost.
        """
        if not self._fill_front():
            return None
        front = self._front
        entry = front[0]
        if until is not None and entry[0] > until:
            return None
        heappop(front)
        self._live -= 1
        event = entry[3]
        if event is None:
            free = self._free
            if free:
                event = free.pop()
            else:
                event = _new_event(Event)
                event.cancelled = False
                self.pool_misses += 1
            event.entry = entry
        event._queue = None
        return event

    def peek_time(self) -> float | None:
        """Return the time of the earliest live event, or ``None`` if empty."""
        if not self._fill_front():
            return None
        return self._front[0][0]

    def clear(self) -> None:
        """Drop all pending events.

        Every pending event is *cancel-detached*: flagged ``cancelled``
        and unlinked, so a handle retained across the clear reports the
        truth (the event will never fire) and a late ``cancel()`` stays a
        harmless no-op instead of corrupting the live counter.
        """
        for bucket in self._iter_buckets():
            for entry in bucket:
                event = entry[3]
                if event is not None:
                    event.cancelled = True
                    event._queue = None
        self._front = []
        self._slots = [
            None,
            [None] * _SLOTS,
            [None] * _SLOTS,
            [None] * _SLOTS,
        ]
        self._maps = [0] * _LEVELS
        self._overflow = []
        self._window_base = 0
        self._window_end = _FRONT_SPAN
        self._window_end_time = _FRONT_SPAN / TICK_HZ
        self._live = 0
        self._dead = 0

    def _iter_buckets(self):
        yield self._front
        yield self._overflow
        for level in range(1, _LEVELS):
            bitmap = self._maps[level]
            if not bitmap:
                continue
            slots = self._slots[level]
            index = 0
            while bitmap:
                if bitmap & 1:
                    slot = slots[index]
                    if slot:
                        yield slot
                bitmap >>= 1
                index += 1

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def pool_stats(self) -> dict[str, int]:
        """Free-list effectiveness counters (JSON-safe).

        ``pool_hits`` is derived, not counted — everything that left the
        free list once entered it, so hits are exactly the recycled total
        minus what is still pooled.  That keeps the push hot path free of
        bookkeeping writes.
        """
        return {
            "pool_hits": self.pool_recycled - len(self._free),
            "pool_misses": self.pool_misses,
            "pool_recycled": self.pool_recycled,
            "pool_size": len(self._free),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<EventQueue live={self._live} dead={self._dead} "
            f"window=[{self._window_base},{self._window_end}) "
            f"front={len(self._front)}>"
        )


class HeapEventQueue:
    """The binary-heap core (pre-wheel): lazy cancellation + compaction.

    Retained for A/B ordering-parity testing against the wheel and as an
    escape hatch (``REPRO_EVENT_CORE=heap``).  Entries share the wheel's
    6-tuple layout so :meth:`post` produces the identical sequence
    numbering — the property the byte-for-byte parity fixtures pin.
    """

    #: Heaps smaller than this are never compacted (the skip cost is noise).
    COMPACT_MIN = 64
    #: The effective dead-fraction threshold of the ``dead > live``
    #: trigger in :meth:`Event.cancel`.
    COMPACT_FRACTION = 0.5

    __slots__ = ("_heap", "_seq", "_live", "_dead", "pool_misses")

    def __init__(self) -> None:
        self._heap: list[Entry] = []
        self._seq = 0
        self._live = 0
        self._dead = 0
        self.pool_misses = 0

    def __len__(self) -> int:
        return self._live

    def __bool__(self) -> bool:
        return self._live > 0

    def push(
        self,
        time: float,
        callback: Callable[..., None],
        args: tuple[Any, ...] = (),
        priority: int = PRIORITY_NORMAL,
    ) -> Event:
        """Schedule ``callback(*args)`` at ``time`` and return the event."""
        sequence = self._seq
        self._seq = sequence + 1
        event = Event(time, priority, sequence, callback, args)
        event._queue = self
        self.pool_misses += 1
        # The ctor already built the exact entry tuple (self at index 3).
        heappush(self._heap, event.entry)
        self._live += 1
        return event

    def post(
        self,
        time: float,
        callback: Callable[..., None],
        args: tuple[Any, ...] = (),
        priority: int = PRIORITY_NORMAL,
    ) -> None:
        """Fire-and-forget schedule (same sequence numbering as the wheel)."""
        sequence = self._seq
        self._seq = sequence + 1
        heappush(self._heap, (time, priority, sequence, None, callback, args))
        self._live += 1

    def _compact(self) -> None:
        """Rebuild the heap from live entries only.

        Ordering keys are immutable, so heapify restores exactly the same
        ``(time, priority, sequence)`` pop order minus the dead entries.
        The list is mutated in place — never rebound — because tests may
        hold a direct reference to it.  (:meth:`Event.cancel` owns the
        counter updates and the compaction trigger for both cores.)
        """
        self._heap[:] = [
            entry for entry in self._heap
            if entry[3] is None or not entry[3].cancelled
        ]
        self._dead = 0
        heapify(self._heap)

    def pop(self) -> Event:
        """Remove and return the earliest non-cancelled event.

        Raises:
            IndexError: if the queue holds no live events.
        """
        event = self.pop_next()
        if event is None:
            raise IndexError("pop from empty EventQueue")
        return event

    def pop_next(self, until: float | None = None) -> Event | None:
        """Single-pass pop: the earliest live event, or ``None``."""
        heap = self._heap
        while heap:
            entry = heap[0]
            event = entry[3]
            if event is not None and event.cancelled:
                heappop(heap)
                self._dead -= 1
                continue
            if until is not None and entry[0] > until:
                return None
            heappop(heap)
            self._live -= 1
            if event is None:
                event = Event(entry[0], entry[1], entry[2], entry[4], entry[5])
            event._queue = None
            return event
        return None

    def peek_time(self) -> float | None:
        """Return the time of the earliest live event, or ``None`` if empty."""
        heap = self._heap
        while heap:
            entry = heap[0]
            event = entry[3]
            if event is not None and event.cancelled:
                heappop(heap)
                self._dead -= 1
                continue
            return entry[0]
        return None

    def clear(self) -> None:
        """Drop all pending events (cancel-detached; see the wheel's doc)."""
        for entry in self._heap:
            event = entry[3]
            if event is not None:
                event.cancelled = True
                event._queue = None
        self._heap.clear()
        self._live = 0
        self._dead = 0

    def pool_stats(self) -> dict[str, int]:
        """Counter parity with the wheel (the heap core never recycles)."""
        return {
            "pool_hits": 0,
            "pool_misses": self.pool_misses,
            "pool_recycled": 0,
            "pool_size": 0,
        }


#: Registered event-core implementations (``REPRO_EVENT_CORE`` values).
EVENT_CORES: dict[str, type] = {
    "wheel": EventQueue,
    "heap": HeapEventQueue,
}

#: Process-wide default core, resolved once at import.
DEFAULT_EVENT_CORE = os.environ.get("REPRO_EVENT_CORE", "wheel")


def make_event_queue(core: str | None = None) -> "EventQueue | HeapEventQueue":
    """Build an event queue for ``core`` (default: ``REPRO_EVENT_CORE``)."""
    name = core if core is not None else DEFAULT_EVENT_CORE
    try:
        queue_type = EVENT_CORES[name]
    except KeyError:
        raise ValueError(
            f"unknown event core {name!r}; expected one of "
            f"{sorted(EVENT_CORES)}"
        ) from None
    return queue_type()
