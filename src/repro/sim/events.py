"""Scheduled events and the event queue.

Events are ordered by ``(time, priority, sequence)``.  ``priority`` breaks
ties between events scheduled for the same instant (lower runs first), and
``sequence`` (a monotonically increasing insertion counter) guarantees FIFO
order among equal-priority simultaneous events — the property that makes
simulation runs reproducible.

The heap stores plain ``(time, priority, sequence, event)`` tuples rather
than the :class:`Event` objects themselves: tuple comparison is a single C
call that short-circuits on ``time`` and can never reach the ``event``
slot because ``sequence`` is unique.  :class:`Event` itself is a
``__slots__`` class with no ordering protocol — it exists only to carry
the callback and support cancellation.

Cancellation is lazy: :meth:`Event.cancel` marks the event, decrements the
queue's live-entry counter (so ``len()`` stays O(1)), and the queue skips
dead entries on pop.  When more than :attr:`EventQueue.COMPACT_FRACTION`
of a large heap is dead, the queue compacts — rebuilding the heap from the
live entries — so long schedules with many cancelled timers stop paying
the pop-skip cost.  Compaction only removes entries whose ordering keys
are already immutable, so it can never reorder live events.
"""

from __future__ import annotations

import itertools
from heapq import heapify, heappop, heappush
from typing import Any, Callable

#: Default priority for ordinary events.
PRIORITY_NORMAL = 0
#: Priority for bookkeeping that must run before normal events at the same time.
PRIORITY_EARLY = -10
#: Priority for bookkeeping that must run after normal events at the same time.
PRIORITY_LATE = 10


class Event:
    """A cancellable callback scheduled at a simulated time.

    Instances are created by :class:`EventQueue.push` /
    :meth:`repro.sim.engine.Engine.call_at`; user code normally only keeps
    them around to call :meth:`cancel`.
    """

    __slots__ = ("time", "priority", "sequence", "callback", "args",
                 "cancelled", "_queue")

    def __init__(
        self,
        time: float,
        priority: int,
        sequence: int,
        callback: Callable[..., None],
        args: tuple[Any, ...] = (),
    ) -> None:
        self.time = time
        self.priority = priority
        self.sequence = sequence
        self.callback = callback
        self.args = args
        self.cancelled = False
        self._queue: EventQueue | None = None

    def cancel(self) -> None:
        """Prevent this event from firing (no-op if already fired)."""
        if not self.cancelled:
            self.cancelled = True
            queue = self._queue
            if queue is not None:
                queue._note_cancel()

    def fire(self) -> None:
        """Invoke the callback (the engine calls this; not user code)."""
        self.callback(*self.args)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        name = getattr(self.callback, "__qualname__", repr(self.callback))
        state = " cancelled" if self.cancelled else ""
        return f"<Event t={self.time:.9f} prio={self.priority} {name}{state}>"


class EventQueue:
    """A priority queue of :class:`Event` objects with lazy cancellation.

    ``len()`` / ``bool()`` are O(1): the queue tracks a live-entry counter
    that :meth:`push` increments and :meth:`Event.cancel` / the pop paths
    decrement.
    """

    #: Heaps smaller than this are never compacted (the skip cost is noise).
    COMPACT_MIN = 64
    #: Compact when the dead fraction of the heap exceeds this.
    COMPACT_FRACTION = 0.5

    def __init__(self) -> None:
        self._heap: list[tuple[float, int, int, Event]] = []
        self._counter = itertools.count()
        self._live = 0

    def __len__(self) -> int:
        return self._live

    def __bool__(self) -> bool:
        return self._live > 0

    def push(
        self,
        time: float,
        callback: Callable[..., None],
        args: tuple[Any, ...] = (),
        priority: int = PRIORITY_NORMAL,
    ) -> Event:
        """Schedule ``callback(*args)`` at ``time`` and return the event."""
        sequence = next(self._counter)
        event = Event(time, priority, sequence, callback, args)
        event._queue = self
        heappush(self._heap, (time, priority, sequence, event))
        self._live += 1
        return event

    def _note_cancel(self) -> None:
        """A queued event was cancelled: fix the counter, maybe compact."""
        self._live -= 1
        heap_size = len(self._heap)
        if (
            heap_size >= self.COMPACT_MIN
            and heap_size - self._live > heap_size * self.COMPACT_FRACTION
        ):
            self._compact()

    def _compact(self) -> None:
        """Rebuild the heap from live entries only.

        Ordering keys are immutable, so heapify restores exactly the same
        ``(time, priority, sequence)`` pop order minus the dead entries.
        The list is mutated in place — never rebound — because the
        engine's run loop holds a direct reference to it.
        """
        self._heap[:] = [entry for entry in self._heap if not entry[3].cancelled]
        heapify(self._heap)

    def pop(self) -> Event:
        """Remove and return the earliest non-cancelled event.

        Raises:
            IndexError: if the queue holds no live events.
        """
        event = self.pop_next()
        if event is None:
            raise IndexError("pop from empty EventQueue")
        return event

    def pop_next(self, until: float | None = None) -> Event | None:
        """Single-pass pop: the earliest live event, or ``None``.

        Skips (and discards) dead entries along the way.  When ``until``
        is given and the earliest live event is strictly after it, the
        event is left queued and ``None`` is returned — this fuses the
        ``peek_time()``-then-``pop()`` sequence the engine's run loop
        used to make into one heap traversal.
        """
        heap = self._heap
        while heap:
            entry = heap[0]
            event = entry[3]
            if event.cancelled:
                heappop(heap)
                continue
            if until is not None and entry[0] > until:
                return None
            heappop(heap)
            self._live -= 1
            event._queue = None
            return event
        return None

    def peek_time(self) -> float | None:
        """Return the time of the earliest live event, or ``None`` if empty."""
        heap = self._heap
        while heap:
            entry = heap[0]
            if entry[3].cancelled:
                heappop(heap)
                continue
            return entry[0]
        return None

    def clear(self) -> None:
        """Drop all pending events."""
        for entry in self._heap:
            entry[3]._queue = None
        self._heap.clear()
        self._live = 0
