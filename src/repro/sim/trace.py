"""Structured simulation tracing.

Every interesting occurrence (a send, a delivery, a discard, a reset, a
SAVE commit, an adversary injection, ...) can be recorded as a
:class:`TraceRecord`.  Experiments and tests then query the recorder
instead of scraping printed output.

Recording is cheap (an append) and can be disabled wholesale for
throughput benchmarks via :attr:`TraceRecorder.enabled`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterator


@dataclass(frozen=True)
class TraceRecord:
    """One traced occurrence.

    Attributes:
        time: simulated time of the occurrence.
        source: name of the component that recorded it (e.g. ``"p"``,
            ``"q"``, ``"link:p->q"``, ``"adversary"``).
        kind: machine-readable event kind (e.g. ``"send"``, ``"deliver"``,
            ``"discard"``, ``"reset"``, ``"save_commit"``).
        detail: free-form payload (sequence numbers, verdicts, ...).
    """

    time: float
    source: str
    kind: str
    detail: dict[str, Any] = field(default_factory=dict)

    def __str__(self) -> str:
        parts = " ".join(f"{k}={v!r}" for k, v in sorted(self.detail.items()))
        return f"[{self.time:.9f}] {self.source} {self.kind} {parts}".rstrip()


class TraceRecorder:
    """An append-only log of :class:`TraceRecord` objects with query helpers.

    Args:
        enabled: start recording immediately (flippable at runtime).
        max_records: optional memory bound.  ``None`` (the default) keeps
            every record — unchanged historical behaviour.  With a bound,
            the recorder becomes a ring buffer over the *newest* records:
            appending beyond the bound evicts the oldest record and
            increments :attr:`dropped`.  Long traced runs (fleet tasks,
            soak scenarios) set a bound so tracing cannot grow without
            limit; queries then see only the retained tail, and consumers
            that need to know whether history was lost check ``dropped``
            (the exported trace-records header carries it).
    """

    def __init__(
        self, enabled: bool = True, max_records: int | None = None
    ) -> None:
        if max_records is not None and max_records <= 0:
            raise ValueError(f"max_records must be positive, got {max_records}")
        self.enabled = enabled
        self.max_records = max_records
        #: Records evicted by the ring bound (0 when unbounded).
        self.dropped = 0
        self._records: list[TraceRecord] = []

    def record(
        self,
        time: float,
        source: str,
        kind: str,
        **detail: Any,
    ) -> None:
        """Append a record (no-op when disabled; evicts oldest at bound)."""
        if not self.enabled:
            return
        self._records.append(TraceRecord(time=time, source=source, kind=kind, detail=detail))
        if self.max_records is not None and len(self._records) > self.max_records:
            # One-in one-out: eviction cost is O(n) per append, but a
            # bounded trace is small by construction and the unbounded
            # default path never reaches this branch.
            del self._records[0]
            self.dropped += 1

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self._records)

    @property
    def records(self) -> list[TraceRecord]:
        """The full record list (do not mutate)."""
        return self._records

    def filter(
        self,
        source: str | None = None,
        kind: str | None = None,
        predicate: Callable[[TraceRecord], bool] | None = None,
    ) -> list[TraceRecord]:
        """Return records matching all given criteria."""
        out = []
        for record in self._records:
            if source is not None and record.source != source:
                continue
            if kind is not None and record.kind != kind:
                continue
            if predicate is not None and not predicate(record):
                continue
            out.append(record)
        return out

    def count(self, source: str | None = None, kind: str | None = None) -> int:
        """Count records matching the criteria."""
        return len(self.filter(source=source, kind=kind))

    def last(self, source: str | None = None, kind: str | None = None) -> TraceRecord | None:
        """Return the most recent matching record, or ``None``."""
        matches = self.filter(source=source, kind=kind)
        return matches[-1] if matches else None

    def clear(self) -> None:
        """Drop all records (and forget the eviction count)."""
        self._records.clear()
        self.dropped = 0

    def render(self, limit: int | None = None) -> str:
        """Render the trace (optionally only the last ``limit`` records)."""
        records = self._records if limit is None else self._records[-limit:]
        return "\n".join(str(record) for record in records)


class NullTraceRecorder(TraceRecorder):
    """A recorder that drops everything — the untraced-session fast path.

    Fleet campaigns and experiment sweeps never read the trace (they score
    runs from component counters), yet a default recorder would still pay
    for a :class:`TraceRecord` per send/deliver/discard.  Passing
    :data:`NULL_TRACE` to the engine instead makes :meth:`record` a bare
    no-op, and hot call sites that precompute expensive detail (``repr`` of
    packets) check :attr:`enabled` first and skip the work entirely.

    ``enabled`` is pinned ``False``: flipping it on would silently lose
    records, so it refuses.  All query helpers behave as an empty trace.
    """

    def __init__(self) -> None:
        super().__init__(enabled=False)

    @property
    def enabled(self) -> bool:  # type: ignore[override]
        return False

    @enabled.setter
    def enabled(self, value: bool) -> None:
        if value:
            raise ValueError(
                "NullTraceRecorder cannot be enabled; build the simulation "
                "with a real TraceRecorder instead"
            )

    def record(self, time: float, source: str, kind: str, **detail: Any) -> None:
        """Drop the record."""


#: Shared no-op recorder for untraced sessions (it holds no state, so one
#: instance serves every engine, including across fleet worker processes).
NULL_TRACE = NullTraceRecorder()
