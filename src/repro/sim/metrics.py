"""Counters and summary statistics for experiment runs.

The experiment harness aggregates everything through these small classes so
that every experiment reports data the same way:

* :class:`Counter` — a named monotonically increasing count.
* :class:`SummaryStat` — streaming count/sum/min/max/mean/variance
  (Welford's algorithm, numerically stable).
* :class:`TimeSeries` — (time, value) samples with simple queries.
* :class:`MetricSet` — a named bag of the above, with dict export.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any


@dataclass
class Counter:
    """A named monotonically increasing counter."""

    name: str
    value: int = 0

    def increment(self, amount: int = 1) -> None:
        """Add ``amount`` (must be >= 0) to the counter."""
        if amount < 0:
            raise ValueError(f"Counter.increment amount must be >= 0, got {amount}")
        self.value += amount


class SummaryStat:
    """Streaming summary statistics over observed values.

    Uses Welford's online algorithm so variance is stable even for long
    runs of near-equal values.
    """

    def __init__(self, name: str) -> None:
        self.name = name
        self.count = 0
        self.total = 0.0
        self.minimum = math.inf
        self.maximum = -math.inf
        self._mean = 0.0
        self._m2 = 0.0

    def observe(self, value: float) -> None:
        """Record one observation."""
        self.count += 1
        self.total += value
        self.minimum = min(self.minimum, value)
        self.maximum = max(self.maximum, value)
        delta = value - self._mean
        self._mean += delta / self.count
        self._m2 += delta * (value - self._mean)

    @property
    def mean(self) -> float:
        """Arithmetic mean (0.0 when empty)."""
        return self._mean if self.count else 0.0

    @property
    def variance(self) -> float:
        """Population variance (0.0 for fewer than two observations)."""
        return self._m2 / self.count if self.count >= 2 else 0.0

    @property
    def stddev(self) -> float:
        """Population standard deviation."""
        return math.sqrt(self.variance)

    def as_dict(self) -> dict[str, float]:
        """Export the statistics as a plain dict."""
        return {
            "count": self.count,
            "total": self.total,
            "min": self.minimum if self.count else 0.0,
            "max": self.maximum if self.count else 0.0,
            "mean": self.mean,
            "stddev": self.stddev,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<SummaryStat {self.name} n={self.count} mean={self.mean:.4g}>"


@dataclass
class TimeSeries:
    """(time, value) samples in insertion order."""

    name: str
    samples: list[tuple[float, float]] = field(default_factory=list)

    def sample(self, time: float, value: float) -> None:
        """Append one sample."""
        self.samples.append((time, value))

    @property
    def values(self) -> list[float]:
        """All sampled values in order."""
        return [value for _, value in self.samples]

    @property
    def times(self) -> list[float]:
        """All sample times in order."""
        return [time for time, _ in self.samples]

    def last_value(self, default: float = 0.0) -> float:
        """The most recent sampled value (``default`` when empty)."""
        return self.samples[-1][1] if self.samples else default


class MetricSet:
    """A named bag of counters, summary stats and time series."""

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self._stats: dict[str, SummaryStat] = {}
        self._series: dict[str, TimeSeries] = {}

    def counter(self, name: str) -> Counter:
        """Get (or lazily create) the counter ``name``."""
        if name not in self._counters:
            self._counters[name] = Counter(name)
        return self._counters[name]

    def stat(self, name: str) -> SummaryStat:
        """Get (or lazily create) the summary statistic ``name``."""
        if name not in self._stats:
            self._stats[name] = SummaryStat(name)
        return self._stats[name]

    def series(self, name: str) -> TimeSeries:
        """Get (or lazily create) the time series ``name``."""
        if name not in self._series:
            self._series[name] = TimeSeries(name)
        return self._series[name]

    def count(self, name: str) -> int:
        """Current value of counter ``name`` (0 if it was never touched)."""
        counter = self._counters.get(name)
        return counter.value if counter else 0

    def as_dict(self) -> dict[str, Any]:
        """Export every metric to a plain nested dict."""
        return {
            "counters": {name: c.value for name, c in sorted(self._counters.items())},
            "stats": {name: s.as_dict() for name, s in sorted(self._stats.items())},
            "series": {
                name: list(ts.samples) for name, ts in sorted(self._series.items())
            },
        }
