"""The discrete-event simulation engine.

:class:`Engine` owns a virtual clock (``float`` seconds, starting at 0) and
an :class:`~repro.sim.events.EventQueue`.  :meth:`Engine.run` repeatedly
pops the earliest event, advances the clock to its timestamp, and fires it.
Because ties are broken deterministically (priority, then insertion order)
a simulation driven only by the engine plus seeded RNGs is exactly
reproducible.

The engine is intentionally synchronous and single-threaded: protocol
processes are plain objects whose methods are invoked by events.  This is
the style the rest of the library builds on (links deliver messages by
scheduling ``receiver.on_receive`` events, resets are events, SAVE
completions are events, ...).
"""

from __future__ import annotations

from heapq import heappop
from typing import Any, Callable, ClassVar

from repro.sim.events import PRIORITY_NORMAL, Event, EventQueue
from repro.sim.trace import TraceRecorder
from repro.util.validation import check_non_negative


class EngineEventLimitError(RuntimeError):
    """Raised when a run blows through its hard event budget.

    A simulation whose event count keeps growing without the clock closing
    in on its horizon is almost always a self-rescheduling bug (an event
    that re-posts itself with zero or epsilon delay).  For unattended
    batch runs — the fleet runner in particular — that failure mode must
    surface as an error on the one offending task, not as a worker that
    spins forever.
    """


class Engine:
    """A deterministic discrete-event simulation engine.

    Attributes:
        now: current simulated time in seconds.
        trace: a :class:`TraceRecorder` shared by all components of the
            simulation (components may ignore it; experiments use it).
        hard_event_limit: lifetime event budget; once
            :attr:`events_processed` exceeds it, :meth:`run` raises
            :class:`EngineEventLimitError` instead of continuing.  ``None``
            (the default) disables the guard.  Unlike :meth:`run`'s
            ``max_events`` argument — a polite "pause after N" that
            returns normally — this is a tripwire for runaway schedules.
    """

    #: Default ``hard_event_limit`` applied to newly constructed engines.
    #: Batch drivers (the fleet runner) set this around task execution so
    #: the guard reaches engines built deep inside scenario helpers.
    default_hard_event_limit: ClassVar[int | None] = None

    def __init__(
        self,
        trace: TraceRecorder | None = None,
        hard_event_limit: int | None = None,
    ) -> None:
        self.now: float = 0.0
        self.trace: TraceRecorder = trace if trace is not None else TraceRecorder()
        self.hard_event_limit: int | None = (
            hard_event_limit
            if hard_event_limit is not None
            else type(self).default_hard_event_limit
        )
        self._queue = EventQueue()
        self._events_processed = 0
        self._running = False
        self._stop_requested = False

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def call_at(
        self,
        time: float,
        callback: Callable[..., None],
        *args: Any,
        priority: int = PRIORITY_NORMAL,
    ) -> Event:
        """Schedule ``callback(*args)`` at absolute simulated ``time``.

        Scheduling in the past is an error: it would silently reorder
        causality.
        """
        if time < self.now:
            raise ValueError(
                f"cannot schedule at t={time} before current time t={self.now}"
            )
        return self._queue.push(time, callback, args, priority=priority)

    def call_later(
        self,
        delay: float,
        callback: Callable[..., None],
        *args: Any,
        priority: int = PRIORITY_NORMAL,
    ) -> Event:
        """Schedule ``callback(*args)`` after a non-negative ``delay``."""
        # Hot path: most schedules come through here (timers re-arming,
        # links delivering).  The comparison doubles as the validity check
        # — only on failure do we pay for the descriptive error — and a
        # non-negative delay makes call_at's past-check redundant, so push
        # directly.
        if not delay >= 0:
            check_non_negative("delay", delay)
        return self._queue.push(self.now + delay, callback, args, priority=priority)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Fire the single earliest event.

        Returns:
            ``True`` if an event fired, ``False`` if the queue was empty.
        """
        try:
            event = self._queue.pop()
        except IndexError:
            return False
        assert event.time >= self.now, "event heap returned a past event"
        self.now = event.time
        self._events_processed += 1
        event.fire()
        return True

    def run(
        self,
        until: float | None = None,
        max_events: int | None = None,
    ) -> int:
        """Run events until the queue drains (or a limit is hit).

        Args:
            until: if given, stop once the next event would be strictly
                after ``until``; the clock is then advanced to ``until``.
            max_events: if given, stop after firing this many events.

        Returns:
            The number of events fired by this call.

        ``max_events`` and :attr:`hard_event_limit` are sampled once at
        entry; mutating the limit from inside a callback does not affect
        the run already in progress.
        """
        if self._running:
            raise RuntimeError("Engine.run() is not reentrant")
        self._running = True
        self._stop_requested = False
        fired = 0
        # The inner loop is the hottest code in the library.  It reaches
        # into the queue's heap directly, fusing the peek_time()/pop() pair
        # into one traversal with no per-event method calls, and the limit
        # checks are hoisted: when neither max_events nor the hard event
        # budget applies (the overwhelmingly common case) the loop body is
        # pop, clock advance, fire — nothing else.  The queue invariants
        # maintained here (live counter decrement, detaching the event so a
        # late cancel() can't corrupt the counter) mirror
        # EventQueue.pop_next.
        queue = self._queue
        hard_limit = self.hard_event_limit
        try:
            if max_events is None and hard_limit is None:
                heap = queue._heap
                pop = heappop
                while not self._stop_requested:
                    if not heap:
                        break
                    entry = heap[0]
                    event = entry[3]
                    if event.cancelled:
                        pop(heap)
                        continue
                    time = entry[0]
                    if until is not None and time > until:
                        break
                    pop(heap)
                    queue._live -= 1
                    event._queue = None
                    assert time >= self.now, "event heap returned a past event"
                    self.now = time
                    self._events_processed += 1
                    event.callback(*event.args)
                    fired += 1
            else:
                pop_next = queue.pop_next
                while not self._stop_requested:
                    if max_events is not None and fired >= max_events:
                        break
                    event = pop_next(until)
                    if event is None:
                        break
                    assert event.time >= self.now, "event heap returned a past event"
                    self.now = event.time
                    self._events_processed += 1
                    event.fire()
                    fired += 1
                    if (
                        hard_limit is not None
                        and self._events_processed > hard_limit
                    ):
                        raise EngineEventLimitError(
                            f"engine exceeded hard_event_limit={hard_limit} "
                            f"(events_processed={self._events_processed}, "
                            f"t={self.now:.9f}, pending={self.pending_events}): "
                            "likely a self-rescheduling event loop; raise the "
                            "limit or fix the schedule"
                        )
        finally:
            self._running = False
        if until is not None and until > self.now and self._stop_requested is False:
            # Advance the clock to the requested horizon even if idle.
            self.now = until
        return fired

    def stop(self) -> None:
        """Request that a :meth:`run` in progress return after the current event."""
        self._stop_requested = True

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def events_processed(self) -> int:
        """Total number of events fired since construction."""
        return self._events_processed

    @property
    def pending_events(self) -> int:
        """Number of live (non-cancelled) events still queued."""
        return len(self._queue)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Engine now={self.now:.9f} pending={self.pending_events} "
            f"processed={self._events_processed}>"
        )
