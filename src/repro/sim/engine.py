"""The discrete-event simulation engine.

:class:`Engine` owns a virtual clock (``float`` seconds, starting at 0) and
an :class:`~repro.sim.events.EventQueue`.  :meth:`Engine.run` repeatedly
pops the earliest event, advances the clock to its timestamp, and fires it.
Because ties are broken deterministically (priority, then insertion order)
a simulation driven only by the engine plus seeded RNGs is exactly
reproducible.

The engine is intentionally synchronous and single-threaded: protocol
processes are plain objects whose methods are invoked by events.  This is
the style the rest of the library builds on (links deliver messages by
scheduling ``receiver.on_receive`` events, resets are events, SAVE
completions are events, ...).

Two scheduling flavours exist: :meth:`Engine.call_at` / ``call_later``
return a cancellable :class:`~repro.sim.events.Event` handle, while
:meth:`Engine.post_at` / ``post_later`` are fire-and-forget — no handle,
no per-event allocation — for schedules that are never cancelled (link
deliveries, one-shot bookkeeping).  Both share one sequence counter, so
mixing them cannot change ordering.
"""

from __future__ import annotations

from heapq import heappop, heappush
from sys import getrefcount
from typing import Any, Callable, ClassVar

from repro.sim.events import (
    _DIRECT_RECLAIM_REFS,
    _new_event,
    _POOL_CAP,
    PRIORITY_NORMAL,
    Event,
    EventQueue,
    make_event_queue,
)
from repro.sim.trace import TraceRecorder
from repro.util.validation import check_non_negative

#: Sentinel budget meaning "unlimited" — larger than any real event count,
#: so the run loop can use one plain integer compare for all limit modes.
_NO_LIMIT = 1 << 62


class EngineEventLimitError(RuntimeError):
    """Raised when a run blows through its hard event budget.

    A simulation whose event count keeps growing without the clock closing
    in on its horizon is almost always a self-rescheduling bug (an event
    that re-posts itself with zero or epsilon delay).  For unattended
    batch runs — the fleet runner in particular — that failure mode must
    surface as an error on the one offending task, not as a worker that
    spins forever.
    """


class Engine:
    """A deterministic discrete-event simulation engine.

    Attributes:
        now: current simulated time in seconds.
        trace: a :class:`TraceRecorder` shared by all components of the
            simulation (components may ignore it; experiments use it).
        hard_event_limit: lifetime event budget; once
            :attr:`events_processed` exceeds it, :meth:`run` raises
            :class:`EngineEventLimitError` instead of continuing.  ``None``
            (the default) disables the guard.  Unlike :meth:`run`'s
            ``max_events`` argument — a polite "pause after N" that
            returns normally — this is a tripwire for runaway schedules.
    """

    #: Default ``hard_event_limit`` applied to newly constructed engines.
    #: Batch drivers (the fleet runner) set this around task execution so
    #: the guard reaches engines built deep inside scenario helpers.
    default_hard_event_limit: ClassVar[int | None] = None

    def __init__(
        self,
        trace: TraceRecorder | None = None,
        hard_event_limit: int | None = None,
        core: str | None = None,
    ) -> None:
        self.now: float = 0.0
        self.trace: TraceRecorder = trace if trace is not None else TraceRecorder()
        self.hard_event_limit: int | None = (
            hard_event_limit
            if hard_event_limit is not None
            else type(self).default_hard_event_limit
        )
        self._queue = make_event_queue(core)
        self._events_processed = 0
        self._running = False
        self._stop_requested = False

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def call_at(
        self,
        time: float,
        callback: Callable[..., None],
        *args: Any,
        priority: int = PRIORITY_NORMAL,
    ) -> Event:
        """Schedule ``callback(*args)`` at absolute simulated ``time``.

        Scheduling in the past is an error: it would silently reorder
        causality.
        """
        if time < self.now:
            raise ValueError(
                f"cannot schedule at t={time} before current time t={self.now}"
            )
        queue = self._queue
        if type(queue) is not EventQueue:
            return queue.push(time, callback, args, priority)
        # EventQueue.push, inlined minus one call frame (any semantic
        # change to push must land here and in call_later too; the
        # cross-core parity fixtures in tests/sim catch a drift).
        sequence = queue._seq
        queue._seq = sequence + 1
        free = queue._free
        if free:
            event = free.pop()
        else:
            event = _new_event(Event)
            event.cancelled = False
            event._queue = queue
            queue.pool_misses += 1
        entry = (time, priority, sequence, event, callback, args)
        event.entry = entry
        queue._live += 1
        if time < queue._window_end_time:
            heappush(queue._front, entry)
        else:
            queue._place_far(entry)
        return event

    def call_later(
        self,
        delay: float,
        callback: Callable[..., None],
        *args: Any,
        priority: int = PRIORITY_NORMAL,
    ) -> Event:
        """Schedule ``callback(*args)`` after a non-negative ``delay``."""
        # Hot path: most cancellable schedules come through here (timers
        # re-arming).  The comparison doubles as the validity check — only
        # on failure do we pay for the descriptive error — and a
        # non-negative delay makes call_at's past-check redundant.
        if not delay >= 0:
            check_non_negative("delay", delay)
        time = self.now + delay
        queue = self._queue
        if type(queue) is not EventQueue:
            return queue.push(time, callback, args, priority)
        # EventQueue.push, inlined (see call_at).
        sequence = queue._seq
        queue._seq = sequence + 1
        free = queue._free
        if free:
            event = free.pop()
        else:
            event = _new_event(Event)
            event.cancelled = False
            event._queue = queue
            queue.pool_misses += 1
        entry = (time, priority, sequence, event, callback, args)
        event.entry = entry
        queue._live += 1
        if time < queue._window_end_time:
            heappush(queue._front, entry)
        else:
            queue._place_far(entry)
        return event

    def post_at(
        self,
        time: float,
        callback: Callable[..., None],
        *args: Any,
        priority: int = PRIORITY_NORMAL,
    ) -> None:
        """Fire-and-forget :meth:`call_at`: no handle, no allocation.

        Use for schedules that are never cancelled — there is nothing to
        cancel with.  Ordering is identical to :meth:`call_at` at the same
        instant (one shared sequence counter).
        """
        if time < self.now:
            raise ValueError(
                f"cannot schedule at t={time} before current time t={self.now}"
            )
        queue = self._queue
        if type(queue) is not EventQueue:
            queue.post(time, callback, args, priority)
            return
        # EventQueue.post, inlined (see _push_fused).
        sequence = queue._seq
        queue._seq = sequence + 1
        queue._live += 1
        entry = (time, priority, sequence, None, callback, args)
        if time < queue._window_end_time:
            heappush(queue._front, entry)
        else:
            queue._place_far(entry)

    def post_later(
        self,
        delay: float,
        callback: Callable[..., None],
        *args: Any,
        priority: int = PRIORITY_NORMAL,
    ) -> None:
        """Fire-and-forget :meth:`call_later` (see :meth:`post_at`)."""
        if not delay >= 0:
            check_non_negative("delay", delay)
        queue = self._queue
        if type(queue) is not EventQueue:
            queue.post(self.now + delay, callback, args, priority)
            return
        # EventQueue.post, inlined (see _push_fused).
        time = self.now + delay
        sequence = queue._seq
        queue._seq = sequence + 1
        queue._live += 1
        entry = (time, priority, sequence, None, callback, args)
        if time < queue._window_end_time:
            heappush(queue._front, entry)
        else:
            queue._place_far(entry)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Fire the single earliest event.

        Returns:
            ``True`` if an event fired, ``False`` if the queue was empty.
        """
        try:
            event = self._queue.pop()
        except IndexError:
            return False
        assert event.time >= self.now, "event queue returned a past event"
        self.now = event.time
        self._events_processed += 1
        event.fire()
        return True

    def run(
        self,
        until: float | None = None,
        max_events: int | None = None,
    ) -> int:
        """Run events until the queue drains (or a limit is hit).

        Args:
            until: if given, stop once the next event would be strictly
                after ``until``; the clock is then advanced to ``until``.
            max_events: if given, stop after firing this many events.

        Returns:
            The number of events fired by this call.

        ``max_events`` and :attr:`hard_event_limit` are sampled once at
        entry; mutating the limit from inside a callback does not affect
        the run already in progress.
        """
        if self._running:
            raise RuntimeError("Engine.run() is not reentrant")
        self._running = True
        self._stop_requested = False
        queue = self._queue
        try:
            if type(queue) is EventQueue:
                return self._run_wheel(queue, until, max_events)
            return self._run_generic(queue, until, max_events)
        finally:
            self._running = False

    def _run_wheel(
        self,
        queue: EventQueue,
        until: float | None,
        max_events: int | None,
    ) -> int:
        """The inlined hot loop over the timer wheel's front heap.

        This is the hottest code in the library.  It fires entry tuples
        directly — the Event object (when there is one) is only touched to
        check cancellation and to detach or recycle the handle — and all
        limit modes collapse to plain compares against sentinel budgets,
        so the common unlimited case pays nothing extra.  The queue
        invariants maintained here (live counter decrement, dead-entry
        reclaim) mirror ``EventQueue.pop_next``.
        """
        cap = _NO_LIMIT if max_events is None else max_events
        hard_limit = self.hard_event_limit
        budget = _NO_LIMIT if hard_limit is None else hard_limit
        horizon = float("inf") if until is None else until
        front = queue._front
        free = queue._free
        advance = queue._advance
        pop = heappop
        push = heappush
        refcount = getrefcount
        # Expected refcount of an unreferenced handle: the loop local plus
        # the event's own `entry` back-reference (the unpack below releases
        # the popped tuple itself, but it stays alive through event.entry).
        held = _DIRECT_RECLAIM_REFS + 1
        processed = self._events_processed
        recycled = 0
        fired = 0
        try:
            while fired < cap and not self._stop_requested:
                if not front:
                    if not advance():
                        break
                # One specialised unpack instead of four tuple subscripts.
                time, prio, seq, event, callback, args = pop(front)
                if event is not None and event.cancelled:
                    queue._dead -= 1
                    # _reclaim(), inlined (this is the cancel-heavy drain
                    # path).  A handle held anywhere else raises the count
                    # and is detached instead, so a late cancel() stays
                    # harmless; only recycled events are stripped.
                    if len(free) < _POOL_CAP and refcount(event) == held:
                        event.entry = None
                        event.cancelled = False
                        free.append(event)
                        recycled += 1
                    else:
                        event._queue = None
                    continue
                if time > horizon:
                    # Not due yet: this entry stays scheduled.  The rebuilt
                    # tuple is key-identical, so ordering is unaffected.
                    push(front, (time, prio, seq, event, callback, args))
                    break
                queue._live -= 1
                self.now = time
                processed += 1
                self._events_processed = processed
                if event is not None:
                    # Detach before firing (mirrors pop_next) so a callback
                    # cancelling its own event only sets a harmless flag
                    # instead of corrupting the live/dead counters.
                    event._queue = None
                callback(*args)
                fired += 1
                if event is not None:
                    # Recycle the handle when provably unreferenced (same
                    # `held` accounting as the dead branch above); restore
                    # the pool invariants in full — the callback may have
                    # flag-cancelled the detached handle before dropping it.
                    if len(free) < _POOL_CAP and refcount(event) == held:
                        event.entry = None
                        event.cancelled = False
                        event._queue = queue
                        free.append(event)
                        recycled += 1
                if processed > budget:
                    raise EngineEventLimitError(
                        f"engine exceeded hard_event_limit={hard_limit} "
                        f"(events_processed={processed}, "
                        f"t={self.now:.9f}, pending={self.pending_events}): "
                        "likely a self-rescheduling event loop; raise the "
                        "limit or fix the schedule"
                    )
        finally:
            queue.pool_recycled += recycled
        if until is not None and until > self.now and not self._stop_requested:
            # Advance the clock to the requested horizon even if idle.
            self.now = until
        return fired

    def _run_generic(
        self,
        queue: Any,
        until: float | None,
        max_events: int | None,
    ) -> int:
        """Core-agnostic run loop (used by alternate cores, e.g. the heap)."""
        cap = _NO_LIMIT if max_events is None else max_events
        hard_limit = self.hard_event_limit
        budget = _NO_LIMIT if hard_limit is None else hard_limit
        pop_next = queue.pop_next
        fired = 0
        while fired < cap and not self._stop_requested:
            event = pop_next(until)
            if event is None:
                break
            assert event.time >= self.now, "event queue returned a past event"
            self.now = event.time
            self._events_processed += 1
            event.fire()
            fired += 1
            if self._events_processed > budget:
                raise EngineEventLimitError(
                    f"engine exceeded hard_event_limit={hard_limit} "
                    f"(events_processed={self._events_processed}, "
                    f"t={self.now:.9f}, pending={self.pending_events}): "
                    "likely a self-rescheduling event loop; raise the "
                    "limit or fix the schedule"
                )
        if until is not None and until > self.now and not self._stop_requested:
            # Advance the clock to the requested horizon even if idle.
            self.now = until
        return fired

    def stop(self) -> None:
        """Request that a :meth:`run` in progress return after the current event."""
        self._stop_requested = True

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def events_processed(self) -> int:
        """Total number of events fired since construction."""
        return self._events_processed

    @property
    def pending_events(self) -> int:
        """Number of live (non-cancelled) events still queued."""
        return len(self._queue)

    @property
    def event_core_stats(self) -> dict[str, int]:
        """The event core's pooling/posting counters (JSON-safe)."""
        return self._queue.pool_stats()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Engine now={self.now:.9f} pending={self.pending_events} "
            f"processed={self._events_processed}>"
        )
