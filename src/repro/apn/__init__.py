"""Abstract Protocol Notation engine (system S15).

The paper specifies its protocols in Gouda's Abstract Protocol Notation
(APN): each process is a set of constants, variables and guarded actions;
"an action is executed only when its guard is true", "actions are executed
one at a time", and "an action whose guard is continuously true is
eventually executed" (weak fairness).

This package provides:

* :mod:`~repro.apn.core` — a generic guarded-command interpreter over
  immutable states: processes, actions, nondeterministic channels, a
  weakly-fair randomised executor.
* :mod:`~repro.apn.specs` — the paper's Section 2 (unprotected) and
  Section 4 (SAVE/FETCH) process pairs encoded literally, with ghost
  variables recording the global facts (what was sent, what was delivered,
  how often) that the correctness conditions quantify over.

The timed production implementation lives in :mod:`repro.core`; this layer
exists for *verification*: :mod:`repro.verify` exhaustively explores the
interleavings of these APN systems and checks the paper's invariants on
every reachable state.
"""

from repro.apn.core import ApnAction, ApnSystem, Transition, canon, run_random
from repro.apn.specs import (
    SpecConfig,
    make_savefetch_system,
    make_unprotected_system,
)

__all__ = [
    "ApnAction",
    "ApnSystem",
    "SpecConfig",
    "Transition",
    "canon",
    "make_savefetch_system",
    "make_unprotected_system",
    "run_random",
]
