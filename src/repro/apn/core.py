"""A guarded-command interpreter over immutable states.

A *system state* is a plain ``dict`` mapping variable names (conventionally
``"process.var"``) to values built from hashable immutables (ints, bools,
tuples, frozensets).  An :class:`ApnAction` has a guard over states and an
``apply`` function returning **all** possible successor states (one per
nondeterministic outcome — e.g. one per message that a receive action
could pick out of a reordering channel).

The two consumers are:

* :func:`run_random` — a weakly-fair randomised executor, the APN
  execution model of the paper ("an action whose guard is continuously
  true is eventually executed"); used for simulation-style tests.
* :class:`repro.verify.explorer.StateExplorer` — exhaustive breadth-first
  exploration of every interleaving, used for bounded model checking.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Callable, Iterable

State = dict[str, Any]
#: A guard: may this action fire in this state?
GuardFn = Callable[[State], bool]
#: Apply: all possible successor states (nondeterministic outcomes).
ApplyFn = Callable[[State], list[State]]


def canon(state: State) -> tuple[tuple[str, Any], ...]:
    """Canonical hashable form of a state (sorted item tuple).

    Values must already be hashable immutables; lists/dicts inside states
    are a spec bug and raise ``TypeError`` here, on purpose.
    """
    items = tuple(sorted(state.items()))
    hash(items)  # fail fast on unhashable values
    return items


@dataclass(frozen=True)
class ApnAction:
    """One guarded action of one process.

    Attributes:
        process: owning process name (``"p"``, ``"q"``, ``"adversary"``).
        name: action label used in traces and counterexamples.
        guard: enabledness predicate.
        apply: successor-state enumerator (must not mutate its argument).
    """

    process: str
    name: str
    guard: GuardFn
    apply: ApplyFn

    @property
    def label(self) -> str:
        """``process.name`` — the transition label."""
        return f"{self.process}.{self.name}"


@dataclass(frozen=True)
class Transition:
    """One concrete step: an action plus the successor it produced."""

    label: str
    state: State


class ApnSystem:
    """A protocol: an initial state plus the actions of all processes."""

    def __init__(
        self,
        initial: State,
        actions: Iterable[ApnAction],
        invariants: (
            Iterable[Callable[[State], str | None]] | None
        ) = None,
    ) -> None:
        self.initial = dict(initial)
        self.actions = list(actions)
        #: Each invariant maps a state to an error string (or None if ok).
        self.invariants = list(invariants or [])

    def enabled(self, state: State) -> list[ApnAction]:
        """Actions whose guards hold in ``state``."""
        return [action for action in self.actions if action.guard(state)]

    def successors(self, state: State) -> list[Transition]:
        """Every (label, successor) pair reachable in one step."""
        out: list[Transition] = []
        for action in self.enabled(state):
            for next_state in action.apply(state):
                out.append(Transition(label=action.label, state=next_state))
        return out

    def check_invariants(self, state: State) -> list[str]:
        """Error strings for every invariant violated by ``state``."""
        errors = []
        for invariant in self.invariants:
            error = invariant(state)
            if error is not None:
                errors.append(error)
        return errors


def run_random(
    system: ApnSystem,
    steps: int,
    seed: int | random.Random | None = 0,
    stop_on_violation: bool = True,
) -> tuple[State, list[Transition], list[str]]:
    """Execute ``steps`` random enabled transitions (weak fairness via
    uniform choice), checking invariants after every step.

    Returns:
        ``(final_state, trace, violations)``.  The trace holds every
        executed transition; ``violations`` holds the first invariant
        failures encountered (execution stops there when
        ``stop_on_violation``).
    """
    rng = seed if isinstance(seed, random.Random) else random.Random(seed or 0)
    state = dict(system.initial)
    trace: list[Transition] = []
    violations: list[str] = []
    for _ in range(steps):
        choices = system.successors(state)
        if not choices:
            break  # deadlock / quiescence
        transition = rng.choice(choices)
        state = transition.state
        trace.append(transition)
        errors = system.check_invariants(state)
        if errors:
            violations.extend(errors)
            if stop_on_violation:
                break
    return state, trace, violations
