"""APN form of the write-ahead ceiling protocol (see
:mod:`repro.core.ceiling` for the motivation and the timed version).

The safety argument is embarrassingly simple compared with SAVE/FETCH:

* p's invariant: every sequence number ever sent is **strictly below**
  p's committed ceiling (the send guard enforces it; the wake action
  resumes *at* the fetched ceiling, so nothing is reused).
* q's invariant: every sequence number ever delivered is strictly below
  q's committed ceiling (the receive guard defers over-ceiling messages;
  the wake action resumes with the right edge at the fetched ceiling and
  the window flooded, so nothing is re-accepted).

Neither invariant mentions loss, reorder, or the peer's resets — which is
why the explorer verifies this system safe in exactly the configurations
(lossy channel, staggered dual resets) where the paper's SAVE/FETCH
protocol has counterexamples.

Model notes: messages with sequence numbers at or above q's committed
ceiling simply stay in the channel (the channel doubles as q's hold
buffer); q's ``reserve`` action raises the pending ceiling to cover them.
"""

from __future__ import annotations

from repro.apn.core import ApnAction, ApnSystem, State
from repro.apn.specs import (
    SpecConfig,
    _drop_action,
    _invariant_discrimination,
    _invariant_no_reuse,
    _replay_action,
    bag_add,
    tuple_remove_first,
    window_update,
)


def make_ceiling_system(config: SpecConfig | None = None) -> ApnSystem:
    """Build the ceiling-protocol APN system under ``config`` bounds."""
    config = config or SpecConfig()
    w, k = config.w, config.k

    initial: State = {
        "p.s": 1,
        "p.ceil": 1 + k,  # committed at SA establishment
        "p.pending": (),  # at most one in-flight ceiling save
        "p.up": True,
        "q.r": 0,
        "q.ceil": k,
        "q.pending": (),
        "q.wdw": (True,) * w,
        "q.up": True,
        "chan": (),
        "sent": frozenset(),
        "delivered": (),
        "p.reused": False,
        "resets_p_left": config.max_resets_p,
        "resets_q_left": config.max_resets_q,
        "replays_left": config.max_replays,
    }

    # ------------------------------------------------------------------
    # Process p
    # ------------------------------------------------------------------
    def p_send_apply(state: State) -> list[State]:
        next_state = dict(state)
        seq = state["p.s"]
        next_state["chan"] = state["chan"] + (seq,)
        if seq in state["sent"]:
            next_state["p.reused"] = True
        next_state["sent"] = state["sent"] | {seq}
        next_state["p.s"] = seq + 1
        return [next_state]

    def p_reserve_apply(state: State) -> list[State]:
        return [{**state, "p.pending": (state["p.ceil"] + k,)}]

    # ------------------------------------------------------------------
    # Process q
    # ------------------------------------------------------------------
    def q_receivable(state: State) -> list[int]:
        """In-flight messages below q's committed ceiling."""
        return sorted(
            {seq for seq in state["chan"] if seq < state["q.ceil"]}
        )

    def q_recv_apply(state: State) -> list[State]:
        out = []
        for seq in q_receivable(state):
            next_state = dict(state)
            next_state["chan"] = tuple_remove_first(state["chan"], seq)
            accepted, new_r, new_wdw = window_update(
                state["q.r"], state["q.wdw"], seq, w
            )
            next_state["q.r"] = new_r
            next_state["q.wdw"] = new_wdw
            if accepted:
                next_state["delivered"] = bag_add(state["delivered"], seq)
            out.append(next_state)
        return out

    def q_blocked(state: State) -> list[int]:
        return [seq for seq in state["chan"] if seq >= state["q.ceil"]]

    def q_reserve_apply(state: State) -> list[State]:
        blocked = q_blocked(state)
        target = max([state["q.ceil"] + k] + [seq + k for seq in blocked])
        return [{**state, "q.pending": (target,)}]

    actions = [
        ApnAction(
            "p",
            "send",
            guard=lambda state: (
                state["p.up"]
                and state["p.s"] <= config.max_seq
                and state["p.s"] < state["p.ceil"]  # the ceiling guard
                and len(state["chan"]) < config.chan_cap
            ),
            apply=p_send_apply,
        ),
        ApnAction(
            "p",
            "reserve",
            guard=lambda state: (
                state["p.up"]
                and not state["p.pending"]
                and state["p.ceil"] - state["p.s"] <= k
            ),
            apply=p_reserve_apply,
        ),
        ApnAction(
            "p",
            "save_commit",
            guard=lambda state: bool(state["p.pending"]),
            apply=lambda state: [
                {**state, "p.ceil": state["p.pending"][0], "p.pending": ()}
            ],
        ),
        ApnAction(
            "q",
            "recv",
            guard=lambda state: state["q.up"] and bool(q_receivable(state)),
            apply=q_recv_apply,
        ),
        ApnAction(
            "q",
            "reserve",
            guard=lambda state: (
                state["q.up"]
                and not state["q.pending"]
                and (
                    bool(q_blocked(state))
                    or state["q.ceil"] - state["q.r"] <= k
                )
            ),
            apply=q_reserve_apply,
        ),
        ApnAction(
            "q",
            "save_commit",
            guard=lambda state: bool(state["q.pending"]),
            apply=lambda state: [
                {**state, "q.ceil": state["q.pending"][0], "q.pending": ()}
            ],
        ),
        ApnAction(
            "p",
            "reset",
            guard=lambda state: state["p.up"] and state["resets_p_left"] > 0,
            apply=lambda state: [
                {
                    **state,
                    "p.up": False,
                    "p.pending": (),
                    "resets_p_left": state["resets_p_left"] - 1,
                }
            ],
        ),
        ApnAction(
            "p",
            "wake",
            guard=lambda state: not state["p.up"],
            apply=lambda state: [
                {**state, "p.up": True, "p.s": state["p.ceil"]}
            ],
        ),
        ApnAction(
            "q",
            "reset",
            guard=lambda state: state["q.up"] and state["resets_q_left"] > 0,
            apply=lambda state: [
                {
                    **state,
                    "q.up": False,
                    "q.pending": (),
                    "resets_q_left": state["resets_q_left"] - 1,
                }
            ],
        ),
        ApnAction(
            "q",
            "wake",
            guard=lambda state: not state["q.up"],
            apply=lambda state: [
                {
                    **state,
                    "q.up": True,
                    "q.r": state["q.ceil"],
                    "q.wdw": (True,) * w,
                }
            ],
        ),
        _replay_action(config),
    ]
    if config.with_loss:
        actions.append(_drop_action(config))

    return ApnSystem(
        initial,
        actions,
        invariants=[_invariant_discrimination, _invariant_no_reuse],
    )
