"""Render APN systems and executions in the paper's notation style.

The paper presents its protocols in Gouda's Abstract Protocol Notation.
These helpers render our executable specs and their runs in a matching
plain-text style, which keeps the correspondence between the paper's
figures and the code inspectable:

* :func:`render_system` — process/action inventory of a spec.
* :func:`render_state` — one state, grouped by process, channels last.
* :func:`render_execution` — a transition trace as ``label -> label``
  lines with the state deltas that each step caused.
"""

from __future__ import annotations

from typing import Any

from repro.apn.core import ApnSystem, State, Transition


def _group_vars(state: State) -> dict[str, dict[str, Any]]:
    groups: dict[str, dict[str, Any]] = {}
    for key in sorted(state):
        owner, _, var = key.partition(".")
        if not var:
            owner, var = "(system)", key
        groups.setdefault(owner, {})[var] = state[key]
    return groups


def render_state(state: State, indent: str = "  ") -> str:
    """Render one state grouped by process, paper-variable style."""
    lines = []
    groups = _group_vars(state)
    for owner in sorted(groups, key=lambda g: (g == "(system)", g)):
        assignments = ", ".join(
            f"{var} = {value!r}" for var, value in groups[owner].items()
        )
        lines.append(f"{indent}{owner}: {assignments}")
    return "\n".join(lines)


def render_system(system: ApnSystem, name: str = "protocol") -> str:
    """Render the process/action inventory of a spec."""
    by_process: dict[str, list[str]] = {}
    for action in system.actions:
        by_process.setdefault(action.process, []).append(action.name)
    lines = [f"protocol {name}"]
    for process, actions in sorted(by_process.items()):
        lines.append(f"process {process}")
        lines.append("begin")
        for i, action_name in enumerate(actions):
            prefix = "    " if i == 0 else "[]  "
            lines.append(f"{prefix}<{action_name}>")
        lines.append("end")
    lines.append("")
    lines.append("initially:")
    lines.append(render_state(system.initial))
    return "\n".join(lines)


def _delta(before: State, after: State) -> str:
    changes = []
    for key in sorted(after):
        if before.get(key) != after[key]:
            changes.append(f"{key}: {before.get(key)!r} -> {after[key]!r}")
    return "; ".join(changes) if changes else "(no change)"


def render_execution(
    system: ApnSystem, trace: list[Transition], limit: int | None = None
) -> str:
    """Render an executed trace with per-step state deltas."""
    lines = ["initial:", render_state(system.initial)]
    previous = system.initial
    steps = trace if limit is None else trace[:limit]
    for i, transition in enumerate(steps, start=1):
        lines.append(f"step {i}: {transition.label}")
        lines.append(f"  {_delta(previous, transition.state)}")
        previous = transition.state
    if limit is not None and len(trace) > limit:
        lines.append(f"... ({len(trace) - limit} more steps)")
    return "\n".join(lines)
