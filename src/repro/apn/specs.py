"""The paper's processes, encoded literally in APN form.

Two systems are built here, mirroring Sections 2 and 4:

* :func:`make_unprotected_system` — process ``p`` ("send msg(s); s := s+1")
  and process ``q`` (the three-case window action), plus reset/wake
  actions that erase volatile state, a bounded replay adversary, and
  optional channel loss.
* :func:`make_savefetch_system` — the Section 4 processes with ``lst``,
  background SAVE (modelled as an in-flight value that a separate commit
  action eventually persists — the untimed analogue of the save taking
  ``T`` time), crash-abort of in-flight saves, and the FETCH + 2K-leap +
  synchronous-SAVE wake action.

Ghost state (``sent``, ``delivered``, ``p.reused``) records the global
facts the correctness conditions quantify over; it never influences any
guard of a protocol action (only the adversary, who by definition knows
the traffic history, reads ``sent``).

Model notes:

* Sequence numbers are bounded by ``max_seq`` and channel capacity by
  ``chan_cap`` so the state space is finite.
* The post-wake synchronous SAVE is modelled atomically with the wake
  (the protocol forbids any protocol activity before it completes, and
  a *second* reset during it simply re-runs FETCH on the same committed
  value — covered separately by the timed tests of E11).
* The receive action branches over every distinct in-flight message, so
  exhaustive exploration covers **all** reorders the channel permits.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.apn.core import ApnAction, ApnSystem, State


# ----------------------------------------------------------------------
# Small pure helpers over the immutable state encoding
# ----------------------------------------------------------------------
def bag_add(bag: tuple[tuple[int, int], ...], seq: int) -> tuple[tuple[int, int], ...]:
    """Add one occurrence of ``seq`` to a sorted (seq, count) tuple-bag."""
    out = dict(bag)
    out[seq] = out.get(seq, 0) + 1
    return tuple(sorted(out.items()))

def tuple_remove_first(items: tuple[int, ...], value: int) -> tuple[int, ...]:
    """Remove the first occurrence of ``value`` from a tuple."""
    index = items.index(value)
    return items[:index] + items[index + 1 :]


def window_update(
    r: int, wdw: tuple[bool, ...], seq: int, w: int
) -> tuple[bool, int, tuple[bool, ...]]:
    """The three-case window logic of Section 2 on immutable data.

    Returns ``(accepted, new_r, new_wdw)``.  ``wdw[i-1]`` is the received
    flag of sequence number ``r - w + i`` (the paper's indexing).
    """
    if seq <= r - w:
        return False, r, wdw  # stale: discard
    if seq <= r:
        i = seq - r + w  # 1-based
        if wdw[i - 1]:
            return False, r, wdw  # duplicate: discard
        return True, r, wdw[: i - 1] + (True,) + wdw[i:]
    # seq > r: deliver and slide.
    shift = seq - r
    if shift >= w:
        new = (False,) * w
    else:
        new = wdw[shift:] + (False,) * shift
    new = new[: w - 1] + (True,)  # mark seq itself received
    return True, seq, new


@dataclass(frozen=True)
class SpecConfig:
    """Bounds that keep the APN model finite.

    Attributes:
        w: window size.
        k: SAVE interval (SAVE/FETCH system only).
        max_seq: largest sequence number p may send fresh.
        chan_cap: channel capacity (in-flight messages).
        max_resets_p / max_resets_q: reset budget per process.
        max_replays: adversary insertion budget.
        with_loss: allow the channel to drop messages.
        enforce_sizing: encode the Section 4 sizing rule ("K is at least
            the number of messages sendable during one SAVE", hence at
            most one SAVE in flight) by committing any pending save
            before a new one may start.  **Turning this off lets the
            explorer prove the rule necessary**: with overlapping saves
            permitted, FETCH can return a checkpoint more than 2K old and
            the leap no longer clears every used sequence number — the
            explorer finds that counterexample in seconds.
    """

    w: int = 2
    k: int = 1
    max_seq: int = 5
    chan_cap: int = 2
    max_resets_p: int = 1
    max_resets_q: int = 1
    max_replays: int = 2
    with_loss: bool = False
    enforce_sizing: bool = True


# ----------------------------------------------------------------------
# Shared channel / adversary / ghost actions
# ----------------------------------------------------------------------
def _recv_successors(state: State, handler) -> list[State]:
    """One successor per distinct in-flight message (all reorders)."""
    out = []
    for seq in sorted(set(state["chan"])):
        next_state = dict(state)
        next_state["chan"] = tuple_remove_first(state["chan"], seq)
        handler(next_state, seq)
        out.append(next_state)
    return out


def _drop_action(config: SpecConfig) -> ApnAction:
    def apply(state: State) -> list[State]:
        out = []
        for seq in sorted(set(state["chan"])):
            next_state = dict(state)
            next_state["chan"] = tuple_remove_first(state["chan"], seq)
            out.append(next_state)
        return out

    return ApnAction(
        process="chan",
        name="drop",
        guard=lambda state: bool(state["chan"]),
        apply=apply,
    )


def _replay_action(config: SpecConfig) -> ApnAction:
    def apply(state: State) -> list[State]:
        out = []
        for seq in sorted(state["sent"]):
            next_state = dict(state)
            next_state["chan"] = state["chan"] + (seq,)
            next_state["replays_left"] = state["replays_left"] - 1
            out.append(next_state)
        return out

    return ApnAction(
        process="adversary",
        name="replay",
        guard=lambda state: (
            state["replays_left"] > 0
            and len(state["chan"]) < config.chan_cap
            and bool(state["sent"])
        ),
        apply=apply,
    )


def _invariant_discrimination(state: State) -> str | None:
    for seq, count in state["delivered"]:
        if count > 1:
            return f"Discrimination violated: msg({seq}) delivered {count} times"
    return None


def _invariant_no_reuse(state: State) -> str | None:
    if state["p.reused"]:
        return "sender reused a sequence number after a reset"
    return None


# ----------------------------------------------------------------------
# Section 2: the unprotected system
# ----------------------------------------------------------------------
def make_unprotected_system(config: SpecConfig | None = None) -> ApnSystem:
    """The Section 2 protocol under resets — exploration *finds* the
    paper's Section 3 counterexamples (duplicate deliveries, reuse)."""
    config = config or SpecConfig()
    w = config.w

    initial: State = {
        "p.s": 1,
        "p.up": True,
        "q.r": 0,
        "q.wdw": (True,) * w,  # paper initial value: all true
        "q.up": True,
        "chan": (),
        "sent": frozenset(),
        "delivered": (),
        "p.reused": False,
        "resets_p_left": config.max_resets_p,
        "resets_q_left": config.max_resets_q,
        "replays_left": config.max_replays,
    }

    def send_apply(state: State) -> list[State]:
        next_state = dict(state)
        seq = state["p.s"]
        next_state["chan"] = state["chan"] + (seq,)
        if seq in state["sent"]:
            next_state["p.reused"] = True
        next_state["sent"] = state["sent"] | {seq}
        next_state["p.s"] = seq + 1
        return [next_state]

    def recv_handler(next_state: State, seq: int) -> None:
        accepted, new_r, new_wdw = window_update(
            next_state["q.r"], next_state["q.wdw"], seq, w
        )
        next_state["q.r"] = new_r
        next_state["q.wdw"] = new_wdw
        if accepted:
            next_state["delivered"] = bag_add(next_state["delivered"], seq)

    actions = [
        ApnAction(
            "p",
            "send",
            guard=lambda state: (
                state["p.up"]
                and state["p.s"] <= config.max_seq
                and len(state["chan"]) < config.chan_cap
            ),
            apply=send_apply,
        ),
        ApnAction(
            "q",
            "recv",
            guard=lambda state: state["q.up"] and bool(state["chan"]),
            apply=lambda state: _recv_successors(state, recv_handler),
        ),
        ApnAction(
            "p",
            "reset",
            guard=lambda state: state["p.up"] and state["resets_p_left"] > 0,
            apply=lambda state: [
                {**state, "p.up": False, "resets_p_left": state["resets_p_left"] - 1}
            ],
        ),
        ApnAction(
            "p",
            "wake",
            guard=lambda state: not state["p.up"],
            apply=lambda state: [{**state, "p.up": True, "p.s": 1}],
        ),
        ApnAction(
            "q",
            "reset",
            guard=lambda state: state["q.up"] and state["resets_q_left"] > 0,
            apply=lambda state: [
                {**state, "q.up": False, "resets_q_left": state["resets_q_left"] - 1}
            ],
        ),
        ApnAction(
            "q",
            "wake",
            guard=lambda state: not state["q.up"],
            apply=lambda state: [
                {**state, "q.up": True, "q.r": 0, "q.wdw": (True,) * w}
            ],
        ),
        _replay_action(config),
    ]
    if config.with_loss:
        actions.append(_drop_action(config))

    return ApnSystem(
        initial,
        actions,
        invariants=[_invariant_discrimination, _invariant_no_reuse],
    )


# ----------------------------------------------------------------------
# Section 4: the SAVE/FETCH system
# ----------------------------------------------------------------------
def make_savefetch_system(config: SpecConfig | None = None) -> ApnSystem:
    """The Section 4 protocol under resets — exploration *proves* (for
    the bounded configuration) that Discrimination holds and sequence
    numbers are never reused, the paper's Section 5 theorems."""
    config = config or SpecConfig()
    w, k = config.w, config.k

    initial: State = {
        "p.s": 1,
        "p.lst": 1,
        "p.persist": 1,
        "p.pending": (),  # background saves in flight (FIFO commit)
        "p.up": True,
        "q.r": 0,
        "q.lst": 0,
        "q.persist": 0,
        "q.pending": (),
        "q.wdw": (True,) * w,
        "q.up": True,
        "chan": (),
        "sent": frozenset(),
        "delivered": (),
        "p.reused": False,
        "resets_p_left": config.max_resets_p,
        "resets_q_left": config.max_resets_q,
        "replays_left": config.max_replays,
    }

    def start_save(next_state: State, side: str, value: int) -> None:
        """Initiate a background SAVE, honouring the sizing rule.

        With ``enforce_sizing`` (the paper's operating condition), a new
        save can only start once the previous one has committed — in the
        timed world this is guaranteed because K messages take at least
        one save duration; here we model it by committing the pending
        save at that instant.
        """
        pending = next_state[f"{side}.pending"]
        if config.enforce_sizing and pending:
            next_state[f"{side}.persist"] = pending[0]
            pending = pending[1:]
        next_state[f"{side}.pending"] = pending + (value,)

    def send_apply(state: State) -> list[State]:
        next_state = dict(state)
        seq = state["p.s"]
        next_state["chan"] = state["chan"] + (seq,)
        if seq in state["sent"]:
            next_state["p.reused"] = True
        next_state["sent"] = state["sent"] | {seq}
        new_s = seq + 1
        next_state["p.s"] = new_s
        if new_s >= k + state["p.lst"]:  # "if s >= Kp + lst -> lst := s; & SAVE(s)"
            next_state["p.lst"] = new_s
            start_save(next_state, "p", new_s)
        return [next_state]

    def recv_handler(next_state: State, seq: int) -> None:
        accepted, new_r, new_wdw = window_update(
            next_state["q.r"], next_state["q.wdw"], seq, w
        )
        next_state["q.r"] = new_r
        next_state["q.wdw"] = new_wdw
        if accepted:
            next_state["delivered"] = bag_add(next_state["delivered"], seq)
        if new_r >= k + next_state["q.lst"]:  # "if r >= Kq + lst -> ... SAVE(r)"
            next_state["q.lst"] = new_r
            start_save(next_state, "q", new_r)

    def p_wake_apply(state: State) -> list[State]:
        fetched = state["p.persist"]  # FETCH(s)
        leaped = fetched + 2 * k  # SAVE(s + 2Kp); s := s + 2Kp
        return [
            {
                **state,
                "p.up": True,
                "p.s": leaped,
                "p.lst": leaped,
                "p.persist": leaped,
            }
        ]

    def q_wake_apply(state: State) -> list[State]:
        fetched = state["q.persist"]  # FETCH(r)
        leaped = fetched + 2 * k  # SAVE(r + 2Kq); r := r + 2Kq
        return [
            {
                **state,
                "q.up": True,
                "q.r": leaped,
                "q.lst": leaped,
                "q.persist": leaped,
                "q.wdw": (True,) * w,  # "do i <= w -> wdw[i] := true"
            }
        ]

    actions = [
        ApnAction(
            "p",
            "send",
            guard=lambda state: (
                state["p.up"]
                and state["p.s"] <= config.max_seq
                and len(state["chan"]) < config.chan_cap
            ),
            apply=send_apply,
        ),
        ApnAction(
            "p",
            "save_commit",
            guard=lambda state: bool(state["p.pending"]),
            apply=lambda state: [
                {
                    **state,
                    "p.persist": state["p.pending"][0],
                    "p.pending": state["p.pending"][1:],
                }
            ],
        ),
        ApnAction(
            "q",
            "recv",
            guard=lambda state: state["q.up"] and bool(state["chan"]),
            apply=lambda state: _recv_successors(state, recv_handler),
        ),
        ApnAction(
            "q",
            "save_commit",
            guard=lambda state: bool(state["q.pending"]),
            apply=lambda state: [
                {
                    **state,
                    "q.persist": state["q.pending"][0],
                    "q.pending": state["q.pending"][1:],
                }
            ],
        ),
        ApnAction(
            "p",
            "reset",
            guard=lambda state: state["p.up"] and state["resets_p_left"] > 0,
            apply=lambda state: [
                {
                    **state,
                    "p.up": False,
                    "p.pending": (),  # crash aborts in-flight saves
                    "resets_p_left": state["resets_p_left"] - 1,
                }
            ],
        ),
        ApnAction(
            "p",
            "wake",
            guard=lambda state: not state["p.up"],
            apply=p_wake_apply,
        ),
        ApnAction(
            "q",
            "reset",
            guard=lambda state: state["q.up"] and state["resets_q_left"] > 0,
            apply=lambda state: [
                {
                    **state,
                    "q.up": False,
                    "q.pending": (),
                    "resets_q_left": state["resets_q_left"] - 1,
                }
            ],
        ),
        ApnAction(
            "q",
            "wake",
            guard=lambda state: not state["q.up"],
            apply=q_wake_apply,
        ),
        _replay_action(config),
    ]
    if config.with_loss:
        actions.append(_drop_action(config))

    return ApnSystem(
        initial,
        actions,
        invariants=[_invariant_discrimination, _invariant_no_reuse],
    )
