"""Cross-fleet aggregation of campaign results.

Turns a pile of :class:`~repro.fleet.results.TaskRecord` lines into the
campaign-level verdicts an operator actually reads: how many sessions
converged, the distribution of convergence times, the collateral totals
(discards, lost sequence numbers, accepted replays), and — most useful in
practice — the worst-case outliers *with their repro seeds*, so any tail
case replays as a single deterministic scenario call.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Sequence

from repro.fleet.results import STATUS_ERROR, STATUS_OK, TaskRecord

#: Percentile points reported for convergence time.
PERCENTILES = (50.0, 90.0, 99.0, 100.0)


def percentile(values: Sequence[float], q: float) -> float:
    """Linear-interpolation percentile (``q`` in [0, 100]) of ``values``.

    Raises:
        ValueError: on an empty sequence or ``q`` outside [0, 100].
    """
    if not values:
        raise ValueError("percentile of an empty sequence")
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"percentile q={q} outside [0, 100]")
    ordered = sorted(values)
    if len(ordered) == 1:
        return ordered[0]
    rank = (q / 100.0) * (len(ordered) - 1)
    low = int(rank)
    high = min(low + 1, len(ordered) - 1)
    return ordered[low] + (rank - low) * (ordered[high] - ordered[low])


@dataclass
class Outlier:
    """A worst-case session, carrying everything needed to replay it."""

    task_id: str
    scenario: str
    seed: int
    params: dict[str, Any]
    reason: str
    value: float

    def summary(self) -> str:
        return (
            f"{self.task_id} [{self.reason}={self.value:g}] "
            f"scenario={self.scenario} seed={self.seed} params={self.params}"
        )


@dataclass
class FleetSummary:
    """Aggregate scores for one campaign's result records."""

    tasks: int = 0
    ok: int = 0
    errors: int = 0
    converged: int = 0
    with_violations: int = 0
    replays_accepted_total: int = 0
    fresh_discarded_total: int = 0
    lost_seqnums_total: int = 0
    resets_total: int = 0
    convergence_time: dict[str, float] = field(default_factory=dict)
    wall_time_total: float = 0.0
    outliers: list[Outlier] = field(default_factory=list)

    def render(self) -> str:
        """Multi-line human-readable campaign report."""
        lines = [
            f"sessions: {self.tasks} ({self.ok} ok, {self.errors} errored)",
            f"converged: {self.converged}/{self.ok}"
            f" ({self.with_violations} with bound violations)",
            f"resets injected: {self.resets_total}",
            f"replays accepted: {self.replays_accepted_total}",
            f"fresh discarded: {self.fresh_discarded_total}",
            f"seqnums lost: {self.lost_seqnums_total}",
        ]
        if self.convergence_time:
            formatted = "  ".join(
                f"{name}={value * 1e6:.1f}us"
                for name, value in self.convergence_time.items()
            )
            lines.append(f"time-to-converge: {formatted}")
        lines.append(f"worker wall time: {self.wall_time_total:.2f}s")
        if self.outliers:
            lines.append("worst cases (repro seeds):")
            lines.extend(f"  {outlier.summary()}" for outlier in self.outliers)
        return "\n".join(lines)


def summarize(records: Iterable[TaskRecord], worst_k: int = 5) -> FleetSummary:
    """Fold task records into a :class:`FleetSummary`.

    A resumed store may hold several records for one task (an error line
    from an interrupted run, then the successful retry); each task counts
    once, its **latest** record winning — stores are append-ordered, so
    the latest record is the current truth.

    Outlier selection: every errored or non-converged session qualifies
    outright (reason ``error`` / ``violations`` / ``replays``); among the
    rest, the slowest convergers fill the remaining ``worst_k`` slots.
    """
    latest: dict[str, TaskRecord] = {}
    for record in records:
        latest[record.task_id] = record
    summary = FleetSummary()
    times: list[float] = []
    candidates: list[Outlier] = []
    slow: list[Outlier] = []
    for record in latest.values():
        summary.tasks += 1
        summary.wall_time_total += record.wall_time
        if record.status == STATUS_ERROR:
            summary.errors += 1
            candidates.append(Outlier(
                task_id=record.task_id,
                scenario=record.scenario,
                seed=record.seed,
                params=dict(record.params),
                reason="error",
                value=1.0,
            ))
            continue
        if record.status != STATUS_OK:
            continue
        summary.ok += 1
        metrics = record.metrics
        replays = metrics.get("replays_accepted", 0)
        violations = metrics.get("bound_violations", [])
        summary.replays_accepted_total += replays
        summary.fresh_discarded_total += metrics.get("fresh_discarded", 0)
        summary.lost_seqnums_total += sum(metrics.get("lost_seqnums_per_reset", []))
        summary.resets_total += (
            metrics.get("sender_resets", 0) + metrics.get("receiver_resets", 0)
        )
        task_times = metrics.get("time_to_converge", [])
        times.extend(task_times)
        if metrics.get("converged", False):
            summary.converged += 1
        if violations:
            summary.with_violations += 1
            candidates.append(Outlier(
                task_id=record.task_id,
                scenario=record.scenario,
                seed=record.seed,
                params=dict(record.params),
                reason="violations",
                value=float(len(violations)),
            ))
        elif replays:
            candidates.append(Outlier(
                task_id=record.task_id,
                scenario=record.scenario,
                seed=record.seed,
                params=dict(record.params),
                reason="replays",
                value=float(replays),
            ))
        elif task_times:
            slow.append(Outlier(
                task_id=record.task_id,
                scenario=record.scenario,
                seed=record.seed,
                params=dict(record.params),
                reason="slow_converge",
                value=max(task_times),
            ))
    if times:
        summary.convergence_time = {
            f"p{q:g}" if q < 100.0 else "max": percentile(times, q)
            for q in PERCENTILES
        }
    candidates.sort(key=lambda o: (-o.value, o.task_id))
    slow.sort(key=lambda o: (-o.value, o.task_id))
    summary.outliers = (candidates + slow)[:worst_k]
    return summary
