"""Cross-fleet aggregation of campaign results — streaming, constant memory.

Turns a pile of :class:`~repro.fleet.results.TaskRecord` lines into the
campaign-level verdicts an operator actually reads: how many sessions
converged, the distribution of convergence times, the collateral totals
(discards, lost sequence numbers, accepted replays), and — most useful in
practice — the worst-case outliers *with their repro seeds*, so any tail
case replays as a single deterministic scenario call.

Scale story.  The pre-PR-8 aggregator materialised every record (and
every convergence time) before reducing; a 10^6-session campaign blew
memory before the first percentile printed.  The fold is now a
:class:`CampaignAggregate` — counters, a :class:`QuantileSketch`, and a
bounded :class:`OutlierReservoir` — whose per-record cost is O(1) and
whose ``merge`` is associative and commutative, so shards fold in any
grouping to byte-identical results.  :func:`summarize_store` exploits a
sharded store's layout to dedup resumed/retried records one shard at a
time, holding O(shard) state instead of O(campaign).

Exact vs approximate.  Convergence-time values are additionally kept
verbatim up to ``exact_cap`` observations; within the cap, percentiles
are the exact linear-interpolation values (bit-for-bit what the old
aggregator produced).  Past the cap the exact buffer is dropped and the
sketch answers: a conservative per-value upper bound within one
sub-bucket, relative error at most ``2**(1/8) - 1`` (~9.05%).  ``max``
and counters are always exact.  Either way the result is a pure function
of the record *multiset* — independent of job count, shard count, and
fold order.
"""

from __future__ import annotations

import math
from bisect import bisect_right
from dataclasses import dataclass, field
from typing import Any, Iterable, Mapping, Sequence

from repro.fleet.results import STATUS_ERROR, STATUS_OK, TaskRecord

#: Percentile points reported for convergence time.
PERCENTILES = (50.0, 90.0, 99.0, 100.0)

#: Sub-buckets per octave in :class:`QuantileSketch` — 8 log2-uniform
#: slices per power of two, giving a guaranteed relative error of at
#: most 2**(1/8) - 1 (~9.05%) per quantile.
SKETCH_SUBBUCKETS = 8

#: Exclusive upper edges of the sub-buckets within one octave, as
#: mantissa multipliers in [1, 2].
_MANTISSA_EDGES = tuple(
    2.0 ** (k / SKETCH_SUBBUCKETS) for k in range(SKETCH_SUBBUCKETS + 1)
)

#: Guaranteed worst-case relative error of a sketch quantile.
SKETCH_RELATIVE_ERROR = 2.0 ** (1.0 / SKETCH_SUBBUCKETS) - 1.0

#: Keep convergence times verbatim up to this many observations; beyond
#: it the aggregate degrades to sketch percentiles.  64k floats is ~0.5MB
#: — irrelevant next to the record stream — while keeping every campaign
#: that fits byte-identical to the historical exact aggregator.
DEFAULT_EXACT_CAP = 65_536


def percentile(values: Sequence[float], q: float) -> float:
    """Linear-interpolation percentile (``q`` in [0, 100]) of ``values``.

    Raises:
        ValueError: on an empty sequence or ``q`` outside [0, 100].
    """
    if not values:
        raise ValueError("percentile of an empty sequence")
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"percentile q={q} outside [0, 100]")
    ordered = sorted(values)
    if len(ordered) == 1:
        return ordered[0]
    rank = (q / 100.0) * (len(ordered) - 1)
    low = int(rank)
    high = min(low + 1, len(ordered) - 1)
    return ordered[low] + (rank - low) * (ordered[high] - ordered[low])


class QuantileSketch:
    """Streaming quantiles over positive values in bounded memory.

    A sparse log-bucket histogram in the style of
    :class:`repro.obs.hub.LogHistogram`, refined to
    :data:`SKETCH_SUBBUCKETS` slices per octave: bucket edges are the
    process-wide constants ``2**(i/8)``, so sketches from any shard,
    worker, or run merge by plain vector addition — the same algebra the
    obs rollup relies on — and ``merge`` is associative and commutative
    by construction.

    :meth:`quantile` returns the *upper edge* of the bucket holding the
    ``ceil(q * count)``-th order statistic, clamped to the observed
    maximum: a conservative estimate that never understates and is
    within :data:`SKETCH_RELATIVE_ERROR` of the true order statistic.
    Non-positive values (possible in principle for a degenerate metric)
    count toward ranks via an underflow bucket answered by the exact
    minimum.
    """

    __slots__ = ("counts", "underflow", "count", "total", "minimum", "maximum")

    def __init__(self) -> None:
        #: sparse bucket table: global bucket index -> count.
        self.counts: dict[int, int] = {}
        self.underflow = 0
        self.count = 0
        self.total = 0.0
        self.minimum = math.inf
        self.maximum = -math.inf

    @staticmethod
    def bucket_index(x: float) -> int:
        """Global bucket index of positive ``x`` (octave * 8 + slice)."""
        mantissa, exponent = math.frexp(x)  # x = m * 2**e, m in [0.5, 1)
        octave = exponent - 1
        slice_index = bisect_right(_MANTISSA_EDGES, 2.0 * mantissa) - 1
        if slice_index >= SKETCH_SUBBUCKETS:  # mantissa exactly 2.0 cannot
            slice_index = SKETCH_SUBBUCKETS - 1  # happen, but stay safe
        return octave * SKETCH_SUBBUCKETS + slice_index

    @staticmethod
    def bucket_upper_bound(index: int) -> float:
        """Exclusive upper edge of global bucket ``index``."""
        octave, slice_index = divmod(index, SKETCH_SUBBUCKETS)
        return _MANTISSA_EDGES[slice_index + 1] * 2.0 ** octave

    def observe(self, x: float) -> None:
        x = float(x)
        if x > 0.0 and math.isfinite(x):
            index = self.bucket_index(x)
            self.counts[index] = self.counts.get(index, 0) + 1
        else:
            self.underflow += 1
        self.count += 1
        self.total += x
        if x < self.minimum:
            self.minimum = x
        if x > self.maximum:
            self.maximum = x

    def merge(self, other: "QuantileSketch") -> None:
        """Fold another sketch in (vector addition on the fixed buckets)."""
        for index, bucket_count in other.counts.items():
            self.counts[index] = self.counts.get(index, 0) + bucket_count
        self.underflow += other.underflow
        self.count += other.count
        self.total += other.total
        self.minimum = min(self.minimum, other.minimum)
        self.maximum = max(self.maximum, other.maximum)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Conservative ``q``-quantile (``q`` in [0, 1]); 0.0 when empty."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if self.count == 0:
            return 0.0
        rank = q * self.count
        seen = self.underflow
        if seen >= rank and self.underflow:
            return self.minimum
        for index in sorted(self.counts):
            seen += self.counts[index]
            if seen >= rank:
                return min(self.bucket_upper_bound(index), self.maximum)
        return self.maximum

    def quantile_bounds(self, q: float) -> tuple[float, float]:
        """``(lo, hi)`` bounds containing the true ``q``-quantile.

        ``hi`` is the conservative :meth:`quantile`; ``lo`` divides out
        the documented :data:`SKETCH_RELATIVE_ERROR` (<=9.05%), clamped
        to the observed minimum.  Degenerate cases are exact: empty ->
        ``(0.0, 0.0)``; a single observation or an all-equal stream
        (min == max) -> the value itself with zero width.  Cross-run
        diffing gates on these bounds, which is what makes sketch noise
        unable to fake a regression.
        """
        if self.count == 0:
            return (0.0, 0.0)
        if self.minimum == self.maximum:
            return (self.maximum, self.maximum)
        high = self.quantile(q)
        if high <= 0.0:
            # Underflow-resolved quantile: the exact minimum answered.
            return (min(self.minimum, high), high)
        low = high / (1.0 + SKETCH_RELATIVE_ERROR)
        if math.isfinite(self.minimum):
            low = max(low, self.minimum)
        return (min(low, high), high)

    def as_dict(self) -> dict[str, Any]:
        return {
            "count": self.count,
            "underflow": self.underflow,
            "total": self.total,
            "min": self.minimum if self.count else 0.0,
            "max": self.maximum if self.count else 0.0,
            "mean": self.mean,
            "relative_error": SKETCH_RELATIVE_ERROR,
            # Sparse encoding: only occupied buckets, index -> count.
            "buckets": {
                str(index): self.counts[index] for index in sorted(self.counts)
            },
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "QuantileSketch":
        """Rebuild from :meth:`as_dict` output (exact round-trip).

        Payloads missing ``min``/``max`` (trimmed or older exports)
        derive honest extremes from the occupied bucket edges: the
        derived min is a bucket *lower* edge (never overstates), the
        derived max a bucket *upper* edge (never understates), so
        quantiles and diff bounds stay conservative.
        """
        sketch = cls()
        for index, bucket_count in data.get("buckets", {}).items():
            sketch.counts[int(index)] = int(bucket_count)
        sketch.underflow = int(data.get("underflow", 0))
        sketch.count = int(data.get("count", 0))
        sketch.total = float(data.get("total", 0.0))
        if sketch.count:
            if "min" in data:
                sketch.minimum = float(data["min"])
            elif sketch.underflow:
                sketch.minimum = 0.0
            elif sketch.counts:
                sketch.minimum = cls.bucket_upper_bound(
                    min(sketch.counts) - 1
                )
            else:
                sketch.minimum = 0.0
            if "max" in data:
                sketch.maximum = float(data["max"])
            elif sketch.counts:
                sketch.maximum = cls.bucket_upper_bound(max(sketch.counts))
            else:
                sketch.maximum = sketch.minimum
        return sketch


@dataclass
class Outlier:
    """A worst-case session, carrying everything needed to replay it."""

    task_id: str
    scenario: str
    seed: int
    params: dict[str, Any]
    reason: str
    value: float

    def summary(self) -> str:
        return (
            f"{self.task_id} [{self.reason}={self.value:g}] "
            f"scenario={self.scenario} seed={self.seed} params={self.params}"
        )

    def as_dict(self) -> dict[str, Any]:
        return {
            "task_id": self.task_id,
            "scenario": self.scenario,
            "seed": self.seed,
            "params": dict(self.params),
            "reason": self.reason,
            "value": self.value,
        }


def _outlier_key(outlier: Outlier) -> tuple[float, str]:
    return (-outlier.value, outlier.task_id)


class OutlierReservoir:
    """Bounded worst-case selection, independent of insertion order.

    Two classes with the historical priority rule: *failures* (errors,
    bound violations, accepted replays) always outrank *slow* convergers;
    within a class, larger value wins, task id breaks ties.  Each class
    keeps at most ``4 * worst_k`` candidates between prunes, so memory is
    O(worst_k) however many records stream through, and because top-k
    under a total order is a pure function of the multiset, any insertion
    or merge order yields the same selection.
    """

    def __init__(self, worst_k: int) -> None:
        if worst_k < 0:
            raise ValueError(f"worst_k must be >= 0, got {worst_k}")
        self.worst_k = worst_k
        self._failures: list[Outlier] = []
        self._slow: list[Outlier] = []

    def _offer(self, pool: list[Outlier], outlier: Outlier) -> None:
        pool.append(outlier)
        if len(pool) > 4 * self.worst_k:
            pool.sort(key=_outlier_key)
            del pool[self.worst_k:]

    def add_failure(self, outlier: Outlier) -> None:
        self._offer(self._failures, outlier)

    def add_slow(self, outlier: Outlier) -> None:
        self._offer(self._slow, outlier)

    def merge(self, other: "OutlierReservoir") -> None:
        for outlier in other._failures:
            self.add_failure(outlier)
        for outlier in other._slow:
            self.add_slow(outlier)

    def top(self) -> list[Outlier]:
        """The final worst-k list: failures first, then slow convergers."""
        failures = sorted(self._failures, key=_outlier_key)
        slow = sorted(self._slow, key=_outlier_key)
        return (failures + slow)[: self.worst_k]


@dataclass
class FleetSummary:
    """Aggregate scores for one campaign's result records."""

    tasks: int = 0
    ok: int = 0
    errors: int = 0
    converged: int = 0
    with_violations: int = 0
    replays_accepted_total: int = 0
    fresh_discarded_total: int = 0
    lost_seqnums_total: int = 0
    resets_total: int = 0
    convergence_time: dict[str, float] = field(default_factory=dict)
    wall_time_total: float = 0.0
    outliers: list[Outlier] = field(default_factory=list)
    #: ``"exact"`` while every convergence time fit the exact buffer,
    #: ``"sketch"`` once percentiles come from the quantile sketch.
    percentile_mode: str = "exact"

    def render(self) -> str:
        """Multi-line human-readable campaign report."""
        lines = [
            f"sessions: {self.tasks} ({self.ok} ok, {self.errors} errored)",
            f"converged: {self.converged}/{self.ok}"
            f" ({self.with_violations} with bound violations)",
            f"resets injected: {self.resets_total}",
            f"replays accepted: {self.replays_accepted_total}",
            f"fresh discarded: {self.fresh_discarded_total}",
            f"seqnums lost: {self.lost_seqnums_total}",
        ]
        if self.convergence_time:
            formatted = "  ".join(
                f"{name}={value * 1e6:.1f}us"
                for name, value in self.convergence_time.items()
            )
            qualifier = "" if self.percentile_mode == "exact" else (
                f" (sketch, <={SKETCH_RELATIVE_ERROR:.1%} high)"
            )
            lines.append(f"time-to-converge: {formatted}{qualifier}")
        lines.append(f"worker wall time: {self.wall_time_total:.2f}s")
        if self.outliers:
            lines.append("worst cases (repro seeds):")
            lines.extend(f"  {outlier.summary()}" for outlier in self.outliers)
        return "\n".join(lines)

    def as_dict(self) -> dict[str, Any]:
        """JSON-safe export (the CLI's ``aggregate.json``)."""
        return {
            "tasks": self.tasks,
            "ok": self.ok,
            "errors": self.errors,
            "converged": self.converged,
            "with_violations": self.with_violations,
            "replays_accepted_total": self.replays_accepted_total,
            "fresh_discarded_total": self.fresh_discarded_total,
            "lost_seqnums_total": self.lost_seqnums_total,
            "resets_total": self.resets_total,
            "convergence_time": dict(self.convergence_time),
            "percentile_mode": self.percentile_mode,
            "wall_time_total": self.wall_time_total,
            "outliers": [outlier.as_dict() for outlier in self.outliers],
        }


class CampaignAggregate:
    """The streaming fold: O(1) per record, mergeable across shards.

    Feed it *deduplicated* records (one per task — latest wins; the
    :func:`summarize` / :func:`summarize_store` drivers handle that) via
    :meth:`observe`, or fold whole sub-aggregates in via :meth:`merge`.
    ``merge`` is associative and commutative, so a campaign can be
    reduced per shard, per worker, or in one pass and the
    :meth:`summary` is identical.
    """

    def __init__(
        self, worst_k: int = 5, exact_cap: int = DEFAULT_EXACT_CAP
    ) -> None:
        self.worst_k = worst_k
        self.exact_cap = exact_cap
        self.tasks = 0
        self.ok = 0
        self.errors = 0
        self.converged = 0
        self.with_violations = 0
        self.replays_accepted_total = 0
        self.fresh_discarded_total = 0
        self.lost_seqnums_total = 0
        self.resets_total = 0
        self.wall_time_total = 0.0
        self.sketch = QuantileSketch()
        #: exact convergence times, until the cap spills to sketch-only.
        self._exact: list[float] | None = []
        self.reservoir = OutlierReservoir(worst_k)

    # ------------------------------------------------------------------
    # Folding
    # ------------------------------------------------------------------
    def _observe_time(self, value: float) -> None:
        self.sketch.observe(value)
        if self._exact is not None:
            self._exact.append(value)
            if len(self._exact) > self.exact_cap:
                self._exact = None

    def observe(self, record: TaskRecord) -> None:
        """Fold one (deduplicated) task record."""
        self.tasks += 1
        self.wall_time_total += record.wall_time
        if record.status == STATUS_ERROR:
            self.errors += 1
            self.reservoir.add_failure(Outlier(
                task_id=record.task_id,
                scenario=record.scenario,
                seed=record.seed,
                params=dict(record.params),
                reason="error",
                value=1.0,
            ))
            return
        if record.status != STATUS_OK:
            return
        self.ok += 1
        metrics = record.metrics
        replays = metrics.get("replays_accepted", 0)
        violations = metrics.get("bound_violations", [])
        self.replays_accepted_total += replays
        self.fresh_discarded_total += metrics.get("fresh_discarded", 0)
        self.lost_seqnums_total += sum(metrics.get("lost_seqnums_per_reset", []))
        self.resets_total += (
            metrics.get("sender_resets", 0) + metrics.get("receiver_resets", 0)
        )
        task_times = metrics.get("time_to_converge", [])
        for value in task_times:
            self._observe_time(value)
        if metrics.get("converged", False):
            self.converged += 1
        if violations:
            self.with_violations += 1
            self.reservoir.add_failure(Outlier(
                task_id=record.task_id,
                scenario=record.scenario,
                seed=record.seed,
                params=dict(record.params),
                reason="violations",
                value=float(len(violations)),
            ))
        elif replays:
            self.reservoir.add_failure(Outlier(
                task_id=record.task_id,
                scenario=record.scenario,
                seed=record.seed,
                params=dict(record.params),
                reason="replays",
                value=float(replays),
            ))
        elif task_times:
            self.reservoir.add_slow(Outlier(
                task_id=record.task_id,
                scenario=record.scenario,
                seed=record.seed,
                params=dict(record.params),
                reason="slow_converge",
                value=max(task_times),
            ))

    def merge(self, other: "CampaignAggregate") -> None:
        """Fold a sub-aggregate in (associative, commutative)."""
        self.tasks += other.tasks
        self.ok += other.ok
        self.errors += other.errors
        self.converged += other.converged
        self.with_violations += other.with_violations
        self.replays_accepted_total += other.replays_accepted_total
        self.fresh_discarded_total += other.fresh_discarded_total
        self.lost_seqnums_total += other.lost_seqnums_total
        self.resets_total += other.resets_total
        self.wall_time_total += other.wall_time_total
        self.sketch.merge(other.sketch)
        if self._exact is None or other._exact is None:
            self._exact = None
        else:
            self._exact.extend(other._exact)
            if len(self._exact) > self.exact_cap:
                self._exact = None
        self.reservoir.merge(other.reservoir)

    # ------------------------------------------------------------------
    # Finalisation
    # ------------------------------------------------------------------
    @property
    def percentile_mode(self) -> str:
        return "exact" if self._exact is not None else "sketch"

    def convergence_percentiles(self) -> dict[str, float]:
        """The reported percentile points (exact or sketch, see module
        docstring); empty when no convergence times were observed."""
        if self.sketch.count == 0:
            return {}
        if self._exact is not None:
            return {
                f"p{q:g}" if q < 100.0 else "max": percentile(self._exact, q)
                for q in PERCENTILES
            }
        points = {
            f"p{q:g}": self.sketch.quantile(q / 100.0)
            for q in PERCENTILES if q < 100.0
        }
        points["max"] = self.sketch.maximum  # the max is always exact
        return points

    def summary(self) -> FleetSummary:
        return FleetSummary(
            tasks=self.tasks,
            ok=self.ok,
            errors=self.errors,
            converged=self.converged,
            with_violations=self.with_violations,
            replays_accepted_total=self.replays_accepted_total,
            fresh_discarded_total=self.fresh_discarded_total,
            lost_seqnums_total=self.lost_seqnums_total,
            resets_total=self.resets_total,
            convergence_time=self.convergence_percentiles(),
            wall_time_total=self.wall_time_total,
            outliers=self.reservoir.top(),
            percentile_mode=self.percentile_mode,
        )


def summarize(
    records: Iterable[TaskRecord],
    worst_k: int = 5,
    exact_cap: int = DEFAULT_EXACT_CAP,
) -> FleetSummary:
    """Fold task records into a :class:`FleetSummary`.

    A resumed store may hold several records for one task (an error line
    from an interrupted run, then the successful retry); each task counts
    once, its **latest** record winning — stores are append-ordered, so
    the latest record is the current truth.

    This generic-iterable path holds the deduplication map in memory;
    prefer :func:`summarize_store` for a store handle, which dedups one
    shard at a time.
    """
    latest: dict[str, TaskRecord] = {}
    for record in records:
        latest[record.task_id] = record
    aggregate = CampaignAggregate(worst_k=worst_k, exact_cap=exact_cap)
    for record in latest.values():
        aggregate.observe(record)
    return aggregate.summary()


def iter_shards(store: Any) -> list[Any]:
    """A store's independently reducible pieces (itself, if unsharded)."""
    shards = getattr(store, "shards", None)
    if shards:
        return list(shards)
    return [store]


def _fold_shard(
    shard: Any, worst_k: int, exact_cap: int
) -> CampaignAggregate:
    """Two-pass shard fold: latest-record-wins in O(shard tasks) memory.

    Pass 1 notes each task's last record position (a task's records never
    leave its shard, so within-shard order is the whole truth); pass 2
    streams the records again, folding only the winners.  Nothing heavier
    than one record and the position map is ever live.
    """
    last_position: dict[str, int] = {}
    for position, record in enumerate(shard.records()):
        last_position[record.task_id] = position
    aggregate = CampaignAggregate(worst_k=worst_k, exact_cap=exact_cap)
    for position, record in enumerate(shard.records()):
        if last_position[record.task_id] == position:
            aggregate.observe(record)
    return aggregate


def aggregate_store(
    store: Any, worst_k: int = 5, exact_cap: int = DEFAULT_EXACT_CAP
) -> CampaignAggregate:
    """Reduce a result store shard-by-shard into one campaign aggregate."""
    total = CampaignAggregate(worst_k=worst_k, exact_cap=exact_cap)
    for shard in iter_shards(store):
        total.merge(_fold_shard(shard, worst_k, exact_cap))
    return total


def summarize_store(
    store: Any, worst_k: int = 5, exact_cap: int = DEFAULT_EXACT_CAP
) -> FleetSummary:
    """:func:`summarize`, but exploiting the store's shard layout.

    On a :class:`~repro.fleet.results.ShardedResultStore` the peak state
    is O(largest shard): each shard is deduplicated and folded
    independently, then the O(1)-sized aggregates merge.  Single-file and
    SQLite stores reduce as one shard (the dedup map spans the campaign,
    but records still stream one at a time).
    """
    return aggregate_store(store, worst_k=worst_k, exact_cap=exact_cap).summary()
