"""Fleet campaigns: parallel multi-session runs with durable results.

One :class:`ProtocolHarness` is one sender–receiver pair; a *fleet* is
thousands of them — a declarative population of scenario sessions under
mixed reset/loss/replay stories, executed serially or across a process
pool, with every finished session appended to a crash-tolerant JSONL
store and aggregated into campaign-level verdicts.

* :mod:`~repro.fleet.spec` — :class:`CampaignSpec` / :class:`ScenarioGrid`,
  the JSON-round-trippable campaign description, and its deterministic
  expansion into seeded :class:`FleetTask` units.
* :mod:`~repro.fleet.runner` — :class:`FleetRunner`, the serial /
  ``multiprocessing`` executor with resume-after-interrupt.
* :mod:`~repro.fleet.results` — :class:`TaskRecord` and the store
  backends behind one contract: :class:`ResultStore` (single JSONL
  file), :class:`ShardedResultStore` (spawn-key-prefix sharding for
  million-task campaigns), :class:`SqliteResultStore` (WAL,
  persist-before-acknowledge), selected via :func:`make_store`.
* :mod:`~repro.fleet.aggregate` — :func:`summarize` /
  :func:`summarize_store` and :class:`FleetSummary`: streaming
  constant-memory campaign aggregation (quantile sketch + bounded
  outlier reservoir) with repro seeds on every worst case.

Quickstart::

    from repro.fleet import ResultStore, example_spec, run_campaign, summarize

    spec = example_spec(sessions=60)
    store = ResultStore("fleet_runs/demo/results.jsonl")
    run_campaign(spec, store, jobs=4)
    print(summarize(store.records()).render())

or from the command line::

    python -m repro fleet campaign.json --jobs 4 --out fleet_runs/demo
"""

from repro.fleet.aggregate import (
    CampaignAggregate,
    FleetSummary,
    Outlier,
    OutlierReservoir,
    QuantileSketch,
    percentile,
    summarize,
    summarize_store,
)
from repro.fleet.results import (
    DEFAULT_SHARD_BITS,
    PROGRESS_LEDGER_FILE,
    STORE_KINDS,
    MemoryResultStore,
    ResultStore,
    ShardedResultStore,
    SqliteResultStore,
    TaskRecord,
    detect_store_kind,
    make_store,
    progress_ledger_path,
    report_metrics,
    shard_index,
)
from repro.fleet.runner import (
    FleetOutcome,
    FleetRunner,
    execute_task,
    run_campaign,
    scenario_metrics,
)
from repro.fleet.spec import (
    DEFAULT_MAX_EVENTS,
    CampaignSpec,
    FleetTask,
    SampledCampaign,
    ScenarioGrid,
    decode_params,
    encode_params,
    example_spec,
    megafleet_spec,
    validate_scenario_params,
)

__all__ = [
    "CampaignAggregate",
    "CampaignSpec",
    "DEFAULT_MAX_EVENTS",
    "DEFAULT_SHARD_BITS",
    "FleetOutcome",
    "FleetRunner",
    "FleetSummary",
    "FleetTask",
    "MemoryResultStore",
    "Outlier",
    "OutlierReservoir",
    "PROGRESS_LEDGER_FILE",
    "QuantileSketch",
    "ResultStore",
    "STORE_KINDS",
    "SampledCampaign",
    "ScenarioGrid",
    "ShardedResultStore",
    "SqliteResultStore",
    "TaskRecord",
    "decode_params",
    "detect_store_kind",
    "encode_params",
    "example_spec",
    "execute_task",
    "make_store",
    "megafleet_spec",
    "percentile",
    "progress_ledger_path",
    "report_metrics",
    "run_campaign",
    "scenario_metrics",
    "shard_index",
    "summarize",
    "summarize_store",
    "validate_scenario_params",
]
