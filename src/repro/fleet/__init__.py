"""Fleet campaigns: parallel multi-session runs with durable results.

One :class:`ProtocolHarness` is one sender–receiver pair; a *fleet* is
thousands of them — a declarative population of scenario sessions under
mixed reset/loss/replay stories, executed serially or across a process
pool, with every finished session appended to a crash-tolerant JSONL
store and aggregated into campaign-level verdicts.

* :mod:`~repro.fleet.spec` — :class:`CampaignSpec` / :class:`ScenarioGrid`,
  the JSON-round-trippable campaign description, and its deterministic
  expansion into seeded :class:`FleetTask` units.
* :mod:`~repro.fleet.runner` — :class:`FleetRunner`, the serial /
  ``multiprocessing`` executor with resume-after-interrupt.
* :mod:`~repro.fleet.results` — :class:`ResultStore` and
  :class:`TaskRecord`, the append-only JSONL persistence layer.
* :mod:`~repro.fleet.aggregate` — :func:`summarize` and
  :class:`FleetSummary`, cross-fleet percentiles and worst-case outliers
  with repro seeds.

Quickstart::

    from repro.fleet import ResultStore, example_spec, run_campaign, summarize

    spec = example_spec(sessions=60)
    store = ResultStore("fleet_runs/demo/results.jsonl")
    run_campaign(spec, store, jobs=4)
    print(summarize(store.records()).render())

or from the command line::

    python -m repro fleet campaign.json --jobs 4 --out fleet_runs/demo
"""

from repro.fleet.aggregate import FleetSummary, Outlier, percentile, summarize
from repro.fleet.results import (
    MemoryResultStore,
    ResultStore,
    TaskRecord,
    report_metrics,
)
from repro.fleet.runner import (
    FleetOutcome,
    FleetRunner,
    execute_task,
    run_campaign,
    scenario_metrics,
)
from repro.fleet.spec import (
    DEFAULT_MAX_EVENTS,
    CampaignSpec,
    FleetTask,
    ScenarioGrid,
    decode_params,
    encode_params,
    example_spec,
    validate_scenario_params,
)

__all__ = [
    "CampaignSpec",
    "DEFAULT_MAX_EVENTS",
    "FleetOutcome",
    "FleetRunner",
    "FleetSummary",
    "FleetTask",
    "MemoryResultStore",
    "Outlier",
    "ResultStore",
    "ScenarioGrid",
    "TaskRecord",
    "decode_params",
    "encode_params",
    "example_spec",
    "execute_task",
    "percentile",
    "report_metrics",
    "run_campaign",
    "scenario_metrics",
    "summarize",
    "validate_scenario_params",
]
