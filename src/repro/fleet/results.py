"""Durable campaign results: append-only JSONL records.

Every finished task becomes one :class:`TaskRecord` line in a
:class:`ResultStore` file.  Append-on-complete plus one-line-per-record
makes the store crash-tolerant by construction: an interrupt can at worst
truncate the final line, which :meth:`ResultStore.records` detects and
drops, so the corresponding task simply reruns on resume.  The runner
never rewrites or reorders the file — records from successive (possibly
interrupted) invocations accumulate.

Records are serialised with sorted keys and a canonical float format, so
two runs of the same spec produce byte-identical lines modulo the
``wall_time`` field (the only wall-clock-dependent value).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterator, Mapping

from repro.core.convergence import report_metrics

__all__ = [
    "MemoryResultStore",
    "ResultStore",
    "STATUS_ERROR",
    "STATUS_OK",
    "TaskRecord",
    "report_metrics",  # canonical home: repro.core.convergence
]

#: Record status values.
STATUS_OK = "ok"
STATUS_ERROR = "error"


@dataclass
class TaskRecord:
    """One completed (or failed) task, as persisted to the store.

    Attributes:
        task_id / scenario / params / seed: echo of the expanded task.
        status: ``"ok"`` or ``"error"``; only ``"ok"`` records count as
            completed for resume purposes, so failed tasks retry.
        metrics: the flattened :class:`ConvergenceReport` (empty on error).
        wall_time: task execution wall time in seconds (the one field
            excluded from determinism comparisons).
        error: ``repr`` of the exception, for ``"error"`` records.
    """

    task_id: str
    scenario: str
    params: dict[str, Any]
    seed: int
    status: str = STATUS_OK
    metrics: dict[str, Any] = field(default_factory=dict)
    wall_time: float = 0.0
    error: str | None = None

    def to_dict(self) -> dict[str, Any]:
        data: dict[str, Any] = {
            "task_id": self.task_id,
            "scenario": self.scenario,
            "params": self.params,
            "seed": self.seed,
            "status": self.status,
            "metrics": self.metrics,
            "wall_time": self.wall_time,
        }
        if self.error is not None:
            data["error"] = self.error
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "TaskRecord":
        return cls(
            task_id=data["task_id"],
            scenario=data["scenario"],
            params=dict(data["params"]),
            seed=data["seed"],
            status=data.get("status", STATUS_OK),
            metrics=dict(data.get("metrics", {})),
            wall_time=data.get("wall_time", 0.0),
            error=data.get("error"),
        )

    def to_json(self) -> str:
        """One canonical JSONL line (sorted keys, no stray whitespace)."""
        return json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))


class ResultStore:
    """Append-only JSONL store for :class:`TaskRecord` lines.

    The store is deliberately single-writer: the fleet runner appends from
    the parent process only, workers hand records back over the pool, so
    no file locking is needed and line integrity is trivial.
    """

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        #: malformed lines seen by the last :meth:`records` call (a value
        #: above 1 suggests external tampering, not a crash artefact).
        self.corrupt_lines = 0

    def __len__(self) -> int:
        return sum(1 for _ in self.records())

    def _ends_mid_line(self) -> bool:
        """True if the file is non-empty and missing its final newline —
        the signature a crash interrupted the previous append."""
        try:
            with self.path.open("rb") as handle:
                handle.seek(-1, 2)
                return handle.read(1) != b"\n"
        except (FileNotFoundError, OSError):
            return False

    def append(self, record: TaskRecord) -> None:
        """Durably append one record (line-buffered, flushed per call).

        If a previous run died mid-write, the file ends without a
        newline; terminate that partial line first so the new record
        does not glue onto it (the partial line then reads as one
        corrupt line and its task reruns).
        """
        heal = self._ends_mid_line()
        with self.path.open("a", encoding="utf-8") as handle:
            if heal:
                handle.write("\n")
            handle.write(record.to_json() + "\n")
            handle.flush()

    def records(self) -> Iterator[TaskRecord]:
        """Yield stored records, skipping any truncated/corrupt line."""
        self.corrupt_lines = 0
        if not self.path.exists():
            return
        with self.path.open("r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    yield TaskRecord.from_dict(json.loads(line))
                except (json.JSONDecodeError, KeyError, TypeError):
                    self.corrupt_lines += 1

    def completed_ids(self) -> set[str]:
        """Task ids recorded with ``status == "ok"`` (the resume set)."""
        return {
            record.task_id
            for record in self.records()
            if record.status == STATUS_OK
        }


class MemoryResultStore:
    """In-memory drop-in for :class:`ResultStore` (no file, no resume).

    Used by drivers that do not need durability — e.g. a one-shot
    experiment run without ``--resume``.  Records still round-trip
    through the canonical JSON encoding on the way in and out, so a
    memory-backed run reduces to exactly the same values as a
    file-backed one (floats, tuples-to-lists, and all).
    """

    def __init__(self) -> None:
        self._lines: list[str] = []
        self.corrupt_lines = 0

    def __len__(self) -> int:
        return len(self._lines)

    def append(self, record: TaskRecord) -> None:
        self._lines.append(record.to_json())

    def records(self) -> Iterator[TaskRecord]:
        for line in self._lines:
            yield TaskRecord.from_dict(json.loads(line))

    def completed_ids(self) -> set[str]:
        return {
            record.task_id
            for record in self.records()
            if record.status == STATUS_OK
        }
