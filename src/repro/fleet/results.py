"""Durable campaign results: append-only JSONL records.

Every finished task becomes one :class:`TaskRecord` line in a
:class:`ResultStore` file.  Append-on-complete plus one-line-per-record
makes the store crash-tolerant by construction: an interrupt can at worst
truncate the final line, which :meth:`ResultStore.records` detects and
drops, so the corresponding task simply reruns on resume.  The runner
never rewrites or reorders the file — records from successive (possibly
interrupted) invocations accumulate.

Records are serialised with sorted keys and a canonical float format, so
two runs of the same spec produce byte-identical lines modulo the
``wall_time`` field (the only wall-clock-dependent value).

Three interchangeable backends implement the same store contract
(``append`` / ``records`` / ``completed_ids`` / ``heal`` /
``corrupt_lines``):

* :class:`ResultStore` — one append-only JSONL file; the default.
* :class:`ShardedResultStore` — ``2**bits`` JSONL files keyed by each
  task's spawn-key prefix, merge-on-read.  The backend for
  million-session campaigns: every shard stays small, crash healing is
  per shard, and aggregation can fold one shard at a time in
  :math:`O(\text{shard})` memory.
* :class:`SqliteResultStore` — a single SQLite database in WAL mode,
  committing before ``append`` returns (persist-before-acknowledge).

All three persist the identical canonical JSON record lines — a campaign
moved between backends re-reads byte-identical records, only the file
placement differs.
"""

from __future__ import annotations

import json
import logging
import sqlite3
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterator, Mapping

from repro.core.convergence import report_metrics
from repro.util.jsonl import salvage_objects
from repro.util.rng import derive_seed

__all__ = [
    "DEFAULT_SHARD_BITS",
    "MemoryResultStore",
    "PROGRESS_LEDGER_FILE",
    "ResultStore",
    "STATUS_ERROR",
    "STATUS_OK",
    "STORE_KINDS",
    "ShardedResultStore",
    "SqliteResultStore",
    "TaskRecord",
    "detect_store_kind",
    "make_store",
    "progress_ledger_path",
    "report_metrics",  # canonical home: repro.core.convergence
    "shard_index",
]

logger = logging.getLogger(__name__)

#: Record status values.
STATUS_OK = "ok"
STATUS_ERROR = "error"

#: Selectable store backends (the CLI's ``--store`` choices).
STORE_KINDS = ("jsonl", "sharded", "sqlite")

#: Default shard count exponent for :class:`ShardedResultStore` (2**4 =
#: 16 shards — enough that a 1M-task campaign keeps every shard around
#: 60k records while tiny campaigns pay only 16 near-empty files).
DEFAULT_SHARD_BITS = 4

#: Upper limit on the shard exponent (2**10 = 1024 files; beyond that
#: the per-file overhead dominates any balance win).
MAX_SHARD_BITS = 10

#: Sidecar file pinning a sharded store's layout, so a resume cannot
#: silently reopen the directory with a different shard count and
#: mis-route appends.
SHARD_META_FILE = "store_meta.json"


@dataclass
class TaskRecord:
    """One completed (or failed) task, as persisted to the store.

    Attributes:
        task_id / scenario / params / seed: echo of the expanded task.
        status: ``"ok"`` or ``"error"``; only ``"ok"`` records count as
            completed for resume purposes, so failed tasks retry.
        metrics: the flattened :class:`ConvergenceReport` (empty on error).
        wall_time: task execution wall time in seconds (the one field
            excluded from determinism comparisons).
        error: ``repr`` of the exception, for ``"error"`` records.
    """

    task_id: str
    scenario: str
    params: dict[str, Any]
    seed: int
    status: str = STATUS_OK
    metrics: dict[str, Any] = field(default_factory=dict)
    wall_time: float = 0.0
    error: str | None = None

    def to_dict(self) -> dict[str, Any]:
        data: dict[str, Any] = {
            "task_id": self.task_id,
            "scenario": self.scenario,
            "params": self.params,
            "seed": self.seed,
            "status": self.status,
            "metrics": self.metrics,
            "wall_time": self.wall_time,
        }
        if self.error is not None:
            data["error"] = self.error
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "TaskRecord":
        return cls(
            task_id=data["task_id"],
            scenario=data["scenario"],
            params=dict(data["params"]),
            seed=data["seed"],
            status=data.get("status", STATUS_OK),
            metrics=dict(data.get("metrics", {})),
            wall_time=data.get("wall_time", 0.0),
            error=data.get("error"),
        )

    def to_json(self) -> str:
        """One canonical JSONL line (sorted keys, no stray whitespace)."""
        return json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))


def salvage_line(line: str) -> tuple[list[TaskRecord], bool]:
    """Recover complete records from a torn store line.

    A multiprocessing writer (or a crash between ``write`` and the
    newline) can glue a partial record and one or more complete records
    onto a single physical line.  The raw-decode walk lives in
    :func:`repro.util.jsonl.salvage_objects` (shared with the metrics
    reader and the progress ledger); this wrapper additionally rejects
    salvaged objects that are not valid records.

    Returns:
        ``(records, torn)`` — the salvageable records in order, and True
        if any part of the line was unparseable.
    """
    values, torn = salvage_objects(line)
    records: list[TaskRecord] = []
    for data in values:
        try:
            records.append(TaskRecord.from_dict(data))
        except (KeyError, TypeError):
            torn = True
    return records, torn


class ResultStore:
    """Append-only JSONL store for :class:`TaskRecord` lines.

    The store is deliberately single-writer: the fleet runner appends from
    the parent process only, workers hand records back over the pool, so
    no file locking is needed and line integrity is trivial.
    """

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        #: malformed lines seen by the last :meth:`records` call (a value
        #: above 1 suggests external tampering, not a crash artefact).
        self.corrupt_lines = 0

    def __len__(self) -> int:
        return sum(1 for _ in self.records())

    def _ends_mid_line(self) -> bool:
        """True if the file is non-empty and missing its final newline —
        the signature a crash interrupted the previous append."""
        try:
            with self.path.open("rb") as handle:
                handle.seek(-1, 2)
                return handle.read(1) != b"\n"
        except (FileNotFoundError, OSError):
            return False

    def append(self, record: TaskRecord) -> None:
        """Durably append one record (line-buffered, flushed per call).

        If a previous run died mid-write, the file ends without a
        newline; terminate that partial line first so the new record
        does not glue onto it (the partial line then reads as one
        corrupt line and its task reruns).
        """
        heal = self._ends_mid_line()
        with self.path.open("a", encoding="utf-8") as handle:
            if heal:
                handle.write("\n")
            handle.write(record.to_json() + "\n")
            handle.flush()

    def heal(self) -> bool:
        """Terminate a dangling partial line left by a crash, if any.

        Appends do this lazily; calling it eagerly (the runner does, at
        the start of a resume) makes the scan explicit.  Returns True if
        the file was dirty.
        """
        if not self._ends_mid_line():
            return False
        with self.path.open("a", encoding="utf-8") as handle:
            handle.write("\n")
        logger.warning("%s: healed a dangling partial line", self.path)
        return True

    def records(self) -> Iterator[TaskRecord]:
        """Yield stored records, skipping (and logging) torn lines.

        A torn line — the truncated tail of a crashed append, or two
        interleaved writes glued together — is *skipped*, not treated as
        end-of-file: isolated corruption mid-file loses only the records
        physically damaged, never the valid lines after it.  Complete
        records embedded in a torn line are salvaged (see
        :func:`salvage_line`); whatever is lost simply reruns on resume.
        """
        self.corrupt_lines = 0
        if not self.path.exists():
            return
        with self.path.open("r", encoding="utf-8") as handle:
            for number, line in enumerate(handle, start=1):
                line = line.strip()
                if not line:
                    continue
                try:
                    yield TaskRecord.from_dict(json.loads(line))
                    continue
                except (json.JSONDecodeError, KeyError, TypeError):
                    pass
                salvaged, torn = salvage_line(line)
                if torn:
                    self.corrupt_lines += 1
                    logger.warning(
                        "%s:%d: skipping torn record fragment "
                        "(%d record(s) salvaged from the line)",
                        self.path, number, len(salvaged),
                    )
                yield from salvaged

    def completed_ids(self) -> set[str]:
        """Task ids recorded with ``status == "ok"`` (the resume set)."""
        return {
            record.task_id
            for record in self.records()
            if record.status == STATUS_OK
        }


class MemoryResultStore:
    """In-memory drop-in for :class:`ResultStore` (no file, no resume).

    Used by drivers that do not need durability — e.g. a one-shot
    experiment run without ``--resume``.  Records still round-trip
    through the canonical JSON encoding on the way in and out, so a
    memory-backed run reduces to exactly the same values as a
    file-backed one (floats, tuples-to-lists, and all).
    """

    def __init__(self) -> None:
        self._lines: list[str] = []
        self.corrupt_lines = 0

    def __len__(self) -> int:
        return len(self._lines)

    def heal(self) -> bool:
        """Nothing to heal — memory stores do not survive crashes."""
        return False

    def append(self, record: TaskRecord) -> None:
        self._lines.append(record.to_json())

    def records(self) -> Iterator[TaskRecord]:
        for line in self._lines:
            yield TaskRecord.from_dict(json.loads(line))

    def completed_ids(self) -> set[str]:
        return {
            record.task_id
            for record in self.records()
            if record.status == STATUS_OK
        }


def shard_index(task_id: str, seed: int, bits: int) -> int:
    """The shard a task's records live in: its spawn-key prefix.

    The key is re-derived from ``(seed, task_id)`` through the same
    SHA-256 spawn-key scheme the fleet uses for per-task seeds
    (:func:`repro.util.rng.derive_seed`), and the top ``bits`` bits pick
    the shard.  Campaign seeds are already uniform 64-bit spawn keys,
    but experiment sweeps pin small explicit seeds — folding the task id
    back in keeps the partition uniform for both, while staying a pure
    function of the task, so every record of a task (error, retry, ok)
    lands in the same shard and within-shard append order is still
    latest-wins truth.
    """
    if bits == 0:
        return 0
    return derive_seed(seed, "shard", task_id) >> (64 - bits)


class ShardedResultStore:
    """``2**bits`` JSONL shard files behind the single-store interface.

    Appends route by :func:`shard_index`; :meth:`records` merges
    shard-by-shard (shard 0's lines first, each shard in append order).
    Because a task's records never split across shards, any per-task
    reduction that holds on one append-ordered file (latest record wins)
    holds on the merge-on-read stream too.

    Crash behaviour is per shard: a kill mid-append tears at most the
    one shard being written, healing rescans only the dirty shards
    (:meth:`heal` checks one tail byte per shard), and record content is
    byte-identical to the single-file store modulo placement.

    The shard count is pinned in ``store_meta.json`` at creation;
    reopening with a conflicting explicit ``bits`` raises instead of
    silently mis-routing a resumed campaign.
    """

    def __init__(self, root: str | Path, bits: int | None = None) -> None:
        self.root = Path(root)
        #: CLI-facing location (mirrors ``ResultStore.path``).
        self.path = self.root
        self.root.mkdir(parents=True, exist_ok=True)
        meta_path = self.root / SHARD_META_FILE
        if meta_path.exists():
            meta = json.loads(meta_path.read_text(encoding="utf-8"))
            stored = meta.get("bits")
            if meta.get("kind") != "sharded" or not isinstance(stored, int):
                raise ValueError(f"{meta_path} is not a sharded-store meta file")
            if bits is not None and bits != stored:
                raise ValueError(
                    f"store at {self.root} was created with bits={stored}; "
                    f"reopening with bits={bits} would mis-route appends"
                )
            bits = stored
        elif bits is None:
            bits = DEFAULT_SHARD_BITS
        if not 0 <= bits <= MAX_SHARD_BITS:
            raise ValueError(
                f"shard bits must be in [0, {MAX_SHARD_BITS}], got {bits}"
            )
        self.bits = bits
        if not meta_path.exists():
            meta_path.write_text(
                json.dumps({"kind": "sharded", "bits": bits}) + "\n",
                encoding="utf-8",
            )
        width = max(2, (bits + 3) // 4)
        self.shards = [
            ResultStore(self.root / f"shard-{index:0{width}x}.jsonl")
            for index in range(1 << bits)
        ]
        self.corrupt_lines = 0

    def __len__(self) -> int:
        return sum(1 for _ in self.records())

    def shard_for(self, task_id: str, seed: int) -> ResultStore:
        """The shard store holding (all of) one task's records."""
        return self.shards[shard_index(task_id, seed, self.bits)]

    def append(self, record: TaskRecord) -> None:
        self.shard_for(record.task_id, record.seed).append(record)

    def records(self) -> Iterator[TaskRecord]:
        """Merge-on-read: every shard's records, in shard then file order."""
        self.corrupt_lines = 0
        for shard in self.shards:
            yield from shard.records()
            self.corrupt_lines += shard.corrupt_lines

    def completed_ids(self) -> set[str]:
        done: set[str] = set()
        for shard in self.shards:
            done |= shard.completed_ids()
        return done

    def dirty_shards(self) -> list[int]:
        """Shards whose file ends mid-line (one tail-byte check each)."""
        return [
            index for index, shard in enumerate(self.shards)
            if shard._ends_mid_line()
        ]

    def heal(self) -> list[int]:
        """Heal only the dirty shards; returns the indices healed."""
        healed = [index for index in self.dirty_shards()
                  if self.shards[index].heal()]
        return healed


class SqliteResultStore:
    """SQLite/WAL store backend behind the same record interface.

    Each ``append`` commits before returning — the persist-before-
    acknowledge rule — so a record the runner has seen appended is on
    disk, full stop; a ``kill -9`` can lose at most the task in flight,
    which simply reruns on resume.  WAL mode keeps appends sequential-
    write cheap and lets concurrent readers (an operator tailing the
    campaign) scan without blocking the writer.

    Stored lines are the same canonical JSON as the JSONL backends, so
    records round-trip byte-identically across backends.
    """

    _SCHEMA = """
        CREATE TABLE IF NOT EXISTS records (
            seq INTEGER PRIMARY KEY AUTOINCREMENT,
            task_id TEXT NOT NULL,
            status TEXT NOT NULL,
            line TEXT NOT NULL
        )
    """

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._connection = sqlite3.connect(str(self.path))
        self._connection.execute("PRAGMA journal_mode=WAL")
        self._connection.execute("PRAGMA synchronous=NORMAL")
        self._connection.execute(self._SCHEMA)
        self._connection.execute(
            "CREATE INDEX IF NOT EXISTS records_task ON records "
            "(task_id, status)"
        )
        self._connection.commit()
        #: The database either parses or errors as a whole; torn JSONL
        #: lines cannot happen here, but the attribute keeps the store
        #: interface uniform.
        self.corrupt_lines = 0

    def __len__(self) -> int:
        (count,) = self._connection.execute(
            "SELECT COUNT(*) FROM records"
        ).fetchone()
        return int(count)

    def append(self, record: TaskRecord) -> None:
        # The `with` block commits before append returns: acknowledge
        # only after the record is durable.
        with self._connection:
            self._connection.execute(
                "INSERT INTO records (task_id, status, line) VALUES (?, ?, ?)",
                (record.task_id, record.status, record.to_json()),
            )

    def heal(self) -> bool:
        """SQLite journals recover on open; nothing to heal by hand."""
        return False

    def records(self) -> Iterator[TaskRecord]:
        self.corrupt_lines = 0
        for (line,) in self._connection.execute(
            "SELECT line FROM records ORDER BY seq"
        ):
            try:
                yield TaskRecord.from_dict(json.loads(line))
            except (json.JSONDecodeError, KeyError, TypeError):
                self.corrupt_lines += 1

    def completed_ids(self) -> set[str]:
        return {
            task_id for (task_id,) in self._connection.execute(
                "SELECT DISTINCT task_id FROM records WHERE status = ?",
                (STATUS_OK,),
            )
        }

    def close(self) -> None:
        self._connection.close()


#: Per-kind store file/directory names inside a campaign output dir.
_STORE_NAMES = {
    "jsonl": "results.jsonl",
    "sharded": "results.shards",
    "sqlite": "results.sqlite",
}


def make_store(
    kind: str, out_dir: str | Path, shard_bits: int | None = None
) -> ResultStore | ShardedResultStore | SqliteResultStore:
    """Build the campaign store of ``kind`` under ``out_dir``.

    Args:
        kind: one of :data:`STORE_KINDS`.
        out_dir: campaign output directory (created as needed).
        shard_bits: shard exponent for ``"sharded"`` (ignored otherwise;
            ``None`` means the stored layout, or the default for a new
            store).
    """
    out_dir = Path(out_dir)
    if kind == "jsonl":
        return ResultStore(out_dir / _STORE_NAMES["jsonl"])
    if kind == "sharded":
        return ShardedResultStore(
            out_dir / _STORE_NAMES["sharded"], bits=shard_bits
        )
    if kind == "sqlite":
        return SqliteResultStore(out_dir / _STORE_NAMES["sqlite"])
    known = ", ".join(STORE_KINDS)
    raise ValueError(f"unknown store kind {kind!r}; known kinds: {known}")


#: The streaming progress ledger's name inside a campaign output dir
#: (lives *beside* the store, whatever the backend: the ledger is the
#: campaign's event log, not a store artifact).
PROGRESS_LEDGER_FILE = "progress.jsonl"


def progress_ledger_path(
    store: ResultStore | ShardedResultStore | SqliteResultStore,
) -> Path | None:
    """Where a store's campaign keeps its ``progress.jsonl``.

    Every backend's CLI-facing ``path`` sits directly inside the
    campaign output directory (the sharded backend's ``path`` *is* its
    shard directory inside it), so the ledger is a sibling of the store.
    Memory stores have no directory — returns ``None``.
    """
    path = getattr(store, "path", None)
    if path is None:
        return None
    return Path(path).parent / PROGRESS_LEDGER_FILE


def detect_store_kind(out_dir: str | Path) -> str | None:
    """The store kind already present under ``out_dir`` (None if fresh).

    Lets a resume omit ``--store``: the CLI reopens whatever backend the
    interrupted run was writing instead of silently starting a second,
    empty store next to it.
    """
    out_dir = Path(out_dir)
    for kind, name in _STORE_NAMES.items():
        if (out_dir / name).exists():
            return kind
    return None
