"""Campaign execution: expand a spec, run its tasks, persist results.

:class:`FleetRunner` is the driver loop: expand the
:class:`~repro.fleet.spec.CampaignSpec` into tasks, drop the ones the
:class:`~repro.fleet.results.ResultStore` already holds (resume), execute
the rest — in-process when ``jobs=1``, across a ``multiprocessing`` pool
otherwise — and append each record to the store the moment it completes.

Two properties the rest of the fleet stack depends on:

* **Determinism** — every task carries its own derived seed, task
  execution never reads shared mutable state, and completed records are
  appended in task order (``imap``, not ``imap_unordered``), so serial
  and parallel runs of the same spec write byte-identical stores modulo
  the ``wall_time`` field.
* **Crash tolerance** — the store is append-on-complete from the parent
  process only; kill the run at any point and re-running the same spec
  skips every finished task and recomputes nothing else.
"""

from __future__ import annotations

import contextlib
import json
import multiprocessing
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Iterator, Mapping

from repro.fleet.results import (
    STATUS_ERROR,
    STATUS_OK,
    ResultStore,
    TaskRecord,
    report_metrics,
)
from repro.fleet.spec import CampaignSpec, FleetTask, decode_params
from repro.obs.export import write_metrics_jsonl
from repro.obs.hub import MetricsHub, merge_rollups, use_hub
from repro.sim.engine import Engine
from repro.workloads.scenarios import ScenarioResult, get_scenario

#: Progress callback signature: (completed_in_this_run, remaining_total,
#: record).  Called once per finished task, in completion order.
ProgressFn = Callable[[int, int, TaskRecord], None]


def scenario_metrics(result: Any) -> dict[str, Any]:
    """Flatten a scenario's return value into JSON-safe task metrics.

    Harness-backed scenarios return a :class:`ScenarioResult`, scored via
    :func:`report_metrics` plus any scenario-specific ``extra`` fields;
    simulation scenarios without a protocol harness (rekey, DPD, save
    policy, ...) return a plain metrics mapping, recorded as-is.
    """
    if isinstance(result, ScenarioResult):
        metrics = report_metrics(result.report)
        metrics.update(result.extra)
        return metrics
    if isinstance(result, Mapping):
        return dict(result)
    raise TypeError(
        f"scenario returned {type(result).__name__}; expected a "
        "ScenarioResult or a metrics mapping"
    )


def execute_task(
    task: FleetTask,
    max_events: int | None = None,
    obs_dir: str | Path | None = None,
) -> TaskRecord:
    """Run one task to completion and score it; never raises.

    Task params are JSON-encoded (see :func:`repro.fleet.spec.decode_params`
    for the tagged-value scheme: ``CostModel`` overrides round-trip through
    plain dicts) and decoded here, in the worker, right before the call.

    The engine's class-wide default hard event limit is set for the
    duration of the call so the guard reaches the engine built deep
    inside the scenario helper; any exception — including the
    :class:`~repro.sim.engine.EngineEventLimitError` tripwire — becomes a
    ``status="error"`` record (retried on the next resume) instead of
    taking the whole campaign down.

    With ``obs_dir`` set, the task runs under a fresh ambient
    :class:`~repro.obs.MetricsHub` (same pattern as the event limit:
    installed around the call so engines built inside the scenario
    helper pick it up), its full metrics land in
    ``<obs_dir>/<task_id>.metrics.jsonl``, and a label-rolled summary
    rides the record as ``metrics["obs"]`` so campaign aggregates reach
    the :class:`~repro.fleet.results.ResultStore` without re-reading the
    per-task files.
    """
    started = time.perf_counter()
    previous_limit = Engine.default_hard_event_limit
    Engine.default_hard_event_limit = max_events
    hub = MetricsHub(task.task_id) if obs_dir is not None else None
    ambient = use_hub(hub) if hub is not None else contextlib.nullcontext()
    try:
        scenario = get_scenario(task.scenario)
        with ambient:
            result = scenario(seed=task.seed, **decode_params(task.params))
        metrics = scenario_metrics(result)
        if hub is not None:
            write_metrics_jsonl(
                hub, Path(obs_dir) / f"{task.task_id}.metrics.jsonl"
            )
            metrics["obs"] = hub.rollup()
        return TaskRecord(
            task_id=task.task_id,
            scenario=task.scenario,
            params=dict(task.params),
            seed=task.seed,
            status=STATUS_OK,
            metrics=metrics,
            wall_time=time.perf_counter() - started,
        )
    except Exception as exc:  # noqa: BLE001 - one bad task must not kill the fleet
        return TaskRecord(
            task_id=task.task_id,
            scenario=task.scenario,
            params=dict(task.params),
            seed=task.seed,
            status=STATUS_ERROR,
            error=f"{type(exc).__name__}: {exc}",
            wall_time=time.perf_counter() - started,
        )
    finally:
        Engine.default_hard_event_limit = previous_limit


def _pool_execute(
    payload: tuple[dict[str, Any], int | None, str | None]
) -> dict[str, Any]:
    """Pool worker entry point (module-level so it pickles by reference)."""
    task_data, max_events, obs_dir = payload
    return execute_task(
        FleetTask.from_dict(task_data), max_events, obs_dir=obs_dir
    ).to_dict()


@dataclass
class FleetOutcome:
    """What one :meth:`FleetRunner.run` call did.

    Attributes:
        total: tasks the spec expands to.
        skipped: tasks already in the store (resume hits).
        executed: records produced by this call, in task order.
        wall_time: elapsed wall time of this call, in seconds.
    """

    total: int
    skipped: int
    executed: list[TaskRecord] = field(default_factory=list)
    wall_time: float = 0.0

    @property
    def sessions_per_second(self) -> float:
        """Throughput of this call (0 when nothing ran)."""
        if not self.executed or self.wall_time <= 0:
            return 0.0
        return len(self.executed) / self.wall_time


class FleetRunner:
    """Executes a campaign spec against a result store.

    Args:
        spec: the campaign to run — a :class:`CampaignSpec`, or any plan
            exposing ``tasks() -> list[FleetTask]`` and ``max_events``
            (the experiment sweeps in :mod:`repro.experiments.sweep` do).
        store: durable record sink — any backend sharing the
            :class:`ResultStore` contract (single-file JSONL, sharded,
            SQLite, or the in-memory variant); pre-existing ``ok``
            records are treated as finished work and skipped.
        jobs: worker processes; ``1`` runs in-process (no pool overhead).
        max_events: per-task engine event budget; defaults to
            ``spec.max_events`` (``None`` disables the guard).
        progress: optional per-record callback (see :data:`ProgressFn`).
        obs_dir: observe every task (default None — no observability,
            exactly the pre-obs fast path).  Tasks run under per-task
            hubs, full metrics land in
            ``<obs_dir>/<task_id>.metrics.jsonl``, rollup summaries
            ride the records, and :meth:`run` aggregates worst-case
            health across the campaign.  Determinism is preserved: the
            hub observes, never schedules, so stores stay byte-identical
            modulo ``wall_time`` whether observed or not.
    """

    def __init__(
        self,
        spec: CampaignSpec | Any,
        store: ResultStore | Any,
        jobs: int = 1,
        max_events: int | None = None,
        progress: ProgressFn | None = None,
        obs_dir: str | Path | None = None,
    ) -> None:
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        self.spec = spec
        self.store = store
        self.jobs = jobs
        self.max_events = max_events if max_events is not None else spec.max_events
        self.progress = progress
        self.obs_dir = Path(obs_dir) if obs_dir is not None else None

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def pending_tasks(self) -> tuple[int, list[FleetTask]]:
        """Expand the spec and subtract completed work.

        Returns:
            ``(total, pending)`` — the full task count and the tasks not
            yet recorded ``ok`` in the store, in stable task order.
        """
        tasks = self.spec.tasks()
        done = self.store.completed_ids()
        return len(tasks), [task for task in tasks if task.task_id not in done]

    def _results(self, pending: list[FleetTask]) -> Iterator[TaskRecord]:
        obs_dir = str(self.obs_dir) if self.obs_dir is not None else None
        if self.jobs == 1:
            for task in pending:
                yield execute_task(task, self.max_events, obs_dir=self.obs_dir)
            return
        payloads = [
            (task.to_dict(), self.max_events, obs_dir) for task in pending
        ]
        # chunksize=1 keeps completion streaming; ordered imap keeps the
        # store's line order identical to the serial run.
        with multiprocessing.Pool(processes=self.jobs) as pool:
            for record_data in pool.imap(_pool_execute, payloads, chunksize=1):
                yield TaskRecord.from_dict(record_data)

    def run(self) -> FleetOutcome:
        """Execute every pending task, appending records as they finish."""
        started = time.perf_counter()
        # A previous run may have been killed mid-append; heal the store
        # (terminate any torn tail line) before reading completed work.
        # Sharded stores rescan only their dirty shards here.
        self.store.heal()
        total, pending = self.pending_tasks()
        if self.obs_dir is not None:
            self.obs_dir.mkdir(parents=True, exist_ok=True)
        outcome = FleetOutcome(total=total, skipped=total - len(pending))
        for record in self._results(pending):
            self.store.append(record)
            outcome.executed.append(record)
            if self.progress is not None:
                self.progress(len(outcome.executed), len(pending), record)
        if self.obs_dir is not None:
            self._write_campaign_rollup()
        outcome.wall_time = time.perf_counter() - started
        return outcome

    def _write_campaign_rollup(self) -> None:
        """Aggregate every stored task's obs summary into one file.

        Reads the rollups back from the *store* (not just this call's
        records), so a resumed campaign aggregates everything — earlier
        sessions included — and ``campaign_obs.json`` always reflects
        the store's complete state.
        """
        rollups = [
            record.metrics["obs"]
            for record in self.store.records()
            if record.status == STATUS_OK and "obs" in record.metrics
        ]
        merged = merge_rollups(rollups)
        path = self.obs_dir / "campaign_obs.json"
        path.write_text(
            json.dumps(merged, sort_keys=True, indent=2) + "\n",
            encoding="utf-8",
        )


def run_campaign(
    spec: CampaignSpec,
    store: ResultStore | Any | str | Path,
    jobs: int = 1,
    progress: ProgressFn | None = None,
    obs_dir: str | Path | None = None,
) -> FleetOutcome:
    """Convenience wrapper: build the runner and execute the campaign.

    ``store`` may be any result-store backend (single-file, sharded,
    SQLite, in-memory) or a bare path, which opens a single-file JSONL
    store at that location.
    """
    if isinstance(store, (str, Path)):
        store = ResultStore(store)
    return FleetRunner(
        spec, store, jobs=jobs, progress=progress, obs_dir=obs_dir
    ).run()
