"""Campaign execution: expand a spec, run its tasks, persist results.

:class:`FleetRunner` is the driver loop: expand the
:class:`~repro.fleet.spec.CampaignSpec` into tasks, drop the ones the
:class:`~repro.fleet.results.ResultStore` already holds (resume), execute
the rest — in-process when ``jobs=1``, across a ``multiprocessing`` pool
otherwise — and append each record to the store the moment it completes.

Two properties the rest of the fleet stack depends on:

* **Determinism** — every task carries its own derived seed, task
  execution never reads shared mutable state, and completed records are
  appended in task order (``imap``, not ``imap_unordered``), so serial
  and parallel runs of the same spec write byte-identical stores modulo
  the ``wall_time`` field.
* **Crash tolerance** — the store is append-on-complete from the parent
  process only; kill the run at any point and re-running the same spec
  skips every finished task and recomputes nothing else.
"""

from __future__ import annotations

import contextlib
import json
import multiprocessing
import os
import queue as queue_module
import signal
import threading
import time
import tracemalloc
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Iterator, Mapping

from repro.fleet.results import (
    STATUS_ERROR,
    STATUS_OK,
    ResultStore,
    TaskRecord,
    report_metrics,
)
from repro.fleet.spec import CampaignSpec, FleetTask, decode_params
from repro.obs.export import write_metrics_jsonl
from repro.obs.flightrec import FlightRecorder
from repro.obs.hub import MetricsHub, merge_rollups, use_hub
from repro.obs.resource import (
    ResourceProbe,
    TaskProfiler,
    publish_task_usage,
    resource_snapshot,
)
from repro.obs.stream import CampaignStream, ProgressEvent, StreamConfig
from repro.sim.engine import Engine
from repro.workloads.scenarios import ScenarioResult, get_scenario

#: Progress callback signature: (completed_in_this_run, remaining_total,
#: record).  Called once per finished task, in completion order.
ProgressFn = Callable[[int, int, TaskRecord], None]


def scenario_metrics(result: Any) -> dict[str, Any]:
    """Flatten a scenario's return value into JSON-safe task metrics.

    Harness-backed scenarios return a :class:`ScenarioResult`, scored via
    :func:`report_metrics` plus any scenario-specific ``extra`` fields;
    simulation scenarios without a protocol harness (rekey, DPD, save
    policy, ...) return a plain metrics mapping, recorded as-is.
    """
    if isinstance(result, ScenarioResult):
        metrics = report_metrics(result.report)
        metrics.update(result.extra)
        return metrics
    if isinstance(result, Mapping):
        return dict(result)
    raise TypeError(
        f"scenario returned {type(result).__name__}; expected a "
        "ScenarioResult or a metrics mapping"
    )


# ----------------------------------------------------------------------
# Worker-side streaming context
# ----------------------------------------------------------------------
class _StreamWorker:
    """Per-process streaming state: event emitter, flight ring, profiler.

    One instance lives in each pool worker (installed by
    :func:`_init_stream_worker`); the serial path installs one in the
    parent for the duration of the run.  ``emit`` is "put a JSON-safe
    event dict on the wire" — the pool queue's ``put`` in workers, a
    direct locked :meth:`CampaignStream.emit` in serial mode.
    """

    def __init__(
        self,
        name: str,
        emit: Callable[[dict[str, Any]], None],
        config: Mapping[str, Any],
    ) -> None:
        self.name = name
        self.emit = emit
        self.flight = FlightRecorder(
            name, limit=int(config.get("flight_limit", 256))
        )
        self.flight_dir = Path(config["flight_dir"])
        profile_dir = config.get("profile_dir")
        self.profiler = (
            TaskProfiler(
                profile_dir,
                percentile=float(config.get("profile_percentile", 0.95)),
            )
            if profile_dir
            else None
        )
        self.heartbeat_interval = float(config.get("heartbeat_interval", 5.0))
        self.trace_malloc = bool(config.get("trace_malloc", False))
        self._last_heartbeat = 0.0

    def event(
        self, kind: str, task_id: str | None = None, **data: Any
    ) -> None:
        self.emit(
            ProgressEvent(
                kind=kind, time=time.time(), worker=self.name,
                task_id=task_id, data=data,
            ).to_dict()
        )

    def heartbeat(self, force: bool = False) -> None:
        """Emit a heartbeat with resources (rate-limited unless forced).

        Checked at task boundaries — a worker silent for longer than the
        interval is mid-task or wedged, which is itself the signal the
        dashboard's heartbeat-age column reads.
        """
        now = time.time()
        if not force and now - self._last_heartbeat < self.heartbeat_interval:
            return
        self._last_heartbeat = now
        self.flight.note("worker_heartbeat", time=now)
        self.event("worker_heartbeat", resources=resource_snapshot())


#: The process's active streaming context (None = streaming off — the
#: byte-identical legacy path).
_STREAM_WORKER: _StreamWorker | None = None


def _worker_sigterm(signum: int, frame: Any) -> None:
    """Pool-worker SIGTERM: dump the flight ring if a task is in flight.

    ``Pool`` shutdown also SIGTERMs idle workers; the active-task guard
    keeps normal runs from littering flight files — only a worker killed
    *mid-task* (a torn task worth diagnosing) dumps.
    """
    ctx = _STREAM_WORKER
    if ctx is not None and ctx.flight.current_task is not None:
        try:
            ctx.flight.dump(ctx.flight_dir, "sigterm")
        except OSError:
            pass
    os._exit(128 + signum)


def _init_stream_worker(
    event_queue: Any, config: Mapping[str, Any]
) -> None:
    """Pool initializer: install the streaming context in this worker."""
    global _STREAM_WORKER
    identity = getattr(multiprocessing.current_process(), "_identity", ())
    name = f"w{identity[0]}" if identity else "w0"
    _STREAM_WORKER = _StreamWorker(name, event_queue.put, config)
    signal.signal(signal.SIGTERM, _worker_sigterm)
    if _STREAM_WORKER.trace_malloc and not tracemalloc.is_tracing():
        tracemalloc.start()
    _STREAM_WORKER.heartbeat(force=True)  # announce the worker exists


def _execute_streamed(
    ctx: _StreamWorker,
    task: FleetTask,
    max_events: int | None,
    obs_dir: str | Path | None,
) -> TaskRecord:
    """Worker-side execution under a streaming context.

    Emits ``task_started`` and boundary heartbeats; the *parent* emits
    ``task_finished`` after the store append (the persist-before-fold
    ordering the ledger's exactness guarantee rests on).  Dumps the
    flight ring on any exception that escapes (``execute_task`` never
    raises, so an escape means the harness itself broke).
    """
    now = time.time()
    ctx.flight.task_started(task.task_id, time=now)
    ctx.event("task_started", task_id=task.task_id)
    profile = (
        ctx.profiler.profile(task.task_id)
        if ctx.profiler is not None
        else contextlib.nullcontext()
    )
    try:
        with profile:
            record = execute_task(task, max_events, obs_dir=obs_dir)
    except BaseException:
        try:
            ctx.flight.dump(ctx.flight_dir, "unhandled_exception")
        except OSError:
            pass
        raise
    ctx.flight.task_finished(
        task.task_id, time=time.time(),
        status=record.status, wall_time=record.wall_time,
    )
    ctx.heartbeat()
    return record


def execute_task(
    task: FleetTask,
    max_events: int | None = None,
    obs_dir: str | Path | None = None,
) -> TaskRecord:
    """Run one task to completion and score it; never raises.

    Task params are JSON-encoded (see :func:`repro.fleet.spec.decode_params`
    for the tagged-value scheme: ``CostModel`` overrides round-trip through
    plain dicts) and decoded here, in the worker, right before the call.

    The engine's class-wide default hard event limit is set for the
    duration of the call so the guard reaches the engine built deep
    inside the scenario helper; any exception — including the
    :class:`~repro.sim.engine.EngineEventLimitError` tripwire — becomes a
    ``status="error"`` record (retried on the next resume) instead of
    taking the whole campaign down.

    With ``obs_dir`` set, the task runs under a fresh ambient
    :class:`~repro.obs.MetricsHub` (same pattern as the event limit:
    installed around the call so engines built inside the scenario
    helper pick it up), its full metrics land in
    ``<obs_dir>/<task_id>.metrics.jsonl``, and a label-rolled summary
    rides the record as ``metrics["obs"]`` so campaign aggregates reach
    the :class:`~repro.fleet.results.ResultStore` without re-reading the
    per-task files.
    """
    started = time.perf_counter()
    previous_limit = Engine.default_hard_event_limit
    Engine.default_hard_event_limit = max_events
    hub = MetricsHub(task.task_id) if obs_dir is not None else None
    ambient = use_hub(hub) if hub is not None else contextlib.nullcontext()
    # Worker resource probing rides the streaming context only: with
    # streaming off, observed runs keep their pre-stream metrics files
    # byte-identical (the stream-off parity the acceptance pins).
    usage_before = None
    if hub is not None and _STREAM_WORKER is not None:
        if tracemalloc.is_tracing():
            tracemalloc.reset_peak()  # per-task allocation peak
        usage_before = resource_snapshot()
    try:
        scenario = get_scenario(task.scenario)
        with ambient:
            result = scenario(seed=task.seed, **decode_params(task.params))
        metrics = scenario_metrics(result)
        if hub is not None:
            if usage_before is not None:
                ResourceProbe(hub).sample(time.time())
                publish_task_usage(hub, usage_before, resource_snapshot())
            write_metrics_jsonl(
                hub, Path(obs_dir) / f"{task.task_id}.metrics.jsonl"
            )
            metrics["obs"] = hub.rollup()
        return TaskRecord(
            task_id=task.task_id,
            scenario=task.scenario,
            params=dict(task.params),
            seed=task.seed,
            status=STATUS_OK,
            metrics=metrics,
            wall_time=time.perf_counter() - started,
        )
    except Exception as exc:  # noqa: BLE001 - one bad task must not kill the fleet
        return TaskRecord(
            task_id=task.task_id,
            scenario=task.scenario,
            params=dict(task.params),
            seed=task.seed,
            status=STATUS_ERROR,
            error=f"{type(exc).__name__}: {exc}",
            wall_time=time.perf_counter() - started,
        )
    finally:
        Engine.default_hard_event_limit = previous_limit


def _pool_execute(
    payload: tuple[dict[str, Any], int | None, str | None]
) -> dict[str, Any]:
    """Pool worker entry point (module-level so it pickles by reference).

    Routes through the streaming context when the pool was built with
    :func:`_init_stream_worker`; otherwise this is the unchanged
    stream-off path.
    """
    task_data, max_events, obs_dir = payload
    task = FleetTask.from_dict(task_data)
    if _STREAM_WORKER is not None:
        return _execute_streamed(
            _STREAM_WORKER, task, max_events, obs_dir
        ).to_dict()
    return execute_task(task, max_events, obs_dir=obs_dir).to_dict()


@dataclass
class FleetOutcome:
    """What one :meth:`FleetRunner.run` call did.

    Attributes:
        total: tasks the spec expands to.
        skipped: tasks already in the store (resume hits).
        executed: records produced by this call, in task order.
        wall_time: elapsed wall time of this call, in seconds.
    """

    total: int
    skipped: int
    executed: list[TaskRecord] = field(default_factory=list)
    wall_time: float = 0.0

    @property
    def sessions_per_second(self) -> float:
        """Throughput of this call (0 when nothing ran)."""
        if not self.executed or self.wall_time <= 0:
            return 0.0
        return len(self.executed) / self.wall_time


class FleetRunner:
    """Executes a campaign spec against a result store.

    Args:
        spec: the campaign to run — a :class:`CampaignSpec`, or any plan
            exposing ``tasks() -> list[FleetTask]`` and ``max_events``
            (the experiment sweeps in :mod:`repro.experiments.sweep` do).
        store: durable record sink — any backend sharing the
            :class:`ResultStore` contract (single-file JSONL, sharded,
            SQLite, or the in-memory variant); pre-existing ``ok``
            records are treated as finished work and skipped.
        jobs: worker processes; ``1`` runs in-process (no pool overhead).
        max_events: per-task engine event budget; defaults to
            ``spec.max_events`` (``None`` disables the guard).
        progress: optional per-record callback (see :data:`ProgressFn`).
        obs_dir: observe every task (default None — no observability,
            exactly the pre-obs fast path).  Tasks run under per-task
            hubs, full metrics land in
            ``<obs_dir>/<task_id>.metrics.jsonl``, rollup summaries
            ride the records, and :meth:`run` aggregates worst-case
            health across the campaign.  Determinism is preserved: the
            hub observes, never schedules, so stores stay byte-identical
            modulo ``wall_time`` whether observed or not.
        stream: live-telemetry config (default None — streaming off,
            exactly the pre-stream path: no ledger, no queue, no worker
            context).  When set, the run appends schema-versioned
            progress events to the config's ``progress.jsonl`` ledger
            (persist-before-fold), workers carry flight recorders and
            resource probes, and :attr:`view` exposes the live
            :class:`~repro.obs.stream.CampaignView` for watchers.
    """

    def __init__(
        self,
        spec: CampaignSpec | Any,
        store: ResultStore | Any,
        jobs: int = 1,
        max_events: int | None = None,
        progress: ProgressFn | None = None,
        obs_dir: str | Path | None = None,
        stream: StreamConfig | None = None,
    ) -> None:
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        self.spec = spec
        self.store = store
        self.jobs = jobs
        self.max_events = max_events if max_events is not None else spec.max_events
        self.progress = progress
        self.obs_dir = Path(obs_dir) if obs_dir is not None else None
        self.stream = stream
        #: Live view of the current streamed run (None when stream off).
        self.view = None
        self._stream_state: CampaignStream | None = None
        self._stream_lock = threading.Lock()

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def pending_tasks(self) -> tuple[int, list[FleetTask]]:
        """Expand the spec and subtract completed work.

        Returns:
            ``(total, pending)`` — the full task count and the tasks not
            yet recorded ``ok`` in the store, in stable task order.
        """
        tasks = self.spec.tasks()
        done = self.store.completed_ids()
        return len(tasks), [task for task in tasks if task.task_id not in done]

    def _results(self, pending: list[FleetTask]) -> Iterator[TaskRecord]:
        obs_dir = str(self.obs_dir) if self.obs_dir is not None else None
        if self.jobs == 1:
            if self._stream_state is not None:
                yield from self._serial_streamed(pending)
                return
            for task in pending:
                yield execute_task(task, self.max_events, obs_dir=self.obs_dir)
            return
        payloads = [
            (task.to_dict(), self.max_events, obs_dir) for task in pending
        ]
        if self._stream_state is not None:
            yield from self._pool_streamed(payloads)
            return
        # chunksize=1 keeps completion streaming; ordered imap keeps the
        # store's line order identical to the serial run.
        with multiprocessing.Pool(processes=self.jobs) as pool:
            for record_data in pool.imap(_pool_execute, payloads, chunksize=1):
                yield TaskRecord.from_dict(record_data)

    def _serial_streamed(
        self, pending: list[FleetTask]
    ) -> Iterator[TaskRecord]:
        """jobs=1 under streaming: the parent is its own worker."""
        global _STREAM_WORKER
        stream, lock = self._stream_state, self._stream_lock

        def emit(item: dict[str, Any]) -> None:
            with lock:
                stream.emit(ProgressEvent.from_dict(item))

        ctx = _StreamWorker("w0", emit, self.stream.worker_payload())
        if ctx.trace_malloc and not tracemalloc.is_tracing():
            tracemalloc.start()
        ctx.heartbeat(force=True)
        previous = _STREAM_WORKER
        _STREAM_WORKER = ctx
        try:
            for task in pending:
                yield _execute_streamed(
                    ctx, task, self.max_events, self.obs_dir
                )
        finally:
            _STREAM_WORKER = previous

    def _pool_streamed(
        self, payloads: list[tuple[dict[str, Any], int | None, str | None]]
    ) -> Iterator[TaskRecord]:
        """Pool execution with worker events drained off a queue.

        Workers stream events (task_started, heartbeats) over a
        multiprocessing queue passed through the pool initializer; a
        parent drain thread folds them into the ledger under the stream
        lock.  The pool is closed and joined (not terminated) on the
        happy path so worker feeder threads flush their last events.
        """
        stream, lock = self._stream_state, self._stream_lock
        event_queue: Any = multiprocessing.Queue()
        stop = threading.Event()

        def drain() -> None:
            while True:
                try:
                    item = event_queue.get(timeout=0.1)
                except queue_module.Empty:
                    if stop.is_set():
                        return
                    continue
                with lock:
                    stream.emit(ProgressEvent.from_dict(item))

        drainer = threading.Thread(target=drain, daemon=True)
        drainer.start()
        pool = multiprocessing.Pool(
            processes=self.jobs,
            initializer=_init_stream_worker,
            initargs=(event_queue, self.stream.worker_payload()),
        )
        try:
            for record_data in pool.imap(_pool_execute, payloads, chunksize=1):
                yield TaskRecord.from_dict(record_data)
            pool.close()
            pool.join()
        except BaseException:
            pool.terminate()
            pool.join()
            raise
        finally:
            stop.set()
            drainer.join(timeout=5.0)

    def run(self) -> FleetOutcome:
        """Execute every pending task, appending records as they finish."""
        started = time.perf_counter()
        # A previous run may have been killed mid-append; heal the store
        # (terminate any torn tail line) before reading completed work.
        # Sharded stores rescan only their dirty shards here.
        self.store.heal()
        tasks = self.spec.tasks()
        done = self.store.completed_ids()
        total = len(tasks)
        pending = [task for task in tasks if task.task_id not in done]
        if self.obs_dir is not None:
            self.obs_dir.mkdir(parents=True, exist_ok=True)
        outcome = FleetOutcome(total=total, skipped=total - len(pending))
        stream: CampaignStream | None = None
        if self.stream is not None:
            # Open replays any existing ledger and reconciles it against
            # the healed store (record-in-flight gap of a previous kill).
            stream = CampaignStream.open(
                self.stream.ledger_path, completed_ids=done, now=time.time()
            )
            self._stream_state = stream
            self.view = stream.view
            stream.emit(ProgressEvent(
                kind="campaign_started", time=time.time(),
                data={
                    "campaign": getattr(self.spec, "name", "campaign"),
                    "total": total,
                    "skipped": outcome.skipped,
                    "jobs": self.jobs,
                },
            ))
        pending_rollups: list[dict[str, Any]] = []
        try:
            for record in self._results(pending):
                # Store first, ledger second: a ledger task_finished
                # always implies a durable store record, never the
                # other way around.
                self.store.append(record)
                if stream is not None:
                    self._emit_finished(stream, record, pending_rollups)
                outcome.executed.append(record)
                if self.progress is not None:
                    self.progress(len(outcome.executed), len(pending), record)
            if stream is not None:
                with self._stream_lock:
                    if pending_rollups:
                        stream.emit_snapshot(time.time(), pending_rollups)
                        pending_rollups.clear()
                    stream.emit(ProgressEvent(
                        kind="campaign_finished", time=time.time(),
                        data={"executed": len(outcome.executed)},
                    ))
        finally:
            if stream is not None:
                stream.close()
                self._stream_state = None
        if self.obs_dir is not None:
            self._write_campaign_rollup()
        outcome.wall_time = time.perf_counter() - started
        return outcome

    def _emit_finished(
        self,
        stream: CampaignStream,
        record: TaskRecord,
        pending_rollups: list[dict[str, Any]],
    ) -> None:
        """Ledger a completed record (parent-side, post-append)."""
        kind = "task_finished" if record.status == STATUS_OK else "task_errored"
        data: dict[str, Any] = {"wall_time": record.wall_time}
        if record.error is not None:
            data["error"] = record.error
        rollup = record.metrics.get("obs") if record.status == STATUS_OK else None
        if isinstance(rollup, Mapping):
            pending_rollups.append(dict(rollup))
        with self._stream_lock:
            stream.emit(ProgressEvent(
                kind=kind, time=time.time(),
                task_id=record.task_id, data=data,
            ))
            every = self.stream.snapshot_every if self.stream else 0
            if every and stream.view.wall_time_count % every == 0:
                stream.emit_snapshot(time.time(), pending_rollups)
                pending_rollups.clear()

    def _write_campaign_rollup(self) -> None:
        """Aggregate every stored task's obs summary into one file.

        Reads the rollups back from the *store* (not just this call's
        records), so a resumed campaign aggregates everything — earlier
        sessions included — and ``campaign_obs.json`` always reflects
        the store's complete state.
        """
        rollups = [
            record.metrics["obs"]
            for record in self.store.records()
            if record.status == STATUS_OK and "obs" in record.metrics
        ]
        merged = merge_rollups(rollups)
        path = self.obs_dir / "campaign_obs.json"
        path.write_text(
            json.dumps(merged, sort_keys=True, indent=2) + "\n",
            encoding="utf-8",
        )


def run_campaign(
    spec: CampaignSpec,
    store: ResultStore | Any | str | Path,
    jobs: int = 1,
    progress: ProgressFn | None = None,
    obs_dir: str | Path | None = None,
    stream: StreamConfig | None = None,
) -> FleetOutcome:
    """Convenience wrapper: build the runner and execute the campaign.

    ``store`` may be any result-store backend (single-file, sharded,
    SQLite, in-memory) or a bare path, which opens a single-file JSONL
    store at that location.
    """
    if isinstance(store, (str, Path)):
        store = ResultStore(store)
    return FleetRunner(
        spec, store, jobs=jobs, progress=progress, obs_dir=obs_dir,
        stream=stream,
    ).run()
