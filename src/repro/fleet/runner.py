"""Campaign execution: expand a spec, run its tasks, persist results.

:class:`FleetRunner` is the driver loop: expand the
:class:`~repro.fleet.spec.CampaignSpec` into tasks, drop the ones the
:class:`~repro.fleet.results.ResultStore` already holds (resume), execute
the rest — in-process when ``jobs=1``, across a ``multiprocessing`` pool
otherwise — and append each record to the store the moment it completes.

Two properties the rest of the fleet stack depends on:

* **Determinism** — every task carries its own derived seed, task
  execution never reads shared mutable state, and completed records are
  appended in task order (``imap``, not ``imap_unordered``), so serial
  and parallel runs of the same spec write byte-identical stores modulo
  the ``wall_time`` field.
* **Crash tolerance** — the store is append-on-complete from the parent
  process only; kill the run at any point and re-running the same spec
  skips every finished task and recomputes nothing else.
"""

from __future__ import annotations

import multiprocessing
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator, Mapping

from repro.fleet.results import (
    STATUS_ERROR,
    STATUS_OK,
    ResultStore,
    TaskRecord,
    report_metrics,
)
from repro.fleet.spec import CampaignSpec, FleetTask, decode_params
from repro.sim.engine import Engine
from repro.workloads.scenarios import ScenarioResult, get_scenario

#: Progress callback signature: (completed_in_this_run, remaining_total,
#: record).  Called once per finished task, in completion order.
ProgressFn = Callable[[int, int, TaskRecord], None]


def scenario_metrics(result: Any) -> dict[str, Any]:
    """Flatten a scenario's return value into JSON-safe task metrics.

    Harness-backed scenarios return a :class:`ScenarioResult`, scored via
    :func:`report_metrics` plus any scenario-specific ``extra`` fields;
    simulation scenarios without a protocol harness (rekey, DPD, save
    policy, ...) return a plain metrics mapping, recorded as-is.
    """
    if isinstance(result, ScenarioResult):
        metrics = report_metrics(result.report)
        metrics.update(result.extra)
        return metrics
    if isinstance(result, Mapping):
        return dict(result)
    raise TypeError(
        f"scenario returned {type(result).__name__}; expected a "
        "ScenarioResult or a metrics mapping"
    )


def execute_task(task: FleetTask, max_events: int | None = None) -> TaskRecord:
    """Run one task to completion and score it; never raises.

    Task params are JSON-encoded (see :func:`repro.fleet.spec.decode_params`
    for the tagged-value scheme: ``CostModel`` overrides round-trip through
    plain dicts) and decoded here, in the worker, right before the call.

    The engine's class-wide default hard event limit is set for the
    duration of the call so the guard reaches the engine built deep
    inside the scenario helper; any exception — including the
    :class:`~repro.sim.engine.EngineEventLimitError` tripwire — becomes a
    ``status="error"`` record (retried on the next resume) instead of
    taking the whole campaign down.
    """
    started = time.perf_counter()
    previous_limit = Engine.default_hard_event_limit
    Engine.default_hard_event_limit = max_events
    try:
        scenario = get_scenario(task.scenario)
        result = scenario(seed=task.seed, **decode_params(task.params))
        return TaskRecord(
            task_id=task.task_id,
            scenario=task.scenario,
            params=dict(task.params),
            seed=task.seed,
            status=STATUS_OK,
            metrics=scenario_metrics(result),
            wall_time=time.perf_counter() - started,
        )
    except Exception as exc:  # noqa: BLE001 - one bad task must not kill the fleet
        return TaskRecord(
            task_id=task.task_id,
            scenario=task.scenario,
            params=dict(task.params),
            seed=task.seed,
            status=STATUS_ERROR,
            error=f"{type(exc).__name__}: {exc}",
            wall_time=time.perf_counter() - started,
        )
    finally:
        Engine.default_hard_event_limit = previous_limit


def _pool_execute(payload: tuple[dict[str, Any], int | None]) -> dict[str, Any]:
    """Pool worker entry point (module-level so it pickles by reference)."""
    task_data, max_events = payload
    return execute_task(FleetTask.from_dict(task_data), max_events).to_dict()


@dataclass
class FleetOutcome:
    """What one :meth:`FleetRunner.run` call did.

    Attributes:
        total: tasks the spec expands to.
        skipped: tasks already in the store (resume hits).
        executed: records produced by this call, in task order.
        wall_time: elapsed wall time of this call, in seconds.
    """

    total: int
    skipped: int
    executed: list[TaskRecord] = field(default_factory=list)
    wall_time: float = 0.0

    @property
    def sessions_per_second(self) -> float:
        """Throughput of this call (0 when nothing ran)."""
        if not self.executed or self.wall_time <= 0:
            return 0.0
        return len(self.executed) / self.wall_time


class FleetRunner:
    """Executes a campaign spec against a result store.

    Args:
        spec: the campaign to run — a :class:`CampaignSpec`, or any plan
            exposing ``tasks() -> list[FleetTask]`` and ``max_events``
            (the experiment sweeps in :mod:`repro.experiments.sweep` do).
        store: durable record sink (:class:`ResultStore`, or the
            in-memory variant); pre-existing ``ok`` records are treated
            as finished work and skipped.
        jobs: worker processes; ``1`` runs in-process (no pool overhead).
        max_events: per-task engine event budget; defaults to
            ``spec.max_events`` (``None`` disables the guard).
        progress: optional per-record callback (see :data:`ProgressFn`).
    """

    def __init__(
        self,
        spec: CampaignSpec | Any,
        store: ResultStore | Any,
        jobs: int = 1,
        max_events: int | None = None,
        progress: ProgressFn | None = None,
    ) -> None:
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        self.spec = spec
        self.store = store
        self.jobs = jobs
        self.max_events = max_events if max_events is not None else spec.max_events
        self.progress = progress

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def pending_tasks(self) -> tuple[int, list[FleetTask]]:
        """Expand the spec and subtract completed work.

        Returns:
            ``(total, pending)`` — the full task count and the tasks not
            yet recorded ``ok`` in the store, in stable task order.
        """
        tasks = self.spec.tasks()
        done = self.store.completed_ids()
        return len(tasks), [task for task in tasks if task.task_id not in done]

    def _results(self, pending: list[FleetTask]) -> Iterator[TaskRecord]:
        if self.jobs == 1:
            for task in pending:
                yield execute_task(task, self.max_events)
            return
        payloads = [(task.to_dict(), self.max_events) for task in pending]
        # chunksize=1 keeps completion streaming; ordered imap keeps the
        # store's line order identical to the serial run.
        with multiprocessing.Pool(processes=self.jobs) as pool:
            for record_data in pool.imap(_pool_execute, payloads, chunksize=1):
                yield TaskRecord.from_dict(record_data)

    def run(self) -> FleetOutcome:
        """Execute every pending task, appending records as they finish."""
        started = time.perf_counter()
        total, pending = self.pending_tasks()
        outcome = FleetOutcome(total=total, skipped=total - len(pending))
        for record in self._results(pending):
            self.store.append(record)
            outcome.executed.append(record)
            if self.progress is not None:
                self.progress(len(outcome.executed), len(pending), record)
        outcome.wall_time = time.perf_counter() - started
        return outcome


def run_campaign(
    spec: CampaignSpec,
    store: ResultStore | str,
    jobs: int = 1,
    progress: ProgressFn | None = None,
) -> FleetOutcome:
    """Convenience wrapper: build the runner and execute the campaign."""
    if not isinstance(store, ResultStore):
        store = ResultStore(store)
    return FleetRunner(spec, store, jobs=jobs, progress=progress).run()
