"""Declarative campaign specifications.

A :class:`CampaignSpec` describes a whole population of scenario runs —
which scenarios, over which parameter choices, how many sessions, under
which master seed — without executing anything.  Specs round-trip through
plain dicts and JSON, so campaigns live in version-controllable files and
travel unchanged between the CLI, the runner, and worker processes.

Expansion (:meth:`CampaignSpec.tasks`) is pure and deterministic: the same
spec always yields the same list of :class:`FleetTask` with the same ids
and the same per-task seeds, derived via the stable spawn-key scheme in
:func:`repro.util.rng.derive_seed`.  That invariant is what makes fleet
results resumable and byte-for-byte reproducible.
"""

from __future__ import annotations

import inspect
import itertools
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterator, Mapping, Sequence

from repro.gateway.faults import GatewayFault, fault_from_dict
from repro.ipsec.costs import CostModel
from repro.netpath.faults import PathFault, path_fault_from_dict
from repro.netpath.profile import PathProfile
from repro.util.rng import derive_seed, make_rng
from repro.util.validation import check_positive
from repro.workloads.scenarios import SCENARIOS

#: Default per-task event budget (see ``Engine.hard_event_limit``): far
#: above any sane scenario (~10 events per message, thousands of
#: messages), low enough to kill a self-rescheduling loop in seconds.
DEFAULT_MAX_EVENTS = 5_000_000

#: Tag key marking a JSON-encoded :class:`~repro.ipsec.costs.CostModel`
#: inside task params (see :func:`encode_params` / :func:`decode_params`).
COSTMODEL_TAG = "__costmodel__"

#: Tag key marking a JSON-encoded gateway fault (``GatewayCrash``,
#: ``RollingRestart``, ``SAChurn`` — the ``kind`` field dispatches).
GATEWAYFAULT_TAG = "__gatewayfault__"

#: Tag key marking a JSON-encoded :class:`~repro.netpath.PathProfile`.
PATHPROFILE_TAG = "__pathprofile__"

#: Tag key marking a JSON-encoded path fault (``PathOutage``,
#: ``PathFlap``, ``RegimeShift``, ``NatRebinding`` — ``kind`` dispatches).
PATHFAULT_TAG = "__pathfault__"


def encode_param_value(value: Any) -> Any:
    """JSON-safe encoding of one scenario kwarg.

    :class:`CostModel` instances, gateway faults, path profiles and path
    faults become tagged dicts so per-task cost overrides, fault
    schedules and time-varying path timelines survive the JSONL result
    store and hand-written campaign spec files; tuples become lists
    (what JSON would do anyway), keeping in-memory and from-disk
    expansions identical.
    """
    if isinstance(value, CostModel):
        return {COSTMODEL_TAG: {k: v for k, v in vars(value).items()}}
    if isinstance(value, GatewayFault):
        return {GATEWAYFAULT_TAG: value.to_dict()}
    if isinstance(value, PathProfile):
        return {PATHPROFILE_TAG: value.to_dict()}
    if isinstance(value, PathFault):
        return {PATHFAULT_TAG: value.to_dict()}
    if isinstance(value, (tuple, list)):
        return [encode_param_value(item) for item in value]
    if isinstance(value, Mapping):
        return {k: encode_param_value(v) for k, v in value.items()}
    return value


def decode_param_value(value: Any) -> Any:
    """Inverse of :func:`encode_param_value` (tagged dicts -> objects)."""
    if isinstance(value, Mapping):
        if set(value) == {COSTMODEL_TAG}:
            return CostModel(**value[COSTMODEL_TAG])
        if set(value) == {GATEWAYFAULT_TAG}:
            return fault_from_dict(value[GATEWAYFAULT_TAG])
        if set(value) == {PATHPROFILE_TAG}:
            return PathProfile.from_dict(value[PATHPROFILE_TAG])
        if set(value) == {PATHFAULT_TAG}:
            return path_fault_from_dict(value[PATHFAULT_TAG])
        return {k: decode_param_value(v) for k, v in value.items()}
    if isinstance(value, list):
        return [decode_param_value(item) for item in value]
    return value


def encode_params(params: Mapping[str, Any]) -> dict[str, Any]:
    """Encode a scenario kwargs mapping for JSON-safe task transport."""
    return {key: encode_param_value(value) for key, value in params.items()}


def decode_params(params: Mapping[str, Any]) -> dict[str, Any]:
    """Decode task params back into scenario-ready kwargs."""
    return {key: decode_param_value(value) for key, value in params.items()}


def validate_scenario_params(
    scenario: str, params: Mapping[str, Any], context: str
) -> None:
    """Check that ``scenario`` is registered and ``params`` name real kwargs.

    Catching a misspelled scenario or parameter axis here costs one
    signature inspection; catching it later costs the whole campaign, one
    per-task ``TypeError`` error record at a time.
    """
    if scenario not in SCENARIOS:
        known = ", ".join(sorted(SCENARIOS))
        raise ValueError(
            f"{context}: unknown scenario {scenario!r}; known scenarios: {known}"
        )
    signature = inspect.signature(SCENARIOS[scenario])
    allowed = set(signature.parameters) - {"seed"}
    unknown = sorted(set(params) - allowed)
    if unknown:
        detail = (
            "'seed' is derived per task and cannot be a parameter axis"
            if unknown == ["seed"]
            else f"valid parameters: {', '.join(sorted(allowed))}"
        )
        raise ValueError(
            f"{context}: scenario {scenario!r} has no parameter(s) "
            f"{unknown}; {detail}"
        )


@dataclass(frozen=True)
class FleetTask:
    """One executable unit of a campaign: a scenario call, fully pinned.

    Attributes:
        task_id: stable identifier, unique within the campaign; the
            resume key in the result store.
        scenario: name in :data:`repro.workloads.scenarios.SCENARIOS`.
        params: keyword arguments for the scenario (seed excluded).
        seed: the derived, independent seed for this task.
    """

    task_id: str
    scenario: str
    params: Mapping[str, Any]
    seed: int

    def to_dict(self) -> dict[str, Any]:
        return {
            "task_id": self.task_id,
            "scenario": self.scenario,
            "params": dict(self.params),
            "seed": self.seed,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "FleetTask":
        return cls(
            task_id=data["task_id"],
            scenario=data["scenario"],
            params=dict(data["params"]),
            seed=data["seed"],
        )


def _as_choices(axis: str, value: Any) -> tuple[Any, ...]:
    """Normalise a grid axis value into a non-empty tuple of choices."""
    if isinstance(value, (list, tuple)):
        if not value:
            raise ValueError(f"axis {axis!r} has an empty choice list")
        return tuple(value)
    return (value,)  # a bare scalar is a single-choice axis


@dataclass(frozen=True)
class ScenarioGrid:
    """One scenario plus its parameter space.

    Attributes:
        scenario: registry name of the scenario to run.
        params: axis name -> choice list (a bare scalar means "always
            this value").  Axes are combined in sorted-name order, so the
            expansion does not depend on dict insertion order.
        sessions: ``None`` expands the full cartesian product of the
            axes ("grid mode"); an ``int`` draws that many sessions, each
            with one choice per axis picked by a spec-seeded RNG
            ("population mode" — how a 10k-session mixed campaign stays a
            three-line spec).
        repeats: grid mode only — replicate every combination this many
            times under distinct seeds.
    """

    scenario: str
    params: Mapping[str, Any] = field(default_factory=dict)
    sessions: int | None = None
    repeats: int = 1

    def __post_init__(self) -> None:
        if not self.scenario:
            raise ValueError("scenario name must be non-empty")
        if self.sessions is not None:
            check_positive("sessions", self.sessions)
        check_positive("repeats", self.repeats)
        if self.sessions is not None and self.repeats != 1:
            raise ValueError(
                "repeats applies to grid mode only; population mode "
                "(sessions=N) draws each session independently — drop "
                "repeats or raise sessions"
            )
        for axis, value in self.params.items():
            _as_choices(axis, value)

    # ------------------------------------------------------------------
    # Serialisation
    # ------------------------------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        data: dict[str, Any] = {
            "scenario": self.scenario,
            "params": {k: encode_param_value(v) for k, v in self.params.items()},
        }
        if self.sessions is not None:
            data["sessions"] = self.sessions
        if self.repeats != 1:
            data["repeats"] = self.repeats
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ScenarioGrid":
        return cls(
            scenario=data["scenario"],
            params=dict(data.get("params", {})),
            sessions=data.get("sessions"),
            repeats=data.get("repeats", 1),
        )

    # ------------------------------------------------------------------
    # Expansion
    # ------------------------------------------------------------------
    def session_count(self) -> int:
        """Number of tasks this grid expands to."""
        if self.sessions is not None:
            return self.sessions
        count = self.repeats
        for axis in self.params:
            count *= len(_as_choices(axis, self.params[axis]))
        return count

    def expand(self, base_seed: int, grid_index: int) -> Iterator[FleetTask]:
        """Yield this grid's tasks with derived ids and seeds."""
        axes = sorted(self.params)
        choices = [_as_choices(axis, self.params[axis]) for axis in axes]
        if self.sessions is None:
            combos = enumerate(itertools.product(*choices))
            for combo_index, combo in combos:
                for rep in range(self.repeats):
                    suffix = f"c{combo_index:05d}" + (
                        f"r{rep}" if self.repeats > 1 else ""
                    )
                    yield FleetTask(
                        task_id=f"g{grid_index}/{self.scenario}/{suffix}",
                        scenario=self.scenario,
                        params=encode_params(dict(zip(axes, combo))),
                        seed=derive_seed(
                            base_seed, grid_index, self.scenario, combo_index, rep
                        ),
                    )
        else:
            # Population mode: the draw RNG is itself spawn-key derived,
            # so the sampled parameters are a pure function of the spec.
            rng = make_rng(derive_seed(base_seed, grid_index, "population"))
            for session in range(self.sessions):
                params = {
                    axis: rng.choice(axis_choices)
                    for axis, axis_choices in zip(axes, choices)
                }
                yield FleetTask(
                    task_id=f"g{grid_index}/{self.scenario}/s{session:05d}",
                    scenario=self.scenario,
                    params=encode_params(params),
                    seed=derive_seed(base_seed, grid_index, self.scenario, session),
                )


@dataclass(frozen=True)
class CampaignSpec:
    """A complete, declarative fleet campaign.

    Attributes:
        name: campaign label (used for default output paths).
        grids: the scenario populations making up the campaign.
        base_seed: master seed every per-task seed is derived from.
        max_events: hard per-task event budget handed to the engine guard
            (see :class:`repro.sim.engine.EngineEventLimitError`).
    """

    name: str
    grids: tuple[ScenarioGrid, ...]
    base_seed: int = 0
    max_events: int = DEFAULT_MAX_EVENTS

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("campaign name must be non-empty")
        if not self.grids:
            raise ValueError("campaign needs at least one scenario grid")
        object.__setattr__(self, "grids", tuple(
            grid if isinstance(grid, ScenarioGrid) else ScenarioGrid.from_dict(grid)
            for grid in self.grids
        ))
        check_positive("max_events", self.max_events)

    # ------------------------------------------------------------------
    # Serialisation
    # ------------------------------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "base_seed": self.base_seed,
            "max_events": self.max_events,
            "grids": [grid.to_dict() for grid in self.grids],
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "CampaignSpec":
        missing = [key for key in ("name", "grids") if key not in data]
        if missing:
            raise ValueError(f"campaign spec missing required keys: {missing}")
        return cls(
            name=data["name"],
            grids=tuple(ScenarioGrid.from_dict(g) for g in data["grids"]),
            base_seed=data.get("base_seed", 0),
            max_events=data.get("max_events", DEFAULT_MAX_EVENTS),
        )

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "CampaignSpec":
        return cls.from_dict(json.loads(text))

    def dump(self, path: str | Path) -> Path:
        """Write the spec as JSON to ``path`` (parents created)."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(self.to_json() + "\n", encoding="utf-8")
        return path

    @classmethod
    def load(cls, path: str | Path) -> "CampaignSpec":
        """Read a spec from a JSON file."""
        return cls.from_json(Path(path).read_text(encoding="utf-8"))

    # ------------------------------------------------------------------
    # Expansion
    # ------------------------------------------------------------------
    def validate_scenarios(self) -> None:
        """Check every grid names a registered scenario and real params."""
        for grid in self.grids:
            validate_scenario_params(
                grid.scenario, grid.params, f"campaign {self.name!r}"
            )

    def session_count(self) -> int:
        """Total number of tasks the spec expands to."""
        return sum(grid.session_count() for grid in self.grids)

    def tasks(self) -> list[FleetTask]:
        """Expand into the deterministic, ordered task list."""
        self.validate_scenarios()
        expanded = list(self.iter_tasks())
        ids = [task.task_id for task in expanded]
        if len(set(ids)) != len(ids):  # only reachable via a future id-scheme bug
            raise ValueError(f"campaign {self.name!r} expanded to duplicate task ids")
        return expanded

    def iter_tasks(self) -> Iterator[FleetTask]:
        """Stream the expansion without materialising the task list.

        Same tasks in the same order as :meth:`tasks`, one at a time —
        the path for million-task campaigns where even the id list is
        worth not holding.  Skips the duplicate-id audit (:meth:`tasks`
        still performs it; the id scheme makes duplicates unreachable
        short of a bug there).
        """
        for grid_index, grid in enumerate(self.grids):
            yield from grid.expand(self.base_seed, grid_index)


class SampledCampaign:
    """A deterministic subsample of a campaign, runnable as a campaign.

    Membership is decided per task by hashing its id against the spec's
    base seed — ``derive_seed(base_seed, "sample", task_id) % total <
    target`` — so whether a task is in the sample depends on nothing but
    the spec and the target: not on execution order, job count, store
    backend, or which other tasks ran.  The same ``--sample N`` therefore
    resumes exactly like the full campaign — kill it, re-run it, the
    sample is the same set.  Expected size is ``target`` with binomial
    spread (~±2·sqrt(target)); exactness is not needed where this is
    used — CI-scale spot checks of full campaigns.

    Duck-types the spec surface :class:`~repro.fleet.runner.FleetRunner`
    uses (``tasks()``, ``iter_tasks()``, ``session_count()``,
    ``max_events``, ``name``, ``base_seed``).
    """

    def __init__(self, spec: CampaignSpec, target: int) -> None:
        check_positive("target", target)
        self.spec = spec
        self.target = target
        #: denominator of the membership test: the full campaign size.
        self.total = spec.session_count()
        self.name = f"{spec.name}~{target}"
        self.base_seed = spec.base_seed
        self.max_events = spec.max_events

    def keeps(self, task_id: str) -> bool:
        """Whether ``task_id`` is in the sample (pure, order-free)."""
        if self.target >= self.total:
            return True
        return derive_seed(self.base_seed, "sample", task_id) % self.total < self.target

    def iter_tasks(self) -> Iterator[FleetTask]:
        for task in self.spec.iter_tasks():
            if self.keeps(task.task_id):
                yield task

    def tasks(self) -> list[FleetTask]:
        return list(self.iter_tasks())

    def session_count(self) -> int:
        """The *expected* sample size (exact count requires expansion)."""
        return min(self.target, self.total)


def megafleet_spec(base_seed: int = 2003) -> CampaignSpec:
    """The million-session campaign: 10^6 mixed recovery stories.

    Four population-mode grids of 250k sessions each — sender resets,
    receiver resets (with and without history replay), lossy resets, and
    multi-SA gateway crashes — every parameter drawn per session from the
    spec-seeded RNG.  Expansion is deterministic and streams through
    :meth:`CampaignSpec.iter_tasks` in seconds; *running* it in full is a
    ``--runslow`` benchmark affair (see ``benchmarks/bench_m7_megafleet``),
    while CI exercises a deterministic ~2k-session ``--sample``.
    """
    sessions_per_grid = 250_000
    return CampaignSpec(
        name="megafleet",
        base_seed=base_seed,
        grids=(
            ScenarioGrid(
                scenario="sender_reset",
                params={
                    "k": 25,
                    "reset_after_sends": [40, 45, 50, 55, 60],
                    "messages_after_reset": [40, 60],
                },
                sessions=sessions_per_grid,
            ),
            ScenarioGrid(
                scenario="receiver_reset",
                params={
                    "k": 25,
                    "reset_after_receives": [40, 50, 60],
                    "messages_after_reset": [40, 60],
                    "replay_history_after": [True, False],
                },
                sessions=sessions_per_grid,
            ),
            ScenarioGrid(
                scenario="loss_reset",
                params={
                    "k": 25,
                    "loss_rate": [0.0, 0.02, 0.05, 0.1],
                    "reset_after_sends": [45, 50, 55],
                    "messages_after_reset": [40, 60],
                },
                sessions=sessions_per_grid,
            ),
            ScenarioGrid(
                scenario="gateway_crash",
                params={
                    "n_sas": [2, 4, 8],
                    "store_policy": ["serial", "batched", "write_ahead"],
                    "crash_after_sends": [50, 60],
                    "messages_after_reset": [40, 60],
                },
                sessions=sessions_per_grid,
            ),
        ),
    )


def example_spec(sessions: int = 60, base_seed: int = 2003) -> CampaignSpec:
    """A small mixed-scenario campaign, used by docs, examples and tests.

    Keeps the paper's safe SAVE interval (K=25, the T_save/T_send
    minimum) but shortens the streams so a session takes milliseconds;
    ``sessions`` splits across a sender-reset population, randomized
    receiver-replay / loss populations, and (from 4 sessions up) a
    multi-SA ``gateway_crash`` population exercising the shared-store
    write policies.  Below 3 sessions there is nothing to split — it
    degenerates to sender resets only.
    """
    check_positive("sessions", sessions)
    if sessions < 3:
        return CampaignSpec(
            name="mixed-demo",
            base_seed=base_seed,
            grids=(ScenarioGrid(
                scenario="sender_reset",
                params={
                    "k": 25,
                    "reset_after_sends": [40, 45, 50, 55, 60],
                    "messages_after_reset": 60,
                },
                sessions=sessions,
            ),),
        )
    share = max(1, sessions // 4) if sessions >= 4 else max(1, sessions // 3)
    grids = [
        ScenarioGrid(
            scenario="receiver_reset",
            params={
                "k": 25,
                "reset_after_receives": [40, 50, 60],
                "messages_after_reset": 60,
                "replay_history_after": [True, False],
            },
            sessions=share,
        ),
        ScenarioGrid(
            scenario="loss_reset",
            params={
                "k": 25,
                "loss_rate": [0.0, 0.02, 0.05],
                "reset_after_sends": 50,
                "messages_after_reset": 60,
            },
            sessions=share,
        ),
    ]
    if sessions >= 4:
        grids.append(ScenarioGrid(
            scenario="gateway_crash",
            params={
                "n_sas": [2, 4],
                "store_policy": ["serial", "batched", "write_ahead"],
                "crash_after_sends": [50, 60],
                "messages_after_reset": 60,
            },
            sessions=share,
        ))
    grids.insert(0, ScenarioGrid(
        scenario="sender_reset",
        params={
            "k": 25,
            "reset_after_sends": [40, 45, 50, 55, 60],
            "messages_after_reset": 60,
        },
        sessions=sessions - share * len(grids),
    ))
    return CampaignSpec(
        name="mixed-demo",
        base_seed=base_seed,
        grids=tuple(grids),
    )
