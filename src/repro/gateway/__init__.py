"""Multi-SA security gateway: correlated resets over a shared store.

The paper proves convergence for one sender-receiver pair per reset;
its deployment unit is a gateway terminating N SAs, where one crash
resets every SA at the same instant and recovery contends for one
persistent device.  This package multiplexes N pairs inside a single
deterministic engine run:

* :mod:`~repro.gateway.store` — :class:`SharedStore` /
  :class:`SharedStoreClient`: one FIFO persistence device with the
  paper's cost model and ``serial`` / ``batched`` / ``write_ahead``
  policies; the post-crash FETCH storm queues, it is not free.
* :mod:`~repro.gateway.core` — :class:`Gateway` / :class:`SAUnit`: N
  SAs from ``build_protocol`` on one engine, SA churn, the correlated
  crash path.
* :mod:`~repro.gateway.faults` — :class:`GatewayCrash`,
  :class:`RollingRestart`, :class:`SAChurn` (JSON-round-trippable, see
  the ``__gatewayfault__`` tag in :mod:`repro.fleet.spec`).
* :mod:`~repro.gateway.report` — :class:`GatewayReport`, the per-SA
  convergence reports flattened into one fleet-compatible record.

Quickstart::

    from repro.gateway import Gateway, GatewayCrash

    gw = Gateway(n_sas=16, store_policy="batched")
    GatewayCrash(after_sends=500).apply(gw)
    gw.start_traffic(count=1200)
    gw.run(until=0.1)
    print(gw.score().summary())

or from the command line: ``python -m repro gateway --sas 16``.
"""

from repro.gateway.core import GATEWAY_SIDES, Gateway, SAUnit
from repro.gateway.faults import (
    FAULT_KINDS,
    GatewayCrash,
    GatewayFault,
    RollingRestart,
    SAChurn,
    fault_from_dict,
)
from repro.gateway.report import GatewayReport, SAOutcome
from repro.gateway.store import (
    STORE_POLICIES,
    WAL_APPEND_FRACTION,
    WAL_SCAN_FACTOR,
    SharedStore,
    SharedStoreClient,
    safe_save_interval,
)

__all__ = [
    "FAULT_KINDS",
    "GATEWAY_SIDES",
    "Gateway",
    "GatewayCrash",
    "GatewayFault",
    "GatewayReport",
    "RollingRestart",
    "SAChurn",
    "SAOutcome",
    "SAUnit",
    "STORE_POLICIES",
    "SharedStore",
    "SharedStoreClient",
    "WAL_APPEND_FRACTION",
    "WAL_SCAN_FACTOR",
    "fault_from_dict",
    "safe_save_interval",
]
