"""One persistent device shared by every SA of a gateway.

The paper's SAVE/FETCH analysis charges each operation a fixed cost
(``t_save`` = 100 us, ``t_fetch``) against a *private* store per
endpoint.  A security gateway terminating N SAs has one persistent
device, so SAVE and FETCH requests from different SAs contend: a SAVE
issued while the device is busy starts late, and — the case the paper
never models — the FETCH storm after a gateway crash queues N reads
back-to-back, so the i-th SA's recovery is delayed by the i-1 fetches in
front of it.

:class:`SharedStore` is that device: a FIFO service timeline
(``busy_until``) every operation reserves a slot on.  Three write
policies, all deterministic:

* ``"serial"`` — the baseline.  Every SAVE occupies the device for the
  full ``t_save``, every FETCH for ``t_fetch``, strictly FIFO.  With one
  uncontended SA this is *exactly* the paper's private
  :class:`~repro.core.persistent.PersistentStore` timing — the
  N=1 golden-parity test in ``tests/gateway`` pins it.
* ``"batched"`` — group commit.  SAVEs that arrive while the device is
  busy coalesce into the next device write: one ``t_save`` commits the
  whole batch.  Device seconds drop under a save storm; individual save
  latency can rise (a batched save waits for the device to free first).
* ``"write_ahead"`` — journaling.  A SAVE is a sequential log append
  costing ``t_save * WAL_APPEND_FRACTION``; the price is paid at
  recovery, where FETCH must scan the log tail:
  ``t_fetch * WAL_SCAN_FACTOR`` per read.  Fast steady state, slow
  crash recovery — the classic WAL trade.

Per-SA state lives in :class:`SharedStoreClient`, a
:class:`~repro.core.persistent.PersistentStore` subclass that keeps its
own committed checkpoint, in-flight records, and crash semantics
(abort-on-reset aborts only *that SA's* saves) but books every
operation's timing through the shared device.  ``build_protocol``
accepts clients via its ``sender_store`` / ``receiver_store`` hooks, so
the protocol machines are byte-for-byte the paper's.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.persistent import PersistentStore
from repro.ipsec.costs import CostModel, PAPER_COSTS
from repro.sim.engine import Engine
from repro.sim.process import SimProcess

#: Known write policies (see module docstring).
STORE_POLICIES = ("serial", "batched", "write_ahead")

#: Cost of a write-ahead log append, as a fraction of a full ``t_save``
#: (sequential append vs random in-place write).
WAL_APPEND_FRACTION = 0.25

#: Recovery-scan multiplier a write-ahead FETCH pays over ``t_fetch``
#: (the committed value must be reconstructed from the log tail).
WAL_SCAN_FACTOR = 4.0


def safe_save_interval(
    n_sas: int,
    costs: CostModel = PAPER_COSTS,
    policy: str = "serial",
) -> int:
    """The paper's SAVE-interval sizing rule, generalized to a shared store.

    Section 4 sizes ``K`` so at most one SAVE is in flight: ``K >=
    t_save / t_send`` (25 with the paper's constants).  Behind one
    shared device that rule under-provisions: N SAs each checkpointing
    every ``K`` messages offer ``N * save_cost`` of device time per
    ``K * t_send`` period, so the serial policy needs ``K`` scaled by
    ``N`` or the save queue grows without bound and the committed
    checkpoint falls arbitrarily far behind (breaking the 2K gap bound).
    Batching amortizes the storm — one device write commits any number
    of queued saves — but a batched save can wait out the write already
    in progress, so commit latency is bounded by ``2 * t_save`` and
    ``K`` must cover that instead.  Write-ahead appends shrink the
    per-save device time by :data:`WAL_APPEND_FRACTION`.

    With ``n_sas=1`` every policy returns the paper's 25.
    """
    if policy not in STORE_POLICIES:
        known = ", ".join(STORE_POLICIES)
        raise ValueError(f"unknown store policy {policy!r}; known policies: {known}")
    per_save = costs.t_save
    if policy == "write_ahead":
        per_save = costs.t_save * WAL_APPEND_FRACTION
    demand = math.ceil(n_sas * per_save / costs.t_send)
    if policy == "batched" and n_sas > 1:
        # Group commit amortizes any N, but a batched save can wait out
        # the write already in progress: latency is capped at 2 t_save.
        demand = math.ceil(2 * costs.t_save / costs.t_send)
    return max(costs.min_save_interval(), demand)


@dataclass
class _OpenBatch:
    """A batched device write that is scheduled but has not started yet.

    SAVEs arriving before ``starts_at`` join it for free (group commit);
    once the device has started writing, late arrivals form a new batch.
    """

    starts_at: float
    commits_at: float
    members: int = 1


class SharedStore(SimProcess):
    """The gateway's one persistent device (see module docstring).

    Args:
        engine: the simulation engine shared by every SA.
        name: trace name, e.g. ``"store:gateway"``.
        costs: the paper's cost model (``t_save`` / ``t_fetch``).
        policy: one of :data:`STORE_POLICIES`.
        load_factor: load-dependent SAVE duration (default 0.0 = off).
            The paper treats ``t_save`` as a load-independent upper
            bound; on a real contended device a write takes longer the
            deeper the queue in front of it.  With ``load_factor = f``,
            a SAVE that must wait ``w`` seconds for the device costs
            ``save_cost + f * w`` of device time once it starts — i.e.
            duration grows linearly with queue depth (the wait *is* the
            queue depth times the per-op cost).  ``f > 0`` makes an
            under-provisioned store degrade super-linearly, which is
            exactly the regime the E15 sizing-rule note warns about.
    """

    def __init__(
        self,
        engine: Engine,
        name: str = "store:gateway",
        costs: CostModel = PAPER_COSTS,
        policy: str = "serial",
        load_factor: float = 0.0,
    ) -> None:
        super().__init__(engine, name)
        if policy not in STORE_POLICIES:
            known = ", ".join(STORE_POLICIES)
            raise ValueError(
                f"unknown store policy {policy!r}; known policies: {known}"
            )
        if load_factor < 0:
            raise ValueError(f"load_factor must be >= 0, got {load_factor}")
        self.costs = costs
        self.policy = policy
        self.load_factor = load_factor
        self._busy_until = 0.0
        self._open_batch: _OpenBatch | None = None
        self._clients: list[SharedStoreClient] = []
        # Device statistics.
        self.saves = 0
        self.fetches = 0
        self.device_writes = 0
        self.batches = 0
        self.batched_saves = 0
        self.busy_time = 0.0
        self.max_save_wait = 0.0
        self.max_fetch_wait = 0.0
        self.crashes = 0

    # ------------------------------------------------------------------
    # Clients
    # ------------------------------------------------------------------
    def client(self, name: str, initial_value: int = 0) -> "SharedStoreClient":
        """Create one SA's store client (its private checkpoint slot)."""
        created = SharedStoreClient(self, name, initial_value=initial_value)
        self._clients.append(created)
        return created

    @property
    def clients(self) -> tuple["SharedStoreClient", ...]:
        return tuple(self._clients)

    @property
    def backlog(self) -> float:
        """Time until the device is free (obs signal ``store/backlog``;
        it grows without bound exactly when ``K`` is under-provisioned)."""
        return max(0.0, self._busy_until - self.now)

    # ------------------------------------------------------------------
    # Device timeline
    # ------------------------------------------------------------------
    @property
    def save_cost(self) -> float:
        """Device occupancy of one SAVE under the current policy."""
        if self.policy == "write_ahead":
            return self.costs.t_save * WAL_APPEND_FRACTION
        return self.costs.t_save

    @property
    def fetch_cost(self) -> float:
        """Device occupancy of one FETCH under the current policy."""
        if self.policy == "write_ahead":
            return self.costs.t_fetch * WAL_SCAN_FACTOR
        return self.costs.t_fetch

    def _expire_open_batch(self) -> None:
        if self._open_batch is not None and self.now >= self._open_batch.starts_at:
            self._open_batch = None  # the device started writing it

    def reserve_save(self) -> float:
        """Reserve a device slot for one SAVE; returns its commit time."""
        self.saves += 1
        self._expire_open_batch()
        if self.policy == "batched" and self._open_batch is not None:
            # Group commit: ride the already-scheduled write for free.
            batch = self._open_batch
            batch.members += 1
            self.batched_saves += 1
            self.max_save_wait = max(self.max_save_wait, batch.starts_at - self.now)
            self.trace("save_batched", commits_at=batch.commits_at)
            return batch.commits_at
        starts_at = max(self.now, self._busy_until)
        cost = self.save_cost
        if self.load_factor:
            # Load-dependent duration: the wait ahead of this write is
            # queue depth in time units; the write slows proportionally.
            cost += self.load_factor * (starts_at - self.now)
        commits_at = starts_at + cost
        self._busy_until = commits_at
        self.device_writes += 1
        self.busy_time += cost
        self.max_save_wait = max(self.max_save_wait, starts_at - self.now)
        if self.policy == "batched" and starts_at > self.now:
            # The write waits for the device: it is joinable until it starts.
            self._open_batch = _OpenBatch(starts_at=starts_at, commits_at=commits_at)
            self.batches += 1
        self.trace("save_reserved", starts_at=starts_at, commits_at=commits_at)
        return commits_at

    def reserve_fetch(self) -> float:
        """Reserve a device slot for one FETCH; returns the caller's delay.

        This is where the post-crash FETCH storm is modeled: N SAs waking
        at one instant reserve N consecutive slots, so the i-th caller's
        delay is ``i * fetch_cost`` of queueing plus its own read.
        """
        self.fetches += 1
        self._expire_open_batch()
        starts_at = max(self.now, self._busy_until)
        done_at = starts_at + self.fetch_cost
        self._busy_until = done_at
        self.busy_time += self.fetch_cost
        self.max_fetch_wait = max(self.max_fetch_wait, starts_at - self.now)
        self.trace("fetch_reserved", starts_at=starts_at, done_at=done_at)
        return done_at - self.now

    # ------------------------------------------------------------------
    # Faults
    # ------------------------------------------------------------------
    def crash(self) -> None:
        """A gateway-wide reset hits the device: the queue is lost.

        Committed checkpoints survive (they are per-client persistent
        state); everything in flight — reserved writes, the open batch —
        is gone, so the device is immediately free for the recovery
        FETCH storm.  Every client's in-flight records are aborted: live
        endpoints already aborted theirs through the reset path (a
        second abort is a no-op), and this catches writes queued by SAs
        churned out before the crash, which would otherwise commit after
        the queue died.
        """
        self.crashes += 1
        self._busy_until = self.now
        self._open_batch = None
        for client in self._clients:
            client.crash()
        self.trace("device_crash")


class SharedStoreClient(PersistentStore):
    """One SA's checkpoint slot on a :class:`SharedStore`.

    Value semantics (committed checkpoint, in-flight records, crash
    aborting them) are inherited unchanged from
    :class:`~repro.core.persistent.PersistentStore`; only *timing* is
    delegated to the shared device, so a save commits when its reserved
    device slot completes and a fetch charges the storm-queueing delay.
    """

    def __init__(
        self,
        shared: SharedStore,
        name: str,
        initial_value: int = 0,
    ) -> None:
        super().__init__(
            shared.engine,
            name,
            t_save=shared.costs.t_save,
            t_fetch=shared.costs.t_fetch,
            initial_value=initial_value,
        )
        self.shared = shared
        self._last_fetch_delay = shared.costs.t_fetch

    def _save_commit_time(self) -> float:
        """A SAVE commits when its reserved device slot completes."""
        return self.shared.reserve_save()

    def fetch(self) -> int:
        """FETCH through the device queue; the delay is charged via
        :meth:`fetch_delay` (callers always read value + delay together,
        the :class:`~repro.core.sender.SaveFetchSender` wake pattern)."""
        self._last_fetch_delay = self.shared.reserve_fetch()
        return super().fetch()

    def fetch_delay(self) -> float:
        """Queueing delay reserved by the most recent :meth:`fetch`."""
        return self._last_fetch_delay
