"""Gateway-level scoring: N per-SA reports flattened into one record.

:class:`GatewayReport` aggregates the per-SA
:class:`~repro.core.convergence.ConvergenceReport` objects of one
gateway run.  :meth:`GatewayReport.metrics` produces the JSON-safe dict
the fleet stack stores and aggregates: it carries the same top-level
keys as a single-pair record (``converged``, ``replays_accepted``,
``time_to_converge``, ``bound_violations``, ...) — summed or
concatenated across SAs — so :func:`repro.fleet.aggregate.summarize`
folds gateway sessions into a campaign summary unchanged, plus the
gateway-only story (recovery spreads, shared-store contention counters,
and the full per-SA report list for drill-down).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.core.convergence import ConvergenceReport, report_metrics


@dataclass
class SAOutcome:
    """One SA's scored run plus its lifecycle stamps."""

    index: int
    created_at: float
    torn_down_at: float | None
    report: ConvergenceReport


@dataclass
class GatewayReport:
    """The scored outcome of one gateway run.

    Attributes:
        side: which side the gateway terminated (``"sender"`` /
            ``"receiver"``).
        store_policy: the shared store's write policy.
        k: the SAVE interval the run actually used (consumers must read
            this rather than re-deriving the sizing rule — a pinned
            ``k`` diverges from it by design).
        sa_outcomes: per-SA outcomes, creation order (churned-out SAs
            included — their history happened and still scores).
        gateway_crashes: correlated crash events injected.
        recovery_spreads: per crash, last-SA-resumed minus
            first-SA-resumed — the store-contention fingerprint (0 for
            one uncontended SA; ~``(N-1) * t_fetch`` under a serialized
            FETCH storm).
        churn_events: SA create/tear-down cycles executed.
        store_stats: the shared store's device counters.
    """

    side: str
    store_policy: str
    sa_outcomes: list[SAOutcome]
    k: int = 0
    gateway_crashes: int = 0
    recovery_spreads: list[float] = field(default_factory=list)
    churn_events: int = 0
    store_stats: dict[str, Any] = field(default_factory=dict)

    # ------------------------------------------------------------------
    # Aggregates
    # ------------------------------------------------------------------
    @property
    def n_sas(self) -> int:
        return len(self.sa_outcomes)

    @property
    def converged(self) -> bool:
        """Whether every SA converged (the gateway-level verdict)."""
        return all(outcome.report.converged for outcome in self.sa_outcomes)

    @property
    def replays_accepted(self) -> int:
        return sum(o.report.replays_accepted for o in self.sa_outcomes)

    @property
    def fresh_discarded(self) -> int:
        return sum(o.report.fresh_discarded for o in self.sa_outcomes)

    @property
    def bound_violations(self) -> list[str]:
        """Every SA's violations, prefixed with the SA index."""
        return [
            f"sa{outcome.index}: {violation}"
            for outcome in self.sa_outcomes
            for violation in outcome.report.bound_violations
        ]

    def metrics(self) -> dict[str, Any]:
        """The fleet-compatible flattened record (see module docstring)."""
        reports = [outcome.report for outcome in self.sa_outcomes]
        return {
            "converged": self.converged,
            "sender_resets": sum(r.sender_resets for r in reports),
            "receiver_resets": sum(r.receiver_resets for r in reports),
            "replays_accepted": self.replays_accepted,
            "fresh_discarded": self.fresh_discarded,
            "lost_seqnums_per_reset": [
                lost for r in reports for lost in r.lost_seqnums_per_reset
            ],
            "gaps_sender": [gap for r in reports for gap in r.gaps_sender],
            "gaps_receiver": [gap for r in reports for gap in r.gaps_receiver],
            "time_to_converge": [t for r in reports for t in r.time_to_converge],
            "bound_violations": self.bound_violations,
            "fresh_sent": sum(r.audit.fresh_sent for r in reports),
            "delivered_uids": sum(r.audit.delivered_uids for r in reports),
            "never_arrived": sum(r.audit.never_arrived for r in reports),
            "n_sas": self.n_sas,
            "side": self.side,
            "store_policy": self.store_policy,
            "k": self.k,
            "gateway_crashes": self.gateway_crashes,
            "recovery_spreads": list(self.recovery_spreads),
            "churn_events": self.churn_events,
            "store": dict(self.store_stats),
            "sa_reports": [report_metrics(r) for r in reports],
        }

    def summary(self) -> str:
        """Human-readable multi-line gateway summary."""
        converged = sum(1 for o in self.sa_outcomes if o.report.converged)
        lines = [
            f"gateway: {self.n_sas} SAs ({self.side} side), "
            f"store policy {self.store_policy}",
            f"crashes: {self.gateway_crashes}  churn cycles: {self.churn_events}",
            f"converged: {converged}/{self.n_sas}",
            f"replays accepted: {self.replays_accepted}  "
            f"fresh discarded: {self.fresh_discarded}",
        ]
        if self.recovery_spreads:
            spreads = "  ".join(
                f"{spread * 1e6:.1f}us" for spread in self.recovery_spreads
            )
            lines.append(f"recovery spread per crash: {spreads}")
        if self.store_stats:
            stats = self.store_stats
            lines.append(
                f"store: {stats.get('saves', 0)} saves "
                f"({stats.get('batched_saves', 0)} batched), "
                f"{stats.get('fetches', 0)} fetches, "
                f"busy {stats.get('busy_time', 0.0) * 1e3:.3f}ms, "
                f"max fetch wait {stats.get('max_fetch_wait', 0.0) * 1e6:.1f}us"
            )
        if self.bound_violations:
            lines.append(f"VIOLATIONS: {self.bound_violations}")
        return "\n".join(lines)
