"""The gateway node: N concurrent SAs multiplexed in one engine.

The paper analyzes one sender-receiver pair per reset; its deployment
unit is a security gateway terminating many SAs, where one crash is one
reset event hitting *every* SA at the same instant and recovery contends
for one persistent store.  :class:`Gateway` builds that topology out of
the existing pieces: per-SA pairs come from
:func:`repro.core.protocol.build_protocol` (the gateway side's
persistent store replaced by a :class:`~repro.gateway.store.SharedStore`
client), all wired onto a single :class:`~repro.sim.engine.Engine` so
the whole gateway is one deterministic event schedule — and one engine
run, which is what makes a 50-SA gateway dramatically cheaper than 50
separate single-SA simulations (``benchmarks/bench_m5_gateway.py``
measures the multiplexing win).

Fault stories come from :mod:`repro.gateway.faults`
(:class:`GatewayCrash`, :class:`RollingRestart`, :class:`SAChurn`);
scoring flattens per-SA
:class:`~repro.core.convergence.ConvergenceReport` objects into one
fleet-compatible :class:`~repro.gateway.report.GatewayReport`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from typing import TYPE_CHECKING, Mapping

from repro.core.convergence import score_run
from repro.core.protocol import ProtocolHarness, build_protocol
from repro.core.receiver import BaseReceiver
from repro.core.sender import BaseSender
from repro.gateway.report import GatewayReport, SAOutcome
from repro.gateway.store import SharedStore, safe_save_interval
from repro.ipsec.costs import CostModel, PAPER_COSTS
from repro.netpath.faults import PathEnv, PathFault
from repro.obs.hub import MetricsHub, NULL_HUB, default_hub
from repro.obs.probe import EventCoreProbe, SharedStoreProbe
from repro.obs.sampler import DEFAULT_SAMPLE_INTERVAL, Sampler
from repro.sim.engine import Engine
from repro.sim.trace import NULL_TRACE, TraceRecorder
from repro.util.rng import derive_seed
from repro.util.validation import check_positive

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.netpath.profile import PathProfile

#: Sides of an SA a gateway can terminate.
GATEWAY_SIDES = ("sender", "receiver")


@dataclass
class SAUnit:
    """One SA terminated by the gateway: the pair plus its lifecycle."""

    index: int
    harness: ProtocolHarness
    side: str
    created_at: float
    torn_down_at: float | None = None
    traffic: dict[str, object] = field(default_factory=dict)

    @property
    def live(self) -> bool:
        return self.torn_down_at is None

    @property
    def gateway_end(self) -> BaseSender | BaseReceiver:
        """The endpoint living on the gateway host (shares its faults)."""
        if self.side == "sender":
            return self.harness.sender
        return self.harness.receiver

    @property
    def remote_end(self) -> BaseSender | BaseReceiver:
        """The peer endpoint on the far host (private store, own faults)."""
        if self.side == "sender":
            return self.harness.receiver
        return self.harness.sender


class Gateway:
    """A gateway terminating ``n_sas`` SAs inside one engine run.

    Args:
        n_sas: SAs established at construction (:meth:`add_sa` and
            :class:`~repro.gateway.faults.SAChurn` can add more mid-run).
        side: ``"sender"`` — the gateway originates each SA's traffic
            (outbound tunnels) — or ``"receiver"`` — it terminates
            traffic sent by remote peers.  Either way the gateway-side
            endpoints share the store and the correlated faults.
        protected: SAVE/FETCH endpoints (True, the default) or the
            Section 2 unprotected baseline.
        k / w: SAVE interval and window size, applied to both ends.
            ``k=None`` (the default) applies the gateway sizing rule
            (:func:`~repro.gateway.store.safe_save_interval`) — the
            paper's 25 scaled to the shared device; pinning ``k=25`` at
            ``n_sas > 1`` under the serial policy under-provisions the
            store and (correctly) breaks the 2K guarantees.
        costs: operation cost model (also sizes the shared store).
        store_policy: one of
            :data:`repro.gateway.store.STORE_POLICIES`.
        seed: master seed; per-SA seeds derive via the spawn-key scheme
            so every SA's channel randomness is independent.
        leap_factor / skip_wake_save: ablation switches, forwarded
            per SA.
        engine: optional existing engine (default: a fresh one).
        trace: trace recorder for a fresh engine (default
            :data:`~repro.sim.trace.NULL_TRACE` — gateways are
            batch-scale; pass a recording ``TraceRecorder()`` to debug).
        path: optional :class:`~repro.netpath.PathProfile` every SA's
            link follows (each SA binds its own timeline under its own
            derived seed).
        sa_paths: per-SA profile overrides, SA index -> profile — how a
            path impairment hits *one* SA of N while the rest stay on
            ``path`` (or the fixed channel).  Applies to SAs created by
            churn too (indices keep counting up).
        store_load_factor: forwarded to
            :class:`~repro.gateway.store.SharedStore` — load-dependent
            SAVE duration (0.0 = the paper's fixed upper bound).
        hub: metrics hub for per-SA health signals (default: the
            ambient :func:`repro.obs.default_hub`).  When enabled, each
            SA publishes under a ``saN`` sub-hub label, the shared
            device under ``store/``, and one gateway-wide
            :class:`~repro.obs.Sampler` snapshots everything; when
            disabled (the default ambient :data:`~repro.obs.NULL_HUB`)
            nothing attaches and runs are byte-identical to pre-obs.
        sample_interval: sampling period when the hub is enabled.
    """

    def __init__(
        self,
        n_sas: int,
        side: str = "sender",
        protected: bool = True,
        k: int | None = None,
        w: int = 64,
        costs: CostModel = PAPER_COSTS,
        store_policy: str = "serial",
        seed: int = 0,
        leap_factor: int = 2,
        skip_wake_save: bool = False,
        engine: Engine | None = None,
        trace: TraceRecorder | None = None,
        path: "PathProfile | None" = None,
        sa_paths: "Mapping[int, PathProfile] | None" = None,
        store_load_factor: float = 0.0,
        hub: MetricsHub | None = None,
        sample_interval: float = DEFAULT_SAMPLE_INTERVAL,
    ) -> None:
        check_positive("n_sas", n_sas)
        if side not in GATEWAY_SIDES:
            raise ValueError(
                f"unknown gateway side {side!r}; expected one of {GATEWAY_SIDES}"
            )
        self.side = side
        self.protected = protected
        if k is None:
            k = safe_save_interval(n_sas, costs, store_policy)
        self.k = int(k)
        self.w = int(w)
        self.costs = costs
        self.seed = seed
        self.leap_factor = leap_factor
        self.skip_wake_save = skip_wake_save
        self.engine = engine if engine is not None else Engine(
            trace=trace if trace is not None else NULL_TRACE
        )
        self.path = path
        self.sa_paths = dict(sa_paths) if sa_paths is not None else {}
        self.store = SharedStore(
            self.engine, "store:gateway", costs=costs, policy=store_policy,
            load_factor=store_load_factor,
        )
        if hub is None:
            hub = default_hub()
        self.hub: MetricsHub | None = hub if hub.enabled else None
        self.sampler: Sampler | None = None
        if self.hub is not None:
            self.sampler = Sampler(self.engine, self.hub, interval=sample_interval)
            self.sampler.register(SharedStoreProbe(self.hub, self.store))
            self.sampler.register(EventCoreProbe(self.hub, self.engine))
            self.sampler.start()
        self.sas: list[SAUnit] = []
        self.crash_times: list[float] = []
        self.restart_waves: list[list[float]] = []
        self.churn_events = 0
        self._next_index = 0
        self._traffic_defaults: dict[str, object] = {}
        for _ in range(n_sas):
            self.add_sa()

    # ------------------------------------------------------------------
    # SA lifecycle
    # ------------------------------------------------------------------
    def add_sa(self) -> SAUnit:
        """Establish one more SA on the shared engine (usable mid-run)."""
        index = self._next_index
        self._next_index += 1
        store_client = None
        if self.protected:
            # Same initial checkpoint the private stores use: the value
            # written when the SA was established (paper: 1 at p, 0 at q).
            initial = 1 if self.side == "sender" else 0
            store_client = self.store.client(
                f"disk:{self.side[0]}{index}", initial_value=initial
            )
        harness = build_protocol(
            engine=self.engine,
            protected=self.protected,
            k_p=self.k,
            k_q=self.k,
            w=self.w,
            costs=self.costs,
            seed=derive_seed(self.seed, "sa", index),
            leap_factor=self.leap_factor,
            skip_wake_save=self.skip_wake_save,
            sender_name=f"p{index}",
            receiver_name=f"q{index}",
            sender_store=store_client if self.side == "sender" else None,
            receiver_store=store_client if self.side == "receiver" else None,
            path=self.sa_paths.get(index, self.path),
            # Explicit (never ambient): the gateway decided observability
            # at construction; its SAs publish under per-SA labels.
            hub=self.hub.sub(f"sa{index}") if self.hub is not None else NULL_HUB,
        )
        unit = SAUnit(
            index=index,
            harness=harness,
            side=self.side,
            created_at=self.engine.now,
        )
        if self.sampler is not None and harness.probe is not None:
            self.sampler.register(harness.probe)
        self.sas.append(unit)
        return unit

    def tear_down_sa(self, unit: SAUnit) -> None:
        """Administratively retire one SA: traffic stops, state is kept
        (the unit still scores — its history happened)."""
        if not unit.live:
            return
        unit.harness.sender.stop_traffic()
        unit.torn_down_at = self.engine.now

    def live_sas(self) -> list[SAUnit]:
        """The SAs currently established, in creation order."""
        return [unit for unit in self.sas if unit.live]

    def churn(self, messages: int) -> SAUnit:
        """One churn cycle: retire the oldest live SA, establish a new one."""
        self.churn_events += 1
        live = self.live_sas()
        if live:
            self.tear_down_sa(live[0])
        created = self.add_sa()
        interval = self._traffic_defaults.get("interval")
        created.harness.sender.start_traffic(
            count=messages, interval=interval  # type: ignore[arg-type]
        )
        created.traffic = {"count": messages, "interval": interval}
        return created

    # ------------------------------------------------------------------
    # Traffic
    # ------------------------------------------------------------------
    def start_traffic(
        self, count: int | None = None, interval: float | None = None
    ) -> None:
        """Start every live SA's sender stream (also the churn default)."""
        self._traffic_defaults = {"count": count, "interval": interval}
        for unit in self.live_sas():
            unit.harness.sender.start_traffic(count=count, interval=interval)
            unit.traffic = {"count": count, "interval": interval}

    def pulse_all(self, n: int = 1) -> int:
        """One synchronized burst: every live SA sends ``n`` messages now.

        The correlated-traffic counterpart of :meth:`crash` — all
        gateway SAs transmit at the same instant (a keepalive sweep, a
        poll cycle), which is exactly the N-SA fan-out the batched link
        offer path (:meth:`~repro.core.sender.BaseSender.send_batch` →
        ``Link.offer_many``) amortizes.  Returns the total sent.
        """
        total = 0
        for unit in self.live_sas():
            total += unit.harness.sender.send_batch(n)
        return total

    def run(self, until: float | None = None) -> int:
        """Run the shared engine (all SAs advance together)."""
        return self.engine.run(until=until)

    # ------------------------------------------------------------------
    # Faults
    # ------------------------------------------------------------------
    def crash(self, down_for: float | None = 0.0) -> None:
        """The correlated reset: every live SA's gateway-side endpoint
        loses its volatile state at this instant, then the store queue
        dies.  (Endpoint resets run first so each reset record observes
        its own save-in-flight state, exactly as a private-store reset
        does.)"""
        self.crash_times.append(self.engine.now)
        for unit in self.live_sas():
            unit.gateway_end.reset(down_for=down_for)
        self.store.crash()

    def path_env(self, sa_index: int) -> PathEnv:
        """The :class:`~repro.netpath.PathEnv` of one SA — what a path
        fault may touch.  Unlike the correlated gateway faults, a path
        fault is per-SA: an outage or NAT rebinding hits one tunnel of N
        while the siblings keep converging undisturbed."""
        for unit in self.sas:
            if unit.index == sa_index:
                return PathEnv(
                    engine=self.engine,
                    link=unit.harness.link,
                    sender=unit.harness.sender,
                )
        raise KeyError(f"gateway has no SA with index {sa_index}")

    def apply_path_fault(self, sa_index: int, fault: PathFault) -> None:
        """Arm one path fault against one SA's path."""
        fault.apply(self.path_env(sa_index))

    # ------------------------------------------------------------------
    # Scoring
    # ------------------------------------------------------------------
    def score(self, check_bounds: bool = True) -> GatewayReport:
        """Score every SA (churned ones included) into one report."""
        outcomes = [
            SAOutcome(
                index=unit.index,
                created_at=unit.created_at,
                torn_down_at=unit.torn_down_at,
                report=score_run(
                    unit.harness.auditor,
                    unit.harness.sender,
                    unit.harness.receiver,
                    check_bounds=check_bounds,
                ),
            )
            for unit in self.sas
        ]
        events = [[t] for t in self.crash_times] + self.restart_waves
        spreads = [
            spread
            for reset_times in events
            if (spread := self._recovery_spread(reset_times)) is not None
        ]
        return GatewayReport(
            side=self.side,
            store_policy=self.store.policy,
            sa_outcomes=outcomes,
            k=self.k,
            gateway_crashes=len(self.crash_times),
            recovery_spreads=spreads,
            churn_events=self.churn_events,
            store_stats={
                "saves": self.store.saves,
                "fetches": self.store.fetches,
                "device_writes": self.store.device_writes,
                "batches": self.store.batches,
                "batched_saves": self.store.batched_saves,
                "busy_time": self.store.busy_time,
                "max_save_wait": self.store.max_save_wait,
                "max_fetch_wait": self.store.max_fetch_wait,
            },
        )

    def _recovery_spread(self, reset_times: list[float]) -> float | None:
        """Spread of recovery completions for one correlated fault event.

        ``reset_times`` is the event's per-SA reset instants — a single
        time repeated by a crash, the staggered sequence of a restart
        wave.  The store-contention fingerprint: with one uncontended SA
        this is 0; under a serialized post-crash FETCH storm the last SA
        resumes roughly ``(N - 1) * t_fetch`` after the first; a restart
        wave's spread additionally carries its stagger.
        """
        wanted = set(reset_times)
        resumes = []
        for unit in self.sas:
            for record in unit.gateway_end.reset_records:
                if record.reset_time in wanted and record.resume_time is not None:
                    resumes.append(record.resume_time)
        if len(resumes) < 1:
            return None
        return max(resumes) - min(resumes)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Gateway side={self.side!r} sas={len(self.sas)} "
            f"policy={self.store.policy!r} t={self.engine.now:.6f}>"
        )
