"""Correlated fault injection for gateways.

The single-pair injectors in :mod:`repro.core.reset` strike one
endpoint.  A gateway fault is *correlated*: one physical event touches
every SA the gateway terminates.  Three kinds, each a frozen dataclass
with an :meth:`apply` hook (arming it against a
:class:`~repro.gateway.core.Gateway`) and a dict round-trip so fleet
campaign specs can carry faults as JSON (see the ``__gatewayfault__``
tag in :mod:`repro.fleet.spec`):

* :class:`GatewayCrash` — the paper's reset, scaled up: at one instant
  every SA loses its volatile state and the shared store's queue is
  lost.  Recovery is the interesting part — N simultaneous FETCHes
  contend for one device.
* :class:`RollingRestart` — an operator restart wave: SA ``i`` resets at
  ``t + i * stagger``.  The store stays up, so recoveries interleave
  with live traffic instead of storming.
* :class:`SAChurn` — tunnel churn: every ``interval`` seconds the oldest
  live SA is torn down and a fresh one is established mid-run.

Triggers are either an absolute time (``at``) or a traffic count
(``after_sends`` — the instant the gateway side of SA 0 completes that
many sends/receives), mirroring :func:`repro.core.reset.reset_at_count`
so a one-SA gateway crash lands at exactly the same instant as the
single-pair ``sender_reset`` scenario's reset.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import TYPE_CHECKING, Any, Callable, Mapping

from repro.core.reset import call_at_count

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.gateway.core import Gateway


class GatewayFault:
    """Base for the correlated fault kinds (dict round-trip + arming)."""

    kind: str = ""

    def apply(self, gateway: "Gateway") -> None:
        raise NotImplementedError

    def to_dict(self) -> dict[str, Any]:
        return {"kind": self.kind, **asdict(self)}  # type: ignore[call-overload]

    def _resolve_trigger(
        self, gateway: "Gateway", fire: Callable[[], None],
        at: float | None, after_sends: int | None,
    ) -> None:
        if (at is None) == (after_sends is None):
            raise ValueError(
                f"{type(self).__name__} needs exactly one trigger: "
                f"'at' (absolute time) or 'after_sends' (SA 0 traffic count)"
            )
        if at is not None:
            gateway.engine.call_at(at, fire)
        else:
            if not gateway.sas:
                raise ValueError("cannot arm a count trigger on an empty gateway")
            call_at_count(gateway.sas[0].gateway_end, after_sends, fire)


@dataclass(frozen=True)
class GatewayCrash(GatewayFault):
    """One reset event hitting every SA (and the store queue) at once.

    Attributes:
        after_sends / at: the trigger (exactly one; see module docstring).
        down_time: outage length; ``None`` means the scenario default
            ``2 * t_save`` resolved at apply time.
    """

    after_sends: int | None = None
    at: float | None = None
    down_time: float | None = None

    kind = "crash"

    def apply(self, gateway: "Gateway") -> None:
        down = (
            self.down_time
            if self.down_time is not None
            else 2 * gateway.costs.t_save
        )
        self._resolve_trigger(
            gateway, lambda: gateway.crash(down_for=down),
            self.at, self.after_sends,
        )


@dataclass(frozen=True)
class RollingRestart(GatewayFault):
    """Restart wave: SA ``i`` resets ``i * stagger`` after the trigger.

    The shared store stays up (only hosts restart), so each SA's
    recovery FETCH contends with the *traffic-driven* saves of the SAs
    still live — a different contention shape from the crash storm.
    """

    after_sends: int | None = None
    at: float | None = None
    stagger: float = 0.0005
    down_time: float | None = None

    kind = "rolling_restart"

    def __post_init__(self) -> None:
        if self.stagger < 0:
            raise ValueError(f"stagger must be >= 0, got {self.stagger}")

    def apply(self, gateway: "Gateway") -> None:
        down = (
            self.down_time
            if self.down_time is not None
            else 2 * gateway.costs.t_save
        )

        def begin_wave() -> None:
            wave_times = []
            for position, unit in enumerate(gateway.live_sas()):
                at = gateway.engine.now + position * self.stagger
                wave_times.append(at)
                gateway.engine.call_at(at, unit.gateway_end.reset, down)
            gateway.restart_waves.append(wave_times)

        self._resolve_trigger(gateway, begin_wave, self.at, self.after_sends)


@dataclass(frozen=True)
class SAChurn(GatewayFault):
    """Create/tear-down churn: each cycle retires the oldest live SA and
    establishes a fresh one that immediately starts sending.

    Attributes:
        start: absolute time of the first cycle.
        interval: seconds between cycles.
        cycles: how many tear-down/create cycles to run.
        messages: traffic attempt count for each newly created SA.
    """

    start: float = 0.001
    interval: float = 0.001
    cycles: int = 1
    messages: int = 200

    kind = "sa_churn"

    def __post_init__(self) -> None:
        if self.interval <= 0:
            raise ValueError(f"interval must be > 0, got {self.interval}")
        if self.cycles < 1:
            raise ValueError(f"cycles must be >= 1, got {self.cycles}")

    def apply(self, gateway: "Gateway") -> None:
        for cycle in range(self.cycles):
            gateway.engine.call_at(
                self.start + cycle * self.interval,
                gateway.churn,
                self.messages,
            )


#: kind tag -> fault class (the JSON codec's dispatch table).
FAULT_KINDS: dict[str, type[GatewayFault]] = {
    cls.kind: cls for cls in (GatewayCrash, RollingRestart, SAChurn)
}


def fault_from_dict(data: Mapping[str, Any]) -> GatewayFault:
    """Rebuild a fault from its :meth:`GatewayFault.to_dict` form."""
    payload = dict(data)
    kind = payload.pop("kind", None)
    if kind not in FAULT_KINDS:
        known = ", ".join(sorted(FAULT_KINDS))
        raise ValueError(f"unknown gateway fault kind {kind!r}; known: {known}")
    return FAULT_KINDS[kind](**payload)
