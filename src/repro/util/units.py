"""Time units for the discrete-event simulation.

Simulated time is a ``float`` number of **seconds**.  These constants and
constructors exist so that scenario code reads naturally::

    engine.call_at(milliseconds(5), wake_up)
    T_SAVE = microseconds(100)   # the paper's write-to-file cost

The paper's measured constants (Pentium III 730 MHz, Linux 2.4.18) are
``T_save = 100 us`` and ``T_send = 4 us``; see
:mod:`repro.ipsec.costs`.
"""

from __future__ import annotations

SECOND: float = 1.0
MILLISECOND: float = 1e-3
MICROSECOND: float = 1e-6


def seconds(value: float) -> float:
    """Return ``value`` seconds as simulation time."""
    return float(value) * SECOND


def milliseconds(value: float) -> float:
    """Return ``value`` milliseconds as simulation time."""
    return float(value) * MILLISECOND


def microseconds(value: float) -> float:
    """Return ``value`` microseconds as simulation time."""
    return float(value) * MICROSECOND
