"""Seeded random-number-generator helpers.

The simulation never touches the global :mod:`random` state.  Components
that need randomness accept either a seed (``int``), an existing
:class:`random.Random`, or ``None`` (meaning "derive a default, fixed
seed"), and normalise it through :func:`make_rng`.

:func:`spawn_rng` derives an independent child generator from a parent in a
deterministic way, so that adding a new random component to a scenario does
not perturb the random streams of existing components.
"""

from __future__ import annotations

import random

_DEFAULT_SEED = 0xC0FFEE


def make_rng(seed_or_rng: int | random.Random | None = None) -> random.Random:
    """Normalise ``seed_or_rng`` into a :class:`random.Random` instance.

    Args:
        seed_or_rng: an ``int`` seed, an existing generator (returned
            as-is), or ``None`` for a fixed library-default seed.

    Returns:
        A :class:`random.Random` ready for use.
    """
    if isinstance(seed_or_rng, random.Random):
        return seed_or_rng
    if seed_or_rng is None:
        return random.Random(_DEFAULT_SEED)
    if isinstance(seed_or_rng, int):
        return random.Random(seed_or_rng)
    raise TypeError(
        f"expected int seed, random.Random or None, got {type(seed_or_rng).__name__}"
    )


def spawn_rng(parent: random.Random, label: str) -> random.Random:
    """Derive an independent child generator from ``parent``.

    The child's seed is a deterministic function of the parent's current
    state and a ``label``, so distinct labels give independent streams and
    the same (parent state, label) pair always gives the same stream.

    Args:
        parent: generator to derive from (its state advances by one draw).
        label: name of the component the child is for.

    Returns:
        A new :class:`random.Random` seeded from ``parent`` and ``label``.
    """
    base = parent.getrandbits(64)
    mixed = hash((base, label)) & 0xFFFF_FFFF_FFFF_FFFF
    return random.Random(mixed)
