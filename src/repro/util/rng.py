"""Seeded random-number-generator helpers.

The simulation never touches the global :mod:`random` state.  Components
that need randomness accept either a seed (``int``), an existing
:class:`random.Random`, or ``None`` (meaning "derive a default, fixed
seed"), and normalise it through :func:`make_rng`.

:func:`spawn_rng` derives an independent child generator from a parent in a
deterministic way, so that adding a new random component to a scenario does
not perturb the random streams of existing components.

:func:`derive_seed` is the pure spawn-key derivation underneath: it folds a
root seed and a path of labels through SHA-256, so the same
``(root, *path)`` always yields the same 64-bit seed — in any process, under
any ``PYTHONHASHSEED``.  The fleet runner leans on this to give every task
in a campaign an independent, reproducible seed regardless of execution
order or worker count.
"""

from __future__ import annotations

import hashlib
import random

_DEFAULT_SEED = 0xC0FFEE


def derive_seed(root: int, *path: int | str) -> int:
    """Derive a 64-bit seed from ``root`` and a spawn-key ``path``.

    The derivation is a pure function of its arguments (SHA-256 over a
    canonical encoding), so it is stable across processes and interpreter
    invocations — unlike :func:`hash`, which is salted per process for
    strings.  Distinct paths give independent seeds; the same path always
    gives the same seed.

    Args:
        root: the campaign / scenario master seed.
        path: any mix of ``int`` and ``str`` labels identifying the
            component (e.g. ``derive_seed(7, "grid", 0, "task", 42)``).

    Returns:
        An unsigned 64-bit seed suitable for :func:`make_rng`.
    """
    hasher = hashlib.sha256()
    hasher.update(int(root).to_bytes(16, "little", signed=True))
    for part in path:
        if isinstance(part, bool) or not isinstance(part, (int, str)):
            raise TypeError(
                f"spawn-key path parts must be int or str, got {type(part).__name__}"
            )
        if isinstance(part, int):
            hasher.update(b"i" + part.to_bytes(16, "little", signed=True))
        else:
            encoded = part.encode("utf-8")
            hasher.update(b"s" + len(encoded).to_bytes(4, "little") + encoded)
    return int.from_bytes(hasher.digest()[:8], "little")


def make_rng(seed_or_rng: int | random.Random | None = None) -> random.Random:
    """Normalise ``seed_or_rng`` into a :class:`random.Random` instance.

    Args:
        seed_or_rng: an ``int`` seed, an existing generator (returned
            as-is), or ``None`` for a fixed library-default seed.

    Returns:
        A :class:`random.Random` ready for use.
    """
    if isinstance(seed_or_rng, random.Random):
        return seed_or_rng
    if seed_or_rng is None:
        return random.Random(_DEFAULT_SEED)
    if isinstance(seed_or_rng, int):
        return random.Random(seed_or_rng)
    raise TypeError(
        f"expected int seed, random.Random or None, got {type(seed_or_rng).__name__}"
    )


def spawn_rng(parent: random.Random, label: str) -> random.Random:
    """Derive an independent child generator from ``parent``.

    The child's seed is a deterministic function of the parent's current
    state and a ``label``, so distinct labels give independent streams and
    the same (parent state, label) pair always gives the same stream.

    Args:
        parent: generator to derive from (its state advances by one draw).
        label: name of the component the child is for.

    Returns:
        A new :class:`random.Random` seeded from ``parent`` and ``label``.
    """
    base = parent.getrandbits(64)
    return random.Random(derive_seed(base, label))
