"""Small shared utilities: seeded randomness, unit helpers, validation.

These helpers are deliberately tiny and dependency-free; every stochastic
component in the library takes an explicit :class:`random.Random` (or a
seed) so that simulations are reproducible bit-for-bit.
"""

from repro.util.rng import derive_seed, make_rng, spawn_rng
from repro.util.units import (
    MICROSECOND,
    MILLISECOND,
    SECOND,
    microseconds,
    milliseconds,
    seconds,
)
from repro.util.validation import (
    check_non_negative,
    check_positive,
    check_probability,
    check_type,
)

__all__ = [
    "MICROSECOND",
    "MILLISECOND",
    "SECOND",
    "check_non_negative",
    "check_positive",
    "check_probability",
    "check_type",
    "derive_seed",
    "make_rng",
    "microseconds",
    "milliseconds",
    "seconds",
    "spawn_rng",
]
