"""Tolerant JSONL reading: salvage complete objects from torn lines.

Every durable file in the fleet/obs stack is append-only JSONL, and
every one of them can be torn the same way: a ``kill -9`` lands between
``write`` and the newline, or two writers glue fragments onto one
physical line.  The recovery rule is shared too — walk the damaged line
with ``raw_decode``, keep every embedded well-formed object, and drop
only the torn fragment — so a crash loses at most the line it tore,
never the file.

:func:`salvage_objects` is that walk, factored out of the result
store's healing path so the metrics reader and the progress ledger
replay the identical salvage semantics (and are pinned by the same
tests).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Iterator

__all__ = ["iter_jsonl_objects", "salvage_objects"]

_DECODER = json.JSONDecoder()


def salvage_objects(line: str) -> tuple[list[Any], bool]:
    """Recover complete JSON values from a (possibly torn) line.

    Walks the line with ``raw_decode``, keeping every well-formed JSON
    object it finds and skipping unparseable fragments.

    Returns:
        ``(values, torn)`` — the salvageable values in order, and True
        if any part of the line had to be skipped.
    """
    values: list[Any] = []
    torn = False
    pos = 0
    while True:
        start = line.find("{", pos)
        if start < 0:
            if line[pos:].strip():
                torn = True
            break
        if line[pos:start].strip():
            torn = True
        try:
            value, consumed = _DECODER.raw_decode(line, start)
        except json.JSONDecodeError:
            torn = True
            pos = start + 1
            continue
        values.append(value)
        pos = consumed
    return values, torn


def iter_jsonl_objects(
    path: str | Path, errors: list[str] | None = None
) -> Iterator[Any]:
    """Yield every well-formed JSON value in a JSONL file.

    Torn lines are salvaged with :func:`salvage_objects`: complete
    objects embedded in a damaged line are kept, the torn fragment is
    skipped, and the valid lines *after* it still parse — a torn tail
    loses one line, not the file.  A missing file yields nothing.

    Args:
        path: the JSONL file.
        errors: optional sink; one ``"<path>:<line>: ..."`` string is
            appended per torn line encountered.
    """
    path = Path(path)
    if not path.exists():
        return
    with path.open("r", encoding="utf-8") as handle:
        for number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                yield json.loads(line)
                continue
            except json.JSONDecodeError:
                pass
            salvaged, torn = salvage_objects(line)
            if torn and errors is not None:
                errors.append(
                    f"{path}:{number}: torn line "
                    f"({len(salvaged)} object(s) salvaged)"
                )
            yield from salvaged
