"""Argument-validation helpers used across the library.

All raise :class:`ValueError`/:class:`TypeError` with the offending
parameter named, so misconfigured scenarios fail fast and loudly instead of
silently producing wrong simulation results.
"""

from __future__ import annotations

from typing import Any


def check_positive(name: str, value: float) -> float:
    """Require ``value > 0``; return it."""
    if not value > 0:
        raise ValueError(f"{name} must be > 0, got {value!r}")
    return value


def check_non_negative(name: str, value: float) -> float:
    """Require ``value >= 0``; return it."""
    if not value >= 0:
        raise ValueError(f"{name} must be >= 0, got {value!r}")
    return value


def check_probability(name: str, value: float) -> float:
    """Require ``0 <= value <= 1``; return it."""
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"{name} must be in [0, 1], got {value!r}")
    return value


def check_type(name: str, value: Any, expected: type | tuple[type, ...]) -> Any:
    """Require ``isinstance(value, expected)``; return ``value``."""
    if not isinstance(value, expected):
        expected_name = (
            expected.__name__
            if isinstance(expected, type)
            else " | ".join(t.__name__ for t in expected)
        )
        raise TypeError(
            f"{name} must be {expected_name}, got {type(value).__name__}"
        )
    return value
