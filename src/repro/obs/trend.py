"""Cross-run trajectories: N-run history tables with EWMA control bands.

Where :mod:`repro.obs.compare` answers "did *this* run get worse than
*that* one", the trend layer answers "where has this signal been
heading" over every archived run of a kind: an EWMA center line plus an
exponentially weighted variance band, with a point flagged anomalous
when it lands more than :data:`ANOMALY_Z` standard deviations outside
the band the *previous* runs established (the point under test never
vets itself).

Signal addressing uses the archive's flat names, with an ``@`` suffix
to reach inside distributions: ``recovery_latency@p99`` is the sketch /
histogram / exact-sample 99th percentile, ``metric/time_to_converge@mean``
the sample mean.  Bare names hit counters first, then gauges.

Everything here is a pure function of the snapshot sequence — no
timestamps, no machine fields — so a history table rendered at ingest
time and one replayed later from the archive alone are byte-identical.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Sequence

from repro.obs.archive import RunSnapshot
from repro.obs.hub import LogHistogram

#: EWMA smoothing for the center line and the variance band.  0.3 tracks
#: a genuine level shift within ~3 runs without chasing a single outlier.
TREND_ALPHA = 0.3

#: A point further than this many band standard deviations from the
#: prior center line is flagged.
ANOMALY_Z = 3.0

#: Signals the history table shows by default (filtered to the ones the
#: archived snapshots actually carry).
DEFAULT_HISTORY_SIGNALS = (
    "replay_discards",
    "fresh_discarded",
    "blackholed",
    "errors",
    "converged",
    "recovery_latency@p99",
    "time_to_converge@p99",
    "metric/time_to_converge@mean",
)


def signal_value(snapshot: RunSnapshot, name: str) -> float | None:
    """Resolve a (possibly ``@``-suffixed) signal name on a snapshot."""
    base, sep, stat = name.partition("@")
    signals = snapshot.signals
    if not sep:
        if base in signals.get("counters", {}):
            return float(signals["counters"][base])
        if base in signals.get("gauges", {}):
            return float(signals["gauges"][base])
        return None
    sketches = signals.get("sketches", {})
    if base in sketches:
        from repro.fleet.aggregate import QuantileSketch

        return _dist_stat(QuantileSketch.from_dict(sketches[base]), stat)
    histograms = signals.get("histograms", {})
    if base in histograms:
        return _dist_stat(
            LogHistogram.from_dict(base, histograms[base]), stat
        )
    samples = signals.get("samples", {})
    if samples.get(base):
        return _sample_stat([float(v) for v in samples[base]], stat)
    return None


def _dist_stat(dist: Any, stat: str) -> float | None:
    if stat == "mean":
        return float(dist.mean)
    if stat == "max":
        return float(dist.maximum) if dist.count else 0.0
    if stat.startswith("p"):
        try:
            q = float(stat[1:]) / 100.0
        except ValueError:
            return None
        if 0.0 <= q <= 1.0:
            return float(dist.quantile(q))
    return None


def _sample_stat(values: list[float], stat: str) -> float | None:
    if stat == "mean":
        return sum(values) / len(values)
    if stat == "max":
        return max(values)
    if stat.startswith("p"):
        from repro.fleet.aggregate import percentile

        try:
            q = float(stat[1:])
        except ValueError:
            return None
        if 0.0 <= q <= 100.0:
            return percentile(values, q)
    return None


@dataclass
class TrendPoint:
    """One run's value for one signal, against the running control band."""

    run_id: str
    value: float
    center: float      # EWMA center line after folding this point in
    band: float        # EWMA standard deviation after this point
    anomaly: bool      # outside the band the previous points set


def compute_trend(
    snapshots: Sequence[RunSnapshot],
    name: str,
    alpha: float = TREND_ALPHA,
    z: float = ANOMALY_Z,
) -> list[TrendPoint]:
    """EWMA control-band walk over the snapshots (ingest order).

    The anomaly test compares each point against the center/variance of
    the points *before* it (at least two), so the flag means "this run
    broke the established pattern", not "the pattern includes this run".
    A degenerate zero-variance history — the common case for a
    deterministic simulation archived repeatedly — flags any departure
    beyond float-noise tolerance.
    """
    points: list[TrendPoint] = []
    center = 0.0
    variance = 0.0
    seen = 0
    for snapshot in snapshots:
        value = signal_value(snapshot, name)
        if value is None:
            continue
        if seen == 0:
            center = value
            anomaly = False
        else:
            residual = value - center
            tolerance = 1e-12 + 1e-9 * abs(center)
            threshold = max(z * math.sqrt(variance), tolerance)
            anomaly = seen >= 2 and abs(residual) > threshold
            variance = (1.0 - alpha) * (variance + alpha * residual ** 2)
            center += alpha * residual
        seen += 1
        points.append(TrendPoint(
            run_id=snapshot.short_id, value=value, center=center,
            band=math.sqrt(variance), anomaly=anomaly,
        ))
    return points


def history_signals(
    snapshots: Sequence[RunSnapshot],
    signals: Sequence[str] | None = None,
) -> list[str]:
    """The signal columns to show: the requested (or default) names
    filtered to those at least one snapshot resolves."""
    names = signals if signals is not None else DEFAULT_HISTORY_SIGNALS
    return [
        name for name in names
        if any(signal_value(s, name) is not None for s in snapshots)
    ]


def _format_cell(value: float | None, anomaly: bool) -> str:
    if value is None:
        return "-"
    if float(value).is_integer() and abs(value) < 1e15:
        text = str(int(value))
    else:
        text = f"{value:.4g}"
    return f"{text}!" if anomaly else text


def render_history_table(
    snapshots: Sequence[RunSnapshot],
    signals: Sequence[str] | None = None,
) -> str:
    """The ``obs history`` table: one row per run, one column per
    signal, ``!`` marking control-band anomalies.

    Byte-identical however it is produced — live after an ingest or
    replayed from the archive — because it reads nothing but the
    snapshots' hashed content and ids.
    """
    if not snapshots:
        return "history: no archived runs match"
    columns = history_signals(snapshots, signals)
    trends = {name: compute_trend(snapshots, name) for name in columns}
    cells: dict[tuple[str, str], str] = {}
    anomalies = 0
    for name in columns:
        for point in trends[name]:
            cells[(point.run_id, name)] = _format_cell(
                point.value, point.anomaly
            )
            anomalies += point.anomaly
    width = {
        name: max(
            len(_short_header(name)),
            max((len(cells.get((s.short_id, name), "-"))
                 for s in snapshots), default=1),
        )
        for name in columns
    }
    header = f"{'run':<14} {'name':<20} " + " ".join(
        f"{_short_header(name):>{width[name]}}" for name in columns
    )
    lines = [header, "-" * len(header)]
    for snapshot in snapshots:
        row = " ".join(
            f"{cells.get((snapshot.short_id, name), '-'):>{width[name]}}"
            for name in columns
        )
        lines.append(
            f"{snapshot.short_id:<14} {snapshot.name[:20]:<20} {row}"
        )
    lines.append(
        f"{len(snapshots)} run(s); {anomalies} anomaly point(s) "
        f"(! = beyond {ANOMALY_Z:g} sigma of the EWMA control band)"
    )
    return "\n".join(lines)


def _short_header(name: str) -> str:
    """Column headers compress the long prefixes the archive uses."""
    return name.replace("metric/", "m/")[-18:]
