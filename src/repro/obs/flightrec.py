"""Crash flight recorder: a bounded ring of recent worker events.

Each fleet worker keeps the last N things it did — task boundaries,
heartbeats, engine milestones — in a fixed-size ring.  On an unhandled
exception or a SIGTERM mid-task the ring is dumped to
``flight_<worker>.json`` (schema :data:`FLIGHT_SCHEMA`) together with a
resource snapshot, so a torn task is diagnosable from the dump alone,
without rerunning the campaign.

The ring is append-only and O(1) per note; recording costs one deque
append on paths that already construct a progress event, which is why
the recorder can stay always-on whenever streaming is enabled.
"""

from __future__ import annotations

import json
from collections import deque
from pathlib import Path
from typing import Any, Mapping

from repro.obs.resource import resource_snapshot

__all__ = [
    "FLIGHT_SCHEMA",
    "FlightRecorder",
    "flight_path",
    "load_flight",
]

#: Flight-dump schema tag (bump on breaking shape changes).
FLIGHT_SCHEMA = "repro.obs/flight@1"

#: Default ring capacity (events retained per worker).
DEFAULT_LIMIT = 256


def flight_path(directory: str | Path, worker: str) -> Path:
    """Where ``worker``'s flight dump lands inside ``directory``."""
    return Path(directory) / f"flight_{worker}.json"


class FlightRecorder:
    """Bounded ring of a worker's recent events, dumpable on crash."""

    def __init__(self, worker: str, limit: int = DEFAULT_LIMIT) -> None:
        self.worker = worker
        self.limit = max(1, int(limit))
        self._ring: deque[dict[str, Any]] = deque(maxlen=self.limit)
        self.recorded = 0
        self.current_task: str | None = None

    @property
    def dropped(self) -> int:
        """Events evicted from the ring since start."""
        return self.recorded - len(self._ring)

    def note(self, kind: str, time: float = 0.0, **detail: Any) -> None:
        """Record one event (oldest entry evicted once full)."""
        entry: dict[str, Any] = {"kind": kind, "time": time}
        if detail:
            entry.update(detail)
        self._ring.append(entry)
        self.recorded += 1

    def task_started(self, task_id: str, time: float = 0.0) -> None:
        self.current_task = task_id
        self.note("task_started", time=time, task_id=task_id)

    def task_finished(
        self, task_id: str, time: float = 0.0, **detail: Any
    ) -> None:
        self.current_task = None
        self.note("task_finished", time=time, task_id=task_id, **detail)

    def snapshot(self, reason: str) -> dict[str, Any]:
        """The JSON-safe dump body (schema-tagged)."""
        return {
            "schema": FLIGHT_SCHEMA,
            "worker": self.worker,
            "reason": reason,
            "current_task": self.current_task,
            "recorded": self.recorded,
            "dropped": self.dropped,
            "resources": resource_snapshot(),
            "events": list(self._ring),
        }

    def dump(self, directory: str | Path, reason: str) -> Path:
        """Write the ring to ``flight_<worker>.json``; returns the path.

        Best-effort durable: written via a temp file + atomic rename so
        a dump interrupted by a second signal never leaves a torn JSON
        file behind (the previous complete dump, if any, survives).
        """
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        target = flight_path(directory, self.worker)
        tmp = target.with_suffix(".json.tmp")
        tmp.write_text(
            json.dumps(self.snapshot(reason), sort_keys=True, indent=1),
            encoding="utf-8",
        )
        tmp.replace(target)
        return target


def load_flight(path: str | Path) -> dict[str, Any]:
    """Read a flight dump back (no validation — see
    :func:`repro.obs.export.validate_flight_dump`)."""
    with Path(path).open("r", encoding="utf-8") as handle:
        data = json.load(handle)
    if not isinstance(data, Mapping):
        raise ValueError(f"{path}: flight dump is not an object")
    return dict(data)
