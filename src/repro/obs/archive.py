"""The run warehouse: append-only archive of per-run signal snapshots.

Every artifact the repo already produces — an observed run directory
(``metrics.jsonl`` + ``manifest.json``), a fleet campaign directory
(``aggregate.json`` + ``campaign_obs.json``), a pytest-benchmark
``BENCH_*.json`` with :data:`repro.perf.RATE_SCHEMA`-tagged rate reports
— reduces to one :class:`RunSnapshot` (schema :data:`RUN_SCHEMA`): a
flat table of *signals* (counters, gauges, log-histograms, quantile
sketches, capped exact sample series) plus unhashed environment metadata
(git sha, machine score, wall time).  Snapshots are what
:mod:`repro.obs.compare` diffs and :mod:`repro.obs.trend` charts.

Layout of an archive directory::

    <root>/runs.jsonl            append-only index, one line per ingest
    <root>/runs/<run_id>/run.json   the full snapshot, content-addressed

**Content addressing.**  ``run_id`` is the SHA-256 of the canonical JSON
of ``{kind, name, signals}`` — *not* the metadata, so the same
deterministic simulation archived on two machines (different wall time,
different git sha, different machine score) hashes to the same id and
the second ingest dedups to a no-op.  This is also the durability
story's idempotence half: re-ingesting after any crash converges to the
same archive.

**Durability.**  ``add`` writes the snapshot file first (tmp +
``os.replace``) and appends the index line second, so a SIGKILL between
the two leaves a complete snapshot that the next ingest of the same run
re-indexes.  A SIGKILL *during* the index append leaves a torn tail
that :func:`repro.util.jsonl.iter_jsonl_objects` salvages around — the
same healing walk the result stores ride.

**Determinism.**  Signal extraction drops machine-dependent names
(wall time, CPU, RSS, allocation peaks — see :data:`EXCLUDED_SIGNAL_PARTS`)
so protocol/sim-time signals, which the simulator reproduces
bit-identically from a seed, are the only hashed content.  That is what
makes a committed reference snapshot diffable on any CI runner.
"""

from __future__ import annotations

import hashlib
import json
import math
import os
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterable, Iterator, Mapping

from repro.obs.export import (
    MANIFEST_FILE,
    METRICS_FILE,
    read_manifest,
    read_metrics_jsonl,
)
from repro.obs.hub import LogHistogram, split_label
from repro.util.jsonl import iter_jsonl_objects

#: Schema tag for snapshots and index lines.
RUN_SCHEMA = "repro.obs/run@1"

#: Archive file/dir names.
INDEX_FILE = "runs.jsonl"
RUNS_DIR = "runs"
SNAPSHOT_FILE = "run.json"

#: Snapshot kinds (what produced the signals).
KIND_OBS = "obs-run"
KIND_FLEET = "fleet-run"
KIND_BENCH = "bench"
RUN_KINDS = (KIND_OBS, KIND_FLEET, KIND_BENCH)

#: Exact sample series are kept verbatim up to this many values; longer
#: series downsample with a fixed stride (deterministic, order-stable).
SAMPLE_CAP = 512

#: A signal whose name contains any of these substrings is environment
#: noise (machine-dependent), not protocol behavior: it never enters the
#: hashed signal table, so snapshots of the same deterministic run hash
#: identically across hosts.
EXCLUDED_SIGNAL_PARTS = ("wall_time", "cpu", "rss", "malloc", "alloc_peak")


def signal_is_excluded(name: str) -> bool:
    """True for machine-dependent signal names (never hashed/diffed)."""
    return any(part in name for part in EXCLUDED_SIGNAL_PARTS)


def _canonical(value: Any) -> str:
    return json.dumps(value, sort_keys=True, separators=(",", ":"))


def downsample(values: list[float], cap: int = SAMPLE_CAP) -> list[float]:
    """Deterministic even-stride subsample preserving order (and the
    last value, so the series' endpoint survives)."""
    if len(values) <= cap:
        return list(values)
    picked = [values[(index * len(values)) // cap] for index in range(cap - 1)]
    picked.append(values[-1])
    return picked


def empty_signals() -> dict[str, Any]:
    return {
        "counters": {}, "gauges": {}, "histograms": {},
        "sketches": {}, "samples": {},
    }


@dataclass
class RunSnapshot:
    """One archived run: hashed signal table + unhashed metadata.

    ``signals`` holds five tables keyed by signal name:

    * ``counters`` — monotonic event totals (int).
    * ``gauges`` — levels / percentile points (float).
    * ``histograms`` — :meth:`LogHistogram.as_dict` payloads.
    * ``sketches`` — :meth:`QuantileSketch.as_dict` payloads.
    * ``samples`` — exact value lists (capped, see :data:`SAMPLE_CAP`).
    """

    kind: str
    name: str
    signals: dict[str, Any] = field(default_factory=empty_signals)
    meta: dict[str, Any] = field(default_factory=dict)
    sources: list[str] = field(default_factory=list)

    @property
    def run_id(self) -> str:
        return self.content_hash(self.kind, self.name, self.signals)

    @property
    def short_id(self) -> str:
        return self.run_id[:12]

    @staticmethod
    def content_hash(
        kind: str, name: str, signals: Mapping[str, Any]
    ) -> str:
        payload = _canonical({"kind": kind, "name": name, "signals": signals})
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()

    def signal_count(self) -> dict[str, int]:
        return {table: len(entries) for table, entries in self.signals.items()}

    def as_dict(self) -> dict[str, Any]:
        return {
            "schema": RUN_SCHEMA,
            "run_id": self.run_id,
            "kind": self.kind,
            "name": self.name,
            "sources": list(self.sources),
            "meta": dict(self.meta),
            "signals": self.signals,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "RunSnapshot":
        if data.get("schema") != RUN_SCHEMA:
            raise ValueError(
                f"not a {RUN_SCHEMA} snapshot (schema={data.get('schema')!r})"
            )
        signals = empty_signals()
        for table, entries in (data.get("signals") or {}).items():
            if table in signals and isinstance(entries, Mapping):
                signals[table] = dict(entries)
        snapshot = cls(
            kind=str(data.get("kind", "")),
            name=str(data.get("name", "")),
            signals=signals,
            meta=dict(data.get("meta") or {}),
            sources=[str(s) for s in data.get("sources") or ()],
        )
        recorded = data.get("run_id")
        if recorded and recorded != snapshot.run_id:
            raise ValueError(
                f"snapshot content hash mismatch: recorded {recorded[:12]}, "
                f"recomputed {snapshot.short_id} — the file was edited "
                "after archiving"
            )
        return snapshot


# ----------------------------------------------------------------------
# Extractors: repo artifacts -> RunSnapshot
# ----------------------------------------------------------------------
def _base_meta(wall_time: float | None = None) -> dict[str, Any]:
    from repro.perf import current_git_sha, machine_score

    meta: dict[str, Any] = {
        "created": time.time(),
        "machine_score": round(machine_score(), 3),
    }
    sha = current_git_sha()
    if sha:
        meta["git_sha"] = sha
    if wall_time is not None:
        meta["wall_time"] = wall_time
    return meta


def _add_scalar(
    signals: dict[str, Any], name: str, value: Any
) -> None:
    """Route a manifest/aggregate scalar into the right signal table."""
    if signal_is_excluded(name):
        return
    if isinstance(value, bool):
        signals["counters"][name] = int(value)
    elif isinstance(value, int):
        signals["counters"][name] = value
    elif isinstance(value, float) and math.isfinite(value):
        signals["gauges"][name] = value
    elif isinstance(value, list) and value and all(
        isinstance(item, (int, float)) and not isinstance(item, bool)
        and math.isfinite(item)
        for item in value
    ):
        signals["samples"][name] = downsample([float(item) for item in value])


def snapshot_from_obs_run(
    run_dir: str | Path, name: str | None = None
) -> RunSnapshot:
    """Reduce an observed-run directory (``metrics.jsonl`` +
    ``manifest.json``) to a snapshot.

    Label fan-in mirrors :meth:`MetricsHub.rollup`: counters sum across
    labels, gauges and EWMAs keep the worst (max) label, histograms
    merge bucket-wise, and series values concatenate in label order into
    capped exact sample lists.  Manifest ``metrics`` scalars land under
    ``metric/<key>``.
    """
    run_dir = Path(run_dir)
    export = read_metrics_jsonl(run_dir / METRICS_FILE)
    signals = empty_signals()

    counters: dict[str, int] = {}
    for full, value in export.get("counters", {}).items():
        base = split_label(full)[1]
        counters[base] = counters.get(base, 0) + int(value)
    worst: dict[str, float] = {}
    for full, value in export.get("gauges", {}).items():
        base = split_label(full)[1]
        worst[base] = max(worst.get(base, -math.inf), float(value))
    for full, data in export.get("ewmas", {}).items():
        base = split_label(full)[1]
        worst[base] = max(worst.get(base, -math.inf), float(data["value"]))
    merged: dict[str, LogHistogram] = {}
    for full, data in export.get("histograms", {}).items():
        base = split_label(full)[1]
        if base not in merged:
            merged[base] = LogHistogram(base)
        merged[base].merge(LogHistogram.from_dict(base, data))
    series_values: dict[str, list[float]] = {}
    for full in sorted(export.get("series", {})):
        base = split_label(full)[1]
        values = [float(value) for _, value in export["series"][full]]
        series_values.setdefault(base, []).extend(values)

    for base in sorted(counters):
        if not signal_is_excluded(base):
            signals["counters"][base] = counters[base]
    for base in sorted(worst):
        if not signal_is_excluded(base):
            signals["gauges"][base] = worst[base]
    for base in sorted(merged):
        if not signal_is_excluded(base):
            signals["histograms"][base] = merged[base].as_dict()
    for base in sorted(series_values):
        if not signal_is_excluded(base):
            signals["samples"][base] = downsample(series_values[base])

    meta = _base_meta()
    sources = [METRICS_FILE]
    manifest_path = run_dir / MANIFEST_FILE
    run_name = name or export.get("name") or run_dir.name
    if manifest_path.exists():
        sources.append(MANIFEST_FILE)
        manifest = read_manifest(manifest_path)
        run_name = name or manifest.get("scenario") or run_name
        for key in ("scenario", "seed", "params"):
            if key in manifest:
                meta[key] = manifest[key]
        if "wall_time" in manifest:
            meta["wall_time"] = manifest["wall_time"]
        metrics = manifest.get("metrics")
        if isinstance(metrics, Mapping):
            for key in sorted(metrics):
                _add_scalar(signals, f"metric/{key}", metrics[key])
    return RunSnapshot(
        kind=KIND_OBS, name=str(run_name), signals=signals, meta=meta,
        sources=sources,
    )


#: ``aggregate.json`` integer totals that become counters.
_AGGREGATE_COUNTERS = (
    "tasks", "ok", "errors", "converged", "with_violations",
    "replays_accepted_total", "fresh_discarded_total",
    "lost_seqnums_total", "resets_total",
)


def snapshot_from_fleet_run(
    run_dir: str | Path, name: str | None = None
) -> RunSnapshot:
    """Reduce a fleet campaign directory (``aggregate.json`` and, when
    the campaign observed tasks, ``campaign_obs.json``) to a snapshot."""
    run_dir = Path(run_dir)
    signals = empty_signals()
    meta = _base_meta()
    sources: list[str] = []

    aggregate_path = run_dir / "aggregate.json"
    if aggregate_path.exists():
        sources.append("aggregate.json")
        aggregate = json.loads(aggregate_path.read_text(encoding="utf-8"))
        for key in _AGGREGATE_COUNTERS:
            if isinstance(aggregate.get(key), int):
                signals["counters"][key] = aggregate[key]
        for point, value in sorted(
            (aggregate.get("convergence_time") or {}).items()
        ):
            signals["gauges"][f"time_to_converge/{point}"] = float(value)
        if isinstance(aggregate.get("sketch"), Mapping):
            signals["sketches"]["time_to_converge"] = dict(aggregate["sketch"])
        if "percentile_mode" in aggregate:
            meta["percentile_mode"] = aggregate["percentile_mode"]
        if "wall_time_total" in aggregate:
            meta["wall_time"] = aggregate["wall_time_total"]

    rollup_path = run_dir / "obs" / "campaign_obs.json"
    if not rollup_path.exists():
        rollup_path = run_dir / "campaign_obs.json"
    if rollup_path.exists():
        sources.append(str(rollup_path.relative_to(run_dir)))
        rollup = json.loads(rollup_path.read_text(encoding="utf-8"))
        for key, value in sorted((rollup.get("counters") or {}).items()):
            if not signal_is_excluded(key):
                signals["counters"][key] = (
                    signals["counters"].get(key, 0) + int(value)
                )
        for key, value in sorted((rollup.get("worst_gauges") or {}).items()):
            if not signal_is_excluded(key):
                signals["gauges"][key] = float(value)
        for key, data in sorted((rollup.get("histograms") or {}).items()):
            if not signal_is_excluded(key):
                signals["histograms"][key] = dict(data)

    if not sources:
        raise FileNotFoundError(
            f"{run_dir} has neither aggregate.json nor campaign_obs.json — "
            "not a fleet campaign directory"
        )
    return RunSnapshot(
        kind=KIND_FLEET, name=str(name or run_dir.name), signals=signals,
        meta=meta, sources=sources,
    )


def snapshot_from_bench(
    path: str | Path, name: str | None = None
) -> RunSnapshot:
    """Reduce a pytest-benchmark JSON file to a snapshot.

    Only entries carrying a :data:`repro.perf.RATE_SCHEMA`-tagged
    ``extra_info`` (the :meth:`RateReport.as_dict` provenance payload)
    contribute: the normalized rate is machine-portable, so it is the
    gauge; the raw rate and wall-clock stats are host noise and stay
    out of the hashed signal table.
    """
    from repro.perf import RATE_SCHEMA

    path = Path(path)
    data = json.loads(path.read_text(encoding="utf-8"))
    signals = empty_signals()
    meta = _base_meta()
    tagged = 0
    for entry in data.get("benchmarks", []):
        extra = entry.get("extra_info") or {}
        if extra.get("schema") != RATE_SCHEMA:
            continue
        tagged += 1
        bench = str(entry.get("name", extra.get("name", "bench")))
        if isinstance(extra.get("normalized_rate"), (int, float)):
            signals["gauges"][f"{bench}/normalized_rate"] = round(
                float(extra["normalized_rate"]), 3
            )
        if isinstance(extra.get("count"), int):
            signals["counters"][f"{bench}/count"] = extra["count"]
        if isinstance(extra.get("metric"), str):
            meta.setdefault("metrics", {})[bench] = extra["metric"]
        if extra.get("git_sha") and tagged == 1:
            # The sha captured at bench time is the provenance that
            # matters, not the checkout archiving the file later.
            meta["git_sha"] = extra["git_sha"]
        if isinstance(extra.get("machine_score"), (int, float)):
            meta["machine_score"] = extra["machine_score"]
    if not tagged:
        raise ValueError(
            f"{path} has no {RATE_SCHEMA}-tagged benchmarks — run the "
            "bench through the report_rate fixture so archives carry "
            "provenance"
        )
    return RunSnapshot(
        kind=KIND_BENCH, name=str(name or path.stem), signals=signals,
        meta=meta, sources=[path.name],
    )


def snapshot_target(
    target: str | Path, kind: str | None = None, name: str | None = None
) -> RunSnapshot:
    """Autodetect what ``target`` is and reduce it to a snapshot.

    A ``run.json`` (or any :data:`RUN_SCHEMA` JSON) loads as-is; a
    ``benchmarks``-shaped JSON is a bench; a directory with
    ``metrics.jsonl`` is an observed run; a directory with
    ``aggregate.json`` / ``campaign_obs.json`` is a fleet campaign.
    An explicit ``kind`` overrides the sniffing.
    """
    target = Path(target)
    if target.is_file():
        data = json.loads(target.read_text(encoding="utf-8"))
        if data.get("schema") == RUN_SCHEMA:
            return RunSnapshot.from_dict(data)
        if kind in (None, KIND_BENCH) and "benchmarks" in data:
            return snapshot_from_bench(target, name=name)
        raise ValueError(
            f"{target}: not a {RUN_SCHEMA} snapshot or pytest-benchmark JSON"
        )
    if not target.is_dir():
        raise FileNotFoundError(target)
    if (target / SNAPSHOT_FILE).exists() and kind is None:
        return RunSnapshot.from_dict(
            json.loads((target / SNAPSHOT_FILE).read_text(encoding="utf-8"))
        )
    if kind == KIND_OBS or (kind is None and (target / METRICS_FILE).exists()):
        return snapshot_from_obs_run(target, name=name)
    if kind == KIND_FLEET or kind is None:
        return snapshot_from_fleet_run(target, name=name)
    raise ValueError(f"{target}: cannot snapshot as kind {kind!r}")


# ----------------------------------------------------------------------
# The archive
# ----------------------------------------------------------------------
class RunArchive:
    """An append-only warehouse of :class:`RunSnapshot` records.

    See the module docstring for the layout and the durability/ordering
    contract.  All reads ride the salvage walk, so a half-written
    archive (crash mid-ingest) stays readable and the next ingest heals
    it.
    """

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)

    @property
    def index_path(self) -> Path:
        return self.root / INDEX_FILE

    def snapshot_path(self, run_id: str) -> Path:
        return self.root / RUNS_DIR / run_id / SNAPSHOT_FILE

    # ------------------------------------------------------------------
    # Writing
    # ------------------------------------------------------------------
    def add(self, snapshot: RunSnapshot) -> bool:
        """Archive a snapshot; returns True when new content landed.

        Content-hash idempotent: an already-archived ``run_id`` only
        repairs a missing index line (the crash-between-write-and-append
        case) and reports ``False``.
        """
        run_id = snapshot.run_id
        path = self.snapshot_path(run_id)
        created = not path.exists()
        if created:
            path.parent.mkdir(parents=True, exist_ok=True)
            tmp = path.with_suffix(".json.tmp")
            tmp.write_text(
                json.dumps(snapshot.as_dict(), sort_keys=True, indent=2)
                + "\n",
                encoding="utf-8",
            )
            os.replace(tmp, path)
        if run_id not in {entry["run_id"] for entry in self.index()}:
            self._append_index(snapshot)
        return created

    def _append_index(self, snapshot: RunSnapshot) -> None:
        entry = {
            "schema": RUN_SCHEMA,
            "run_id": snapshot.run_id,
            "kind": snapshot.kind,
            "name": snapshot.name,
            "created": snapshot.meta.get("created"),
            "git_sha": snapshot.meta.get("git_sha"),
            "machine_score": snapshot.meta.get("machine_score"),
            "sources": list(snapshot.sources),
            "signals": snapshot.signal_count(),
        }
        self.root.mkdir(parents=True, exist_ok=True)
        with self.index_path.open("a", encoding="utf-8") as handle:
            handle.write(_canonical(entry) + "\n")
            handle.flush()
            os.fsync(handle.fileno())

    def ingest(
        self,
        target: str | Path,
        kind: str | None = None,
        name: str | None = None,
    ) -> tuple[RunSnapshot, bool]:
        """Snapshot ``target`` (see :func:`snapshot_target`) and archive
        it; returns ``(snapshot, created)``."""
        snapshot = snapshot_target(target, kind=kind, name=name)
        return snapshot, self.add(snapshot)

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    def index(self) -> list[dict[str, Any]]:
        """Index entries in ingest order (salvaged, first-wins dedup)."""
        if not self.index_path.exists():
            return []
        seen: set[str] = set()
        entries: list[dict[str, Any]] = []
        for data in iter_jsonl_objects(self.index_path):
            if not isinstance(data, Mapping):
                continue
            run_id = data.get("run_id")
            if not isinstance(run_id, str) or run_id in seen:
                continue
            seen.add(run_id)
            entries.append(dict(data))
        return entries

    def load(self, run_id: str) -> RunSnapshot | None:
        path = self.snapshot_path(run_id)
        if not path.exists():
            return None
        return RunSnapshot.from_dict(
            json.loads(path.read_text(encoding="utf-8"))
        )

    def snapshots(
        self, kind: str | None = None, name: str | None = None
    ) -> Iterator[RunSnapshot]:
        """Archived snapshots in ingest order, optionally filtered."""
        for entry in self.index():
            if kind is not None and entry.get("kind") != kind:
                continue
            if name is not None and entry.get("name") != name:
                continue
            snapshot = self.load(entry["run_id"])
            if snapshot is not None:
                yield snapshot

    def history(
        self,
        kind: str | None = None,
        name: str | None = None,
        last: int | None = None,
    ) -> list[RunSnapshot]:
        """The N most recent snapshots (ingest order) for a filter."""
        found = list(self.snapshots(kind=kind, name=name))
        if last is not None and last > 0:
            found = found[-last:]
        return found

    def resolve(self, ref: str) -> RunSnapshot:
        """A snapshot from a flexible reference.

        ``latest`` (most recent ingest), an existing path (snapshotted
        on the fly — raw run dirs diff without being archived first), a
        full ``run_id``, or any unique id prefix.
        """
        if ref == "latest":
            entries = self.index()
            if not entries:
                raise ValueError(f"archive {self.root} is empty")
            snapshot = self.load(entries[-1]["run_id"])
            if snapshot is None:
                raise ValueError(
                    f"archive {self.root}: latest snapshot file is missing"
                )
            return snapshot
        path = Path(ref)
        if path.exists():
            return snapshot_target(path)
        matches = [
            entry["run_id"] for entry in self.index()
            if entry["run_id"].startswith(ref)
        ]
        if len(matches) == 1:
            snapshot = self.load(matches[0])
            if snapshot is not None:
                return snapshot
            raise ValueError(
                f"run {matches[0][:12]} is indexed but its snapshot file "
                "is missing"
            )
        if matches:
            raise ValueError(
                f"run reference {ref!r} is ambiguous "
                f"({len(matches)} matches)"
            )
        raise ValueError(
            f"run reference {ref!r} matches nothing in {self.root} "
            "(not a path, not an archived id, not 'latest')"
        )


def archive_all(
    archive: RunArchive, targets: Iterable[str | Path]
) -> list[tuple[RunSnapshot, bool]]:
    """Ingest several targets; returns each ``(snapshot, created)``."""
    return [archive.ingest(target) for target in targets]
