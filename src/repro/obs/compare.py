"""Statistical run-to-run diffing: per-metric GREEN/YELLOW/RED verdicts.

Compares two :class:`~repro.obs.archive.RunSnapshot` signal tables and
votes each metric's delta into a verdict through the same
:func:`~repro.obs.health.vote` quorum the per-SA health table uses — a
metric goes RED only when *both* its relative and its absolute
worsening cross the RED thresholds, so a large percentage swing on a
tiny base (0 -> 1 discard) or a tiny absolute drift on a huge base
cannot alone fail a build.

Three comparison shapes, most exact evidence first:

* **Scalars** (counters/gauges): signed delta against a per-metric
  :class:`MetricPolicy` (direction, thresholds, gated-or-info).
* **Sample means** (exact series): the delta of means with a
  deterministic bootstrap confidence interval; a RED whose 95% CI
  spans zero demotes to YELLOW (*not significant*), and fewer than
  :data:`MIN_BOOTSTRAP_SAMPLES` observations per side caps the verdict
  at YELLOW (a single observation is never proof of regression).
* **Distribution quantiles** (log-histograms / quantile sketches): the
  diff compares *uncertainty intervals*, not point estimates.  Each
  side answers ``quantile_bounds(q)`` — a sketch's ``[hi/(1+eps), hi]``
  with ``eps`` the documented <=9.05% bound, a log2 histogram's
  ``[hi/2, hi]``, an exact sample's ``[v, v]`` — and the gate worsens
  only by ``current_lo - baseline_hi``.  Overlapping intervals are
  GREEN by construction: **sketch noise can never raise a false RED.**

The rendered verdict table is a pure function of the two snapshots
(no timestamps, no machine fields), so a diff replayed from the archive
is byte-identical to the one produced at ingest time.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from fnmatch import fnmatchcase
from typing import Any, Iterable, Mapping, Sequence

from repro.obs.archive import RunSnapshot
from repro.obs.health import HealthState, signal_level, vote
from repro.obs.hub import LogHistogram

#: Bootstrap parameters — fixed seed and round count so the CI is a
#: deterministic function of the two sample lists (replayable diffs).
BOOTSTRAP_ROUNDS = 200
BOOTSTRAP_SEED = 0xC0FFEE
BOOTSTRAP_CONFIDENCE = 0.95

#: Below this many observations per side a mean diff cannot go RED.
MIN_BOOTSTRAP_SAMPLES = 3

#: Quantile points compared for every distribution signal.
DIFF_QUANTILES = (0.5, 0.99)


@dataclass(frozen=True)
class MetricPolicy:
    """How one metric family diffs.

    ``direction``: +1 higher-is-worse, -1 lower-is-worse, 0 info-only.
    ``rel``: (yellow, red) fractional worsening thresholds.
    ``absolute``: (yellow, red) absolute worsening thresholds, in the
    metric's own unit — also the floor of the relative denominator, so
    a near-zero baseline cannot inflate the relative term.
    ``gated``: whether a RED verdict fails the regression gate.
    """

    pattern: str
    direction: int = 1
    rel: tuple[float, float] = (0.10, 0.50)
    absolute: tuple[float, float] = (1.0, 10.0)
    gated: bool = True

    def matches(self, name: str) -> bool:
        return fnmatchcase(name, self.pattern)


#: Thresholds in seconds for the sim-time latency metrics (t_save is
#: 100us in the paper's constants; half a t_save of drift is notable,
#: two are a regression).
_TIME_ABS = (5e-5, 2e-4)

#: First match wins.  Protocol counters and latency metrics are gated;
#: environment/throughput signals are informational (the perf gate owns
#: events/s; wall time and resources never left the meta section, but
#: older rollups may still carry stray names — keep them inert).
DEFAULT_POLICIES: tuple[MetricPolicy, ...] = (
    MetricPolicy("*wall_time*", direction=0, gated=False),
    MetricPolicy("worker/*", direction=0, gated=False),
    MetricPolicy("engine/*", direction=0, gated=False),
    MetricPolicy("*/normalized_rate", direction=-1, gated=False),
    MetricPolicy("*/count", direction=0, gated=False),
    MetricPolicy("metric/k_*", direction=0, gated=False),
    MetricPolicy("*replays_accepted*", absolute=(1.0, 2.0)),
    MetricPolicy("*with_violations", absolute=(1.0, 2.0)),
    MetricPolicy("*errors", absolute=(1.0, 2.0)),
    MetricPolicy("*replay_discards", absolute=(2.0, 50.0)),
    MetricPolicy("*fresh_discarded*", absolute=(2.0, 50.0)),
    MetricPolicy("*blackholed", absolute=(2.0, 50.0)),
    MetricPolicy("*lost_seqnums*", absolute=(2.0, 50.0)),
    MetricPolicy("*loss_ewma", absolute=(0.02, 0.10)),
    MetricPolicy("*save_queue_depth", absolute=(1.0, 4.0)),
    MetricPolicy("*recovery*", absolute=_TIME_ABS),
    MetricPolicy("*save_wait*", absolute=_TIME_ABS),
    MetricPolicy("*time_to_converge*", absolute=_TIME_ABS),
    MetricPolicy("*convergence*", absolute=_TIME_ABS),
    MetricPolicy("*spread*", absolute=_TIME_ABS),
    MetricPolicy("*fetch_wait*", absolute=_TIME_ABS),
    MetricPolicy("*converged", direction=-1, absolute=(1.0, 2.0)),
    MetricPolicy("ok", direction=-1, absolute=(1.0, 2.0)),
    MetricPolicy("tasks", direction=0, gated=False),
    MetricPolicy("*resets", direction=0, gated=False),
    MetricPolicy("*transitions", direction=0, gated=False),
    MetricPolicy("*rebinds", direction=0, gated=False),
)

#: Anything unmatched is informational: a new signal appearing in a
#: future PR should surface in the table, not fail the gate untuned.
_FALLBACK_POLICY = MetricPolicy("*", direction=0, gated=False)


def policy_for(
    name: str, policies: Sequence[MetricPolicy] = DEFAULT_POLICIES
) -> MetricPolicy:
    for policy in policies:
        if policy.matches(name):
            return policy
    return _FALLBACK_POLICY


@dataclass
class DiffRow:
    """One metric's verdict in a run diff."""

    name: str
    kind: str  # counter | gauge | mean | p50 | p99 | presence
    baseline: float | None
    current: float | None
    state: HealthState
    gated: bool
    note: str = ""

    @property
    def change(self) -> float | None:
        if self.baseline is None or self.current is None:
            return None
        return self.current - self.baseline

    def as_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "kind": self.kind,
            "baseline": self.baseline,
            "current": self.current,
            "change": self.change,
            "state": self.state.label,
            "gated": self.gated,
            "note": self.note,
        }


@dataclass
class RunDiff:
    """Every compared metric, plus the gate verdict derived from it."""

    baseline_id: str
    current_id: str
    baseline_name: str
    current_name: str
    rows: list[DiffRow] = field(default_factory=list)

    @property
    def regressions(self) -> list[DiffRow]:
        """Gated RED rows — the ones that fail a build."""
        return [
            row for row in self.rows
            if row.gated and row.state is HealthState.RED
        ]

    @property
    def verdict(self) -> HealthState:
        worst = HealthState.GREEN
        for row in self.rows:
            if row.gated and row.state > worst:
                worst = row.state
        return worst

    def as_dict(self) -> dict[str, Any]:
        return {
            "baseline": {"run_id": self.baseline_id,
                         "name": self.baseline_name},
            "current": {"run_id": self.current_id, "name": self.current_name},
            "verdict": self.verdict.label,
            "regressions": len(self.regressions),
            "rows": [row.as_dict() for row in self.rows],
        }


# ----------------------------------------------------------------------
# Verdict arithmetic
# ----------------------------------------------------------------------
def _vote_worsening(
    worsening: float, baseline_scale: float, policy: MetricPolicy
) -> HealthState:
    """The quorum: relative AND absolute worsening must both go RED."""
    relative = worsening / max(abs(baseline_scale), policy.absolute[0])
    levels = [
        signal_level(relative, *policy.rel),
        signal_level(worsening, *policy.absolute),
    ]
    return vote(levels, red_votes=2)


def classify_scalar(
    baseline: float, current: float, policy: MetricPolicy
) -> tuple[HealthState, str]:
    """Verdict for a plain counter/gauge delta."""
    if policy.direction == 0:
        return HealthState.GREEN, ""
    worsening = (current - baseline) * policy.direction
    if worsening <= 0:
        return HealthState.GREEN, ""
    state = _vote_worsening(worsening, baseline, policy)
    if state is HealthState.GREEN:
        return state, ""
    return state, f"worse by {worsening:g}"


def bootstrap_delta_ci(
    baseline: Sequence[float],
    current: Sequence[float],
    rounds: int = BOOTSTRAP_ROUNDS,
    seed: int = BOOTSTRAP_SEED,
    confidence: float = BOOTSTRAP_CONFIDENCE,
) -> tuple[float, float]:
    """Percentile-bootstrap CI of ``mean(current) - mean(baseline)``.

    Deterministic (fixed seed) so a diff replays byte-identically.
    """
    rng = random.Random(seed)
    n_base, n_cur = len(baseline), len(current)
    deltas = []
    for _ in range(rounds):
        base_mean = sum(
            baseline[rng.randrange(n_base)] for _ in range(n_base)
        ) / n_base
        cur_mean = sum(
            current[rng.randrange(n_cur)] for _ in range(n_cur)
        ) / n_cur
        deltas.append(cur_mean - base_mean)
    deltas.sort()
    tail = (1.0 - confidence) / 2.0
    low = deltas[int(tail * (rounds - 1))]
    high = deltas[int((1.0 - tail) * (rounds - 1))]
    return low, high


def classify_samples(
    baseline: Sequence[float],
    current: Sequence[float],
    policy: MetricPolicy,
) -> tuple[HealthState, str]:
    """Verdict for two exact sample series (bootstrap the mean delta)."""
    base_mean = sum(baseline) / len(baseline)
    cur_mean = sum(current) / len(current)
    if policy.direction == 0:
        return HealthState.GREEN, ""
    worsening = (cur_mean - base_mean) * policy.direction
    if worsening <= 0:
        return HealthState.GREEN, ""
    state = _vote_worsening(worsening, base_mean, policy)
    if state is HealthState.GREEN:
        return state, ""
    n = min(len(baseline), len(current))
    if n < MIN_BOOTSTRAP_SAMPLES:
        if state is HealthState.RED:
            state = HealthState.YELLOW
        return state, f"worse by {worsening:g} (n={n}, no CI)"
    low, high = bootstrap_delta_ci(baseline, current)
    significant = low > 0.0 if policy.direction > 0 else high < 0.0
    if state is HealthState.RED and not significant:
        return HealthState.YELLOW, (
            f"worse by {worsening:g}, not significant "
            f"(95% CI [{low:g}, {high:g}] spans 0)"
        )
    return state, (
        f"worse by {worsening:g} (95% CI [{low:g}, {high:g}])"
    )


def classify_bounds(
    baseline: tuple[float, float],
    current: tuple[float, float],
    policy: MetricPolicy,
) -> tuple[HealthState, str]:
    """Verdict for two quantile *uncertainty intervals*.

    The worsening that gates is the gap between the intervals in the
    bad direction; overlap is GREEN ("within sketch error"), which is
    what makes the documented conservative bounds a no-false-RED rule.
    """
    base_lo, base_hi = baseline
    cur_lo, cur_hi = current
    if policy.direction == 0:
        return HealthState.GREEN, ""
    if policy.direction > 0:
        worsening = cur_lo - base_hi
        naive = cur_hi - base_hi
        scale = base_hi
    else:
        worsening = base_lo - cur_hi
        naive = base_lo - cur_lo
        scale = base_lo
    if worsening <= 0:
        if naive > 0:
            return HealthState.GREEN, "within sketch error"
        return HealthState.GREEN, ""
    state = _vote_worsening(worsening, scale, policy)
    if state is HealthState.GREEN:
        return state, ""
    return state, f"beyond sketch error by {worsening:g}"


# ----------------------------------------------------------------------
# Distribution access
# ----------------------------------------------------------------------
def _exact_quantile(values: Sequence[float], q: float) -> float:
    from repro.fleet.aggregate import percentile

    return percentile(list(values), q * 100.0)


def distribution_bounds(
    snapshot: RunSnapshot, name: str, q: float
) -> tuple[float, float] | None:
    """``(lo, hi)`` bounds on the true ``q``-quantile of signal ``name``.

    Prefers the sketch (tightest documented bound), then the log2
    histogram, then exact samples (zero-width interval); ``None`` when
    the snapshot has no distribution evidence under that name.  Mixed
    comparisons (exact on one side, sketch on the other) fall out for
    free: each side answers with its own honest interval.
    """
    sketches = snapshot.signals.get("sketches", {})
    if name in sketches:
        from repro.fleet.aggregate import QuantileSketch

        return QuantileSketch.from_dict(sketches[name]).quantile_bounds(q)
    histograms = snapshot.signals.get("histograms", {})
    if name in histograms:
        return LogHistogram.from_dict(
            name, histograms[name]
        ).quantile_bounds(q)
    samples = snapshot.signals.get("samples", {})
    if samples.get(name):
        value = _exact_quantile(samples[name], q)
        return (value, value)
    return None


def _quantile_kind(q: float) -> str:
    return f"p{q * 100:g}"


# ----------------------------------------------------------------------
# The diff
# ----------------------------------------------------------------------
def _presence_row(
    name: str, kind: str, baseline: float | None, current: float | None,
    side: str,
) -> DiffRow:
    return DiffRow(
        name=name, kind=kind, baseline=baseline, current=current,
        state=HealthState.GREEN, gated=False,
        note=f"only in {side}",
    )


def diff_runs(
    baseline: RunSnapshot,
    current: RunSnapshot,
    policies: Sequence[MetricPolicy] = DEFAULT_POLICIES,
    quantiles: Iterable[float] = DIFF_QUANTILES,
) -> RunDiff:
    """Compare two snapshots signal-by-signal into a :class:`RunDiff`.

    Row order is deterministic (scalars, then means, then quantiles;
    names sorted within each group), so the rendered table is a pure
    function of the snapshot pair.
    """
    diff = RunDiff(
        baseline_id=baseline.short_id, current_id=current.short_id,
        baseline_name=baseline.name, current_name=current.name,
    )
    quantiles = tuple(quantiles)

    for table, kind in (("counters", "counter"), ("gauges", "gauge")):
        base_table: Mapping[str, Any] = baseline.signals.get(table, {})
        cur_table: Mapping[str, Any] = current.signals.get(table, {})
        for name in sorted(set(base_table) | set(cur_table)):
            policy = policy_for(name, policies)
            if name not in base_table:
                diff.rows.append(_presence_row(
                    name, kind, None, float(cur_table[name]), "current"))
                continue
            if name not in cur_table:
                diff.rows.append(_presence_row(
                    name, kind, float(base_table[name]), None, "baseline"))
                continue
            base_value = float(base_table[name])
            cur_value = float(cur_table[name])
            state, note = classify_scalar(base_value, cur_value, policy)
            diff.rows.append(DiffRow(
                name=name, kind=kind, baseline=base_value,
                current=cur_value, state=state, gated=policy.gated,
                note=note,
            ))

    base_samples = baseline.signals.get("samples", {})
    cur_samples = current.signals.get("samples", {})
    for name in sorted(set(base_samples) | set(cur_samples)):
        policy = policy_for(name, policies)
        base_values = [float(v) for v in base_samples.get(name) or ()]
        cur_values = [float(v) for v in cur_samples.get(name) or ()]
        if base_values and cur_values:
            state, note = classify_samples(base_values, cur_values, policy)
            diff.rows.append(DiffRow(
                name=name, kind="mean",
                baseline=sum(base_values) / len(base_values),
                current=sum(cur_values) / len(cur_values),
                state=state, gated=policy.gated, note=note,
            ))
        elif distribution_bounds(
            baseline, name, 0.5
        ) is None or distribution_bounds(current, name, 0.5) is None:
            # No distribution fallback either: a signal one side simply
            # does not have.  The quantile loop below handles the mixed
            # exact-vs-sketch case.
            side = "current" if cur_values else "baseline"
            mean = (
                sum(cur_values) / len(cur_values) if cur_values
                else sum(base_values) / len(base_values) if base_values
                else None
            )
            diff.rows.append(_presence_row(
                name, "mean",
                mean if side == "baseline" else None,
                mean if side == "current" else None,
                side,
            ))

    dist_names = (
        set(baseline.signals.get("histograms", {}))
        | set(baseline.signals.get("sketches", {}))
        | set(current.signals.get("histograms", {}))
        | set(current.signals.get("sketches", {}))
    )
    for name in sorted(dist_names):
        policy = policy_for(name, policies)
        probe = distribution_bounds(baseline, name, 0.5), \
            distribution_bounds(current, name, 0.5)
        if probe[0] is None or probe[1] is None:
            side = "baseline" if probe[0] is not None else "current"
            present = probe[0] if probe[0] is not None else probe[1]
            value = present[1] if present is not None else None
            diff.rows.append(_presence_row(
                name, "p50",
                value if side == "baseline" else None,
                value if side == "current" else None,
                side,
            ))
            continue
        for q in quantiles:
            base_bounds = distribution_bounds(baseline, name, q)
            cur_bounds = distribution_bounds(current, name, q)
            assert base_bounds is not None and cur_bounds is not None
            state, note = classify_bounds(base_bounds, cur_bounds, policy)
            diff.rows.append(DiffRow(
                name=name, kind=_quantile_kind(q),
                baseline=base_bounds[1], current=cur_bounds[1],
                state=state, gated=policy.gated, note=note,
            ))

    return diff


# ----------------------------------------------------------------------
# Rendering
# ----------------------------------------------------------------------
def _format_value(value: float | None) -> str:
    if value is None:
        return "-"
    if isinstance(value, float) and value.is_integer() and abs(value) < 1e15:
        return str(int(value))
    return f"{value:.6g}"


def render_diff_table(diff: RunDiff, verbose: bool = False) -> str:
    """The verdict table (stable output — see module docstring).

    Non-GREEN and annotated rows print individually; clean GREEN rows
    collapse into the summary counts unless ``verbose``.
    """
    lines = [
        f"run diff: {diff.baseline_name} [{diff.baseline_id}] -> "
        f"{diff.current_name} [{diff.current_id}]",
    ]
    if diff.baseline_id == diff.current_id:
        lines.append("(identical content hashes — self-diff)")
    header = (
        f"  {'state':<7} {'metric':<36} {'kind':<8} {'baseline':>12} "
        f"{'current':>12} {'note'}"
    )
    shown = [
        row for row in diff.rows
        if verbose or row.state is not HealthState.GREEN or row.note
    ]
    if shown:
        lines.append(header)
        lines.append("  " + "-" * (len(header) - 2))
        for row in sorted(
            shown, key=lambda r: (-int(r.state), not r.gated, r.name, r.kind)
        ):
            gate = "" if row.gated else " (info)"
            lines.append(
                f"  {row.state.label:<7} {row.name:<36} {row.kind:<8} "
                f"{_format_value(row.baseline):>12} "
                f"{_format_value(row.current):>12} {row.note}{gate}"
            )
    gated = [row for row in diff.rows if row.gated]
    info = len(diff.rows) - len(gated)
    counts = {state: 0 for state in HealthState}
    for row in gated:
        counts[row.state] += 1
    lines.append(
        f"signals: {len(diff.rows)} compared — "
        f"{counts[HealthState.RED]} RED, {counts[HealthState.YELLOW]} "
        f"YELLOW, {counts[HealthState.GREEN]} GREEN gated; {info} info-only"
    )
    lines.append(
        f"verdict: {diff.verdict.label} "
        f"({len(diff.regressions)} regression(s))"
    )
    return "\n".join(lines)
