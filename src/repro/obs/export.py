"""Exporters: metrics JSONL, run manifests, Chrome trace-event JSON.

A finished observed run persists as a *run directory*:

* ``metrics.jsonl`` — one line per instrument from the
  :class:`~repro.obs.hub.MetricsHub` (schema
  :data:`METRICS_SCHEMA`; first line is a ``meta`` header).
* ``manifest.json`` — what ran: scenario, params, seed, engine stats,
  wall time, and the file inventory (schema :data:`MANIFEST_SCHEMA`).
* ``trace_records.jsonl`` — raw :class:`~repro.sim.trace.TraceRecord`
  lines, when the run was traced.
* ``trace.json`` — the Chrome trace-event rendering (rendered from the
  raw records + hub series by :func:`chrome_trace_events`), viewable by
  loading into https://ui.perfetto.dev or ``chrome://tracing``.

Everything round-trips: :func:`read_metrics_jsonl` returns the same
dict shape :meth:`MetricsHub.as_dict` exports, so the health table and
the trace renderer work identically on live hubs and on files read back
later.  The ``validate_*`` helpers are the schema contract the CI obs
smoke job (and any future consumer) checks against — they return error
lists rather than raising so a check can report every problem at once.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Iterable, Mapping

from repro.obs.flightrec import FLIGHT_SCHEMA
from repro.obs.hub import MetricsHub
from repro.obs.stream import EVENT_KINDS, PROGRESS_SCHEMA
from repro.sim.trace import TraceRecord, TraceRecorder
from repro.util.jsonl import iter_jsonl_objects

#: Schema tags (bump on breaking shape changes; consumers dispatch on them).
METRICS_SCHEMA = "repro.obs/metrics@1"
MANIFEST_SCHEMA = "repro.obs/manifest@1"
TRACE_RECORDS_SCHEMA = "repro.obs/trace-records@1"

#: Run-directory file names.
METRICS_FILE = "metrics.jsonl"
MANIFEST_FILE = "manifest.json"
TRACE_RECORDS_FILE = "trace_records.jsonl"
CHROME_TRACE_FILE = "trace.json"

#: Instrument kinds a metrics line may carry.
METRIC_KINDS = ("meta", "counter", "gauge", "ewma", "histogram", "series")

#: Chrome trace-event phases this exporter emits.
_TRACE_PHASES = ("M", "i", "X", "C")


# ----------------------------------------------------------------------
# Metrics JSONL
# ----------------------------------------------------------------------
def metrics_lines(hub: MetricsHub) -> list[dict[str, Any]]:
    """The hub's instruments as JSON-safe line dicts (header first)."""
    lines: list[dict[str, Any]] = [{
        "kind": "meta",
        "schema": METRICS_SCHEMA,
        "name": hub.name,
        "labels": hub.labels,
    }]
    for kind, name, instrument in hub.iter_instruments():
        if kind == "counter":
            lines.append({"kind": kind, "name": name, "value": instrument.value})
        elif kind == "gauge":
            lines.append({"kind": kind, "name": name, "value": instrument.value})
        elif kind == "ewma":
            lines.append({
                "kind": kind, "name": name, "value": instrument.value,
                "alpha": instrument.alpha,
                "observations": instrument.observations,
            })
        elif kind == "histogram":
            lines.append({"kind": kind, "name": name, **instrument.as_dict()})
        else:  # series
            lines.append({
                "kind": kind, "name": name,
                "samples": [list(sample) for sample in instrument.samples],
            })
    return lines


def write_metrics_jsonl(hub: MetricsHub, path: str | Path) -> Path:
    """Write the hub's metrics file; returns the path written."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", encoding="utf-8") as handle:
        for line in metrics_lines(hub):
            handle.write(json.dumps(line, sort_keys=True,
                                    separators=(",", ":")) + "\n")
    return path


def read_metrics_lines(
    path: str | Path, errors: list[str] | None = None
) -> list[dict[str, Any]]:
    """Read a metrics file's line dicts, salvaging torn lines.

    The same salvage-and-skip walk the result store heals with: a
    truncated tail (a ``kill -9`` mid-export, a filled disk) costs the
    torn line only, and every complete line still parses.  ``errors``
    collects one message per torn line, so callers can report damage
    without refusing the file.
    """
    if not Path(path).exists():
        raise FileNotFoundError(path)
    lines: list[dict[str, Any]] = []
    for data in iter_jsonl_objects(path, errors=errors):
        if isinstance(data, Mapping):
            lines.append(dict(data))
        elif errors is not None:
            errors.append(f"{path}: skipping non-object line")
    return lines


def read_metrics_jsonl(path: str | Path) -> dict[str, Any]:
    """Read a metrics file back into the ``MetricsHub.as_dict`` shape.

    Tolerant of torn tails (see :func:`read_metrics_lines`): the
    salvageable instruments load, the torn fragment is dropped.
    """
    export: dict[str, Any] = {
        "name": "", "labels": [], "counters": {}, "gauges": {},
        "ewmas": {}, "histograms": {}, "series": {},
    }
    for data in read_metrics_lines(path):
        kind = data.get("kind")
        if kind == "meta":
            export["name"] = data.get("name", "")
            export["labels"] = list(data.get("labels", ()))
        elif kind == "counter":
            export["counters"][data["name"]] = data["value"]
        elif kind == "gauge":
            export["gauges"][data["name"]] = data["value"]
        elif kind == "ewma":
            export["ewmas"][data["name"]] = {
                "value": data["value"], "alpha": data["alpha"],
                "observations": data["observations"],
            }
        elif kind == "histogram":
            export["histograms"][data["name"]] = {
                key: value for key, value in data.items()
                if key not in ("kind", "name")
            }
        elif kind == "series":
            export["series"][data["name"]] = [
                tuple(sample) for sample in data["samples"]
            ]
    return export


def validate_metrics_lines(lines: Iterable[Mapping[str, Any]]) -> list[str]:
    """Schema-check metric lines; returns error strings (empty = valid)."""
    errors: list[str] = []
    saw_meta = False
    for index, line in enumerate(lines):
        where = f"line {index}"
        kind = line.get("kind")
        if kind not in METRIC_KINDS:
            errors.append(f"{where}: unknown kind {kind!r}")
            continue
        if kind == "meta":
            if index != 0:
                errors.append(f"{where}: meta header must be the first line")
            if line.get("schema") != METRICS_SCHEMA:
                errors.append(
                    f"{where}: schema {line.get('schema')!r} != {METRICS_SCHEMA!r}"
                )
            saw_meta = True
            continue
        if not isinstance(line.get("name"), str) or not line["name"]:
            errors.append(f"{where}: missing instrument name")
        if kind in ("counter", "gauge", "ewma"):
            if not isinstance(line.get("value"), (int, float)):
                errors.append(f"{where}: {kind} needs a numeric value")
        if kind == "ewma" and not isinstance(line.get("alpha"), (int, float)):
            errors.append(f"{where}: ewma needs its alpha")
        if kind == "histogram":
            if not isinstance(line.get("count"), int):
                errors.append(f"{where}: histogram needs an integer count")
            if not isinstance(line.get("buckets"), dict):
                errors.append(f"{where}: histogram needs a buckets dict")
        if kind == "series":
            samples = line.get("samples")
            if not isinstance(samples, list):
                errors.append(f"{where}: series needs a samples list")
            else:
                for sample in samples:
                    if (not isinstance(sample, (list, tuple))
                            or len(sample) != 2):
                        errors.append(
                            f"{where}: series samples must be [time, value] "
                            "pairs"
                        )
                        break
    if not saw_meta:
        errors.append("missing meta header line")
    return errors


# ----------------------------------------------------------------------
# Run manifest
# ----------------------------------------------------------------------
def build_manifest(
    name: str,
    scenario: str | None = None,
    params: Mapping[str, Any] | None = None,
    seed: int | None = None,
    engine_stats: Mapping[str, Any] | None = None,
    wall_time: float | None = None,
    files: Iterable[str] = (),
    extra: Mapping[str, Any] | None = None,
) -> dict[str, Any]:
    """The run manifest dict (schema :data:`MANIFEST_SCHEMA`)."""
    manifest: dict[str, Any] = {
        "schema": MANIFEST_SCHEMA,
        "name": name,
        "files": sorted(files),
    }
    if scenario is not None:
        manifest["scenario"] = scenario
    if params is not None:
        manifest["params"] = dict(params)
    if seed is not None:
        manifest["seed"] = seed
    if engine_stats is not None:
        manifest["engine"] = dict(engine_stats)
    if wall_time is not None:
        manifest["wall_time"] = wall_time
    if extra:
        manifest.update(extra)
    return manifest


def write_manifest(manifest: Mapping[str, Any], path: str | Path) -> Path:
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(manifest, sort_keys=True, indent=2) + "\n",
                    encoding="utf-8")
    return path


def read_manifest(path: str | Path) -> dict[str, Any]:
    return json.loads(Path(path).read_text(encoding="utf-8"))


def validate_manifest(manifest: Mapping[str, Any]) -> list[str]:
    errors: list[str] = []
    if manifest.get("schema") != MANIFEST_SCHEMA:
        errors.append(
            f"schema {manifest.get('schema')!r} != {MANIFEST_SCHEMA!r}"
        )
    if not isinstance(manifest.get("name"), str):
        errors.append("manifest needs a string name")
    if not isinstance(manifest.get("files"), list):
        errors.append("manifest needs a files list")
    return errors


# ----------------------------------------------------------------------
# Progress ledger and flight dumps (the streaming telemetry artifacts)
# ----------------------------------------------------------------------
#: Event kinds that must name the task they concern.
_TASK_SCOPED_KINDS = ("task_started", "task_finished", "task_errored")


def validate_progress_lines(
    lines: Iterable[Mapping[str, Any]],
) -> list[str]:
    """Schema-check progress-ledger lines (``repro.obs/progress@1``).

    Accepts the dicts :func:`repro.util.jsonl.iter_jsonl_objects` yields
    from a ``progress.jsonl`` — live, finished, or salvaged from a
    killed run.  Returns error strings (empty = valid).
    """
    errors: list[str] = []
    saw_start = False
    for index, line in enumerate(lines):
        where = f"line {index}"
        kind = line.get("kind")
        if kind not in EVENT_KINDS:
            errors.append(f"{where}: unknown kind {kind!r}")
            continue
        if not isinstance(line.get("time"), (int, float)):
            errors.append(f"{where}: needs a numeric time")
        if kind == "campaign_started":
            saw_start = True
            if line.get("schema") != PROGRESS_SCHEMA:
                errors.append(
                    f"{where}: schema {line.get('schema')!r} != "
                    f"{PROGRESS_SCHEMA!r}"
                )
        elif not saw_start:
            errors.append(f"{where}: {kind} before any campaign_started")
            saw_start = True  # report the ordering break once
        if kind in _TASK_SCOPED_KINDS:
            task_id = line.get("task_id")
            if not isinstance(task_id, str) or not task_id:
                errors.append(f"{where}: {kind} needs a task_id")
        data = line.get("data")
        if data is not None and not isinstance(data, Mapping):
            errors.append(f"{where}: data must be an object")
    return errors


def validate_progress_file(path: str | Path) -> list[str]:
    """Validate a ledger file on disk, torn lines included.

    Torn-line salvage messages are *reported* alongside schema errors
    but a salvaged file whose surviving lines validate returns only
    those salvage notes — callers distinguish damage from invalidity by
    the message text, same as the store's heal report.
    """
    errors: list[str] = []
    lines = [
        data for data in iter_jsonl_objects(path, errors=errors)
        if isinstance(data, Mapping)
    ]
    errors.extend(validate_progress_lines(lines))
    return errors


def validate_flight_dump(dump: Mapping[str, Any]) -> list[str]:
    """Schema-check a flight-recorder dump (``repro.obs/flight@1``)."""
    errors: list[str] = []
    if dump.get("schema") != FLIGHT_SCHEMA:
        errors.append(
            f"schema {dump.get('schema')!r} != {FLIGHT_SCHEMA!r}"
        )
    if not isinstance(dump.get("worker"), str) or not dump.get("worker"):
        errors.append("flight dump needs a worker name")
    if not isinstance(dump.get("reason"), str) or not dump.get("reason"):
        errors.append("flight dump needs a reason")
    events = dump.get("events")
    if not isinstance(events, list):
        errors.append("flight dump needs an events list")
        events = []
    for index, event in enumerate(events):
        if not isinstance(event, Mapping) or "kind" not in event:
            errors.append(f"event {index}: needs a kind")
    recorded = dump.get("recorded")
    if not isinstance(recorded, int) or recorded < len(events):
        errors.append("recorded must be an int >= len(events)")
    dropped = dump.get("dropped")
    if not isinstance(dropped, int) or dropped < 0:
        errors.append("dropped must be a non-negative int")
    if not isinstance(dump.get("resources"), Mapping):
        errors.append("flight dump needs a resources object")
    return errors


# ----------------------------------------------------------------------
# Raw trace records
# ----------------------------------------------------------------------
def write_trace_records(trace: TraceRecorder, path: str | Path) -> Path:
    """Persist the recorder's records as JSONL (header line first)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", encoding="utf-8") as handle:
        header = {"schema": TRACE_RECORDS_SCHEMA, "dropped": trace.dropped}
        handle.write(json.dumps(header, sort_keys=True,
                                separators=(",", ":")) + "\n")
        for record in trace:
            line = {
                "time": record.time, "source": record.source,
                "kind": record.kind, "detail": record.detail,
            }
            handle.write(json.dumps(line, sort_keys=True, default=repr,
                                    separators=(",", ":")) + "\n")
    return path


def read_trace_records(path: str | Path) -> list[TraceRecord]:
    """Read a trace-records file back (header line skipped)."""
    records: list[TraceRecord] = []
    for line in Path(path).read_text(encoding="utf-8").splitlines():
        if not line.strip():
            continue
        data = json.loads(line)
        if "schema" in data:
            continue
        records.append(TraceRecord(
            time=data["time"], source=data["source"], kind=data["kind"],
            detail=dict(data.get("detail", {})),
        ))
    return records


# ----------------------------------------------------------------------
# Chrome trace events
# ----------------------------------------------------------------------
def chrome_trace_events(
    records: Iterable[TraceRecord] = (),
    export: Mapping[str, Any] | None = None,
    pid: int = 1,
) -> list[dict[str, Any]]:
    """Render records + hub series into Chrome trace-event dicts.

    Mapping (timestamps are microseconds, the format's unit):

    * each trace source becomes a named thread (``M`` metadata events);
    * every :class:`TraceRecord` is a thread-scoped instant (``i``);
    * ``reset`` .. ``resume`` pairs on one source additionally become a
      ``recovery`` duration span (``X``) so outages are visible bars;
    * every hub time series becomes a counter track (``C``) — this is
      how the sampler's loss/queue/latency series render as graphs.
    """
    records = list(records)
    sources: list[str] = []
    for record in records:
        if record.source not in sources:
            sources.append(record.source)
    tids = {source: index + 1 for index, source in enumerate(sources)}

    events: list[dict[str, Any]] = [{
        "name": "process_name", "ph": "M", "pid": pid, "tid": 0,
        "args": {"name": "repro simulation"},
    }]
    for source, tid in tids.items():
        events.append({
            "name": "thread_name", "ph": "M", "pid": pid, "tid": tid,
            "args": {"name": source},
        })

    open_resets: dict[str, float] = {}
    for record in records:
        ts = record.time * 1e6
        tid = tids[record.source]
        events.append({
            "name": record.kind, "cat": "trace", "ph": "i", "s": "t",
            "ts": ts, "pid": pid, "tid": tid,
            "args": {key: _json_safe(value)
                     for key, value in record.detail.items()},
        })
        if record.kind == "reset":
            open_resets[record.source] = ts
        elif record.kind == "resume" and record.source in open_resets:
            start = open_resets.pop(record.source)
            events.append({
                "name": "recovery", "cat": "recovery", "ph": "X",
                "ts": start, "dur": ts - start, "pid": pid, "tid": tid,
                "args": {},
            })

    if export is not None:
        for name, samples in sorted(export.get("series", {}).items()):
            for time, value in samples:
                events.append({
                    "name": name, "cat": "metrics", "ph": "C",
                    "ts": time * 1e6, "pid": pid,
                    "args": {"value": value},
                })

    events.sort(key=lambda event: (event["ph"] != "M", event.get("ts", 0.0)))
    return events


def _json_safe(value: Any) -> Any:
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return repr(value)


def write_chrome_trace(
    events: list[dict[str, Any]], path: str | Path
) -> Path:
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    document = {"traceEvents": events, "displayTimeUnit": "ms"}
    path.write_text(json.dumps(document, sort_keys=True,
                               separators=(",", ":")) + "\n",
                    encoding="utf-8")
    return path


def validate_trace_events(document: Mapping[str, Any]) -> list[str]:
    """Schema-check a Chrome trace document (the ``trace.json`` shape)."""
    errors: list[str] = []
    events = document.get("traceEvents")
    if not isinstance(events, list):
        return ["document needs a traceEvents list"]
    for index, event in enumerate(events):
        where = f"event {index}"
        if not isinstance(event, dict):
            errors.append(f"{where}: not an object")
            continue
        phase = event.get("ph")
        if phase not in _TRACE_PHASES:
            errors.append(f"{where}: unknown phase {phase!r}")
            continue
        if not isinstance(event.get("name"), str):
            errors.append(f"{where}: missing name")
        if not isinstance(event.get("pid"), int):
            errors.append(f"{where}: missing integer pid")
        if phase == "M":
            continue  # metadata needs no timestamp
        ts = event.get("ts")
        if not isinstance(ts, (int, float)) or ts < 0:
            errors.append(f"{where}: needs a non-negative ts")
        if phase == "X":
            dur = event.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                errors.append(f"{where}: X event needs a non-negative dur")
        if phase == "C":
            args = event.get("args")
            if not isinstance(args, dict) or not all(
                isinstance(value, (int, float)) for value in args.values()
            ):
                errors.append(f"{where}: C event needs numeric args")
        if phase == "i" and event.get("s") not in ("g", "p", "t"):
            errors.append(f"{where}: i event needs scope s in g/p/t")
    return errors


# ----------------------------------------------------------------------
# Run directories
# ----------------------------------------------------------------------
def export_run(
    out_dir: str | Path,
    hub: MetricsHub,
    trace: TraceRecorder | None = None,
    manifest_extra: Mapping[str, Any] | None = None,
    name: str = "run",
    **manifest_fields: Any,
) -> Path:
    """Write a complete run directory; returns its path.

    Emits ``metrics.jsonl``, ``trace_records.jsonl`` (when ``trace``
    holds records), and ``manifest.json`` listing what was written.  The
    Chrome trace is rendered on demand by :func:`render_run_trace` (the
    ``obs`` CLI's summarize step) rather than here, so fleet-scale runs
    do not pay for a rendering nobody asked for.
    """
    out_dir = Path(out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    files = [METRICS_FILE]
    write_metrics_jsonl(hub, out_dir / METRICS_FILE)
    if trace is not None and len(trace):
        write_trace_records(trace, out_dir / TRACE_RECORDS_FILE)
        files.append(TRACE_RECORDS_FILE)
    manifest = build_manifest(
        name=name, files=files, extra=manifest_extra, **manifest_fields
    )
    write_manifest(manifest, out_dir / MANIFEST_FILE)
    return out_dir


def render_run_trace(run_dir: str | Path) -> Path | None:
    """Render ``trace.json`` for a run directory (None without metrics).

    Uses whatever the directory has: raw trace records, hub series, or
    both.  Idempotent — re-rendering overwrites.
    """
    run_dir = Path(run_dir)
    metrics_path = run_dir / METRICS_FILE
    records_path = run_dir / TRACE_RECORDS_FILE
    if not metrics_path.exists() and not records_path.exists():
        return None
    export = read_metrics_jsonl(metrics_path) if metrics_path.exists() else None
    records = read_trace_records(records_path) if records_path.exists() else []
    events = chrome_trace_events(records, export=export)
    return write_chrome_trace(events, run_dir / CHROME_TRACE_FILE)
