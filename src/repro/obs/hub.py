"""The metrics registry: one hub per run, instruments by name.

:class:`MetricsHub` is the single place a run's health signals live.
Components never own instrument objects across module boundaries — they
ask the hub (``hub.counter("replay_discards")``) and the hub returns the
one live instrument for that name, creating it on first use.  Four
instrument kinds cover everything the controller and the exporters need:

* :class:`HubCounter` — monotonic event count (``inc``).
* :class:`Gauge` — last-write-wins level (``set``); the
  :class:`~repro.obs.sampler.Sampler` snapshots gauges into time series.
* :class:`EwmaGauge` — exponentially weighted moving average over
  observations; the controller's smoothed loss signal.
* :class:`LogHistogram` — fixed log2 buckets over a positive range;
  constant memory no matter how many observations (recovery latencies,
  save waits).

**Labels and fan-in.**  A multiplexing driver (the gateway) gives each
SA its own *sub-hub* (``hub.sub("sa3")``): the same instrument API, but
every name is prefixed ``"sa3/"`` and registered in the *root* hub, so
one export walks every SA's signals.  :meth:`MetricsHub.rollup` is the
label fan-in: it sums same-suffix instruments across labels into the
unlabeled base name, which is what campaign-level aggregation stores.

**The zero-overhead-off invariant.**  :class:`NullHub` is the disabled
hub: ``enabled`` is pinned ``False`` (flipping it on raises, exactly like
:class:`~repro.sim.trace.NullTraceRecorder`), and every factory method
returns a shared no-op instrument.  Wiring code must check
``hub.enabled`` *once, at build time* and attach nothing when it is
off — not guard per-event call sites — so a disabled-hub run schedules
the same events, draws the same random numbers, and produces
byte-identical results to a build that predates the hub.  The parity
tests in ``tests/obs/test_parity.py`` and the CI engine perf gate pin
this.

The module-level *ambient* hub (:func:`default_hub` / :func:`use_hub`)
is how batch drivers reach engines built deep inside scenario helpers:
the fleet runner installs a hub around a task, and every
``build_protocol`` / ``Gateway`` call inside the scenario picks it up —
the same pattern as ``Engine.default_hard_event_limit``.
"""

from __future__ import annotations

import math
from contextlib import contextmanager
from typing import Any, Iterable, Iterator, Mapping

from repro.sim.metrics import TimeSeries

#: Default smoothing factor for :class:`EwmaGauge` (weight of the newest
#: observation; ~0.25 tracks a regime shift within a handful of samples
#: without chasing single-packet noise).
DEFAULT_EWMA_ALPHA = 0.25

#: Fixed :class:`LogHistogram` range: bucket i covers values in
#: ``[2**(LOG_BUCKET_LOW + i), 2**(LOG_BUCKET_LOW + i + 1))``.  The span
#: 2**-30 (~1 ns) .. 2**10 (~17 min) covers every duration the
#: simulation produces; values outside clamp to the edge buckets.
LOG_BUCKET_LOW = -30
LOG_BUCKET_HIGH = 10
LOG_BUCKET_COUNT = LOG_BUCKET_HIGH - LOG_BUCKET_LOW + 2  # + under/overflow


class HubCounter:
    """A named monotonic counter."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        """Add ``amount`` (must be >= 0)."""
        if amount < 0:
            raise ValueError(f"counter increment must be >= 0, got {amount}")
        self.value += amount


class Gauge:
    """A named last-write-wins level."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)


class EwmaGauge:
    """Exponentially weighted moving average of observed values.

    The first observation primes the average (no bias toward an
    arbitrary zero start); after that
    ``value := alpha * x + (1 - alpha) * value``.
    """

    __slots__ = ("name", "alpha", "value", "observations")

    def __init__(self, name: str, alpha: float = DEFAULT_EWMA_ALPHA) -> None:
        if not 0.0 < alpha <= 1.0:
            raise ValueError(f"alpha must be in (0, 1], got {alpha}")
        self.name = name
        self.alpha = alpha
        self.value = 0.0
        self.observations = 0

    def observe(self, x: float) -> None:
        if self.observations == 0:
            self.value = float(x)
        else:
            self.value += self.alpha * (float(x) - self.value)
        self.observations += 1


class LogHistogram:
    """Fixed log2-bucket histogram over positive values.

    Bucket boundaries are process-wide constants (:data:`LOG_BUCKET_LOW`
    / :data:`LOG_BUCKET_HIGH`), so histograms from different runs and
    different SAs merge by plain vector addition — the property the
    campaign-level rollup relies on.  Values at or below zero land in
    the underflow bucket (index 0); values above the top boundary in
    the overflow bucket (the last index).
    """

    __slots__ = ("name", "counts", "count", "total", "minimum", "maximum")

    def __init__(self, name: str) -> None:
        self.name = name
        self.counts = [0] * LOG_BUCKET_COUNT
        self.count = 0
        self.total = 0.0
        self.minimum = math.inf
        self.maximum = -math.inf

    @staticmethod
    def bucket_index(x: float) -> int:
        """The fixed bucket for value ``x`` (0 = underflow)."""
        if x <= 0.0:
            return 0
        # frexp: x = m * 2**e with m in [0.5, 1), so floor(log2 x) = e - 1.
        exponent = math.frexp(x)[1] - 1
        if exponent < LOG_BUCKET_LOW:
            return 0
        if exponent > LOG_BUCKET_HIGH:
            return LOG_BUCKET_COUNT - 1
        return exponent - LOG_BUCKET_LOW + 1

    @staticmethod
    def bucket_upper_bound(index: int) -> float:
        """Exclusive upper bound of bucket ``index`` (inf for overflow)."""
        if index >= LOG_BUCKET_COUNT - 1:
            return math.inf
        return 2.0 ** (LOG_BUCKET_LOW + index)

    def observe(self, x: float) -> None:
        self.counts[self.bucket_index(x)] += 1
        self.count += 1
        self.total += x
        if x < self.minimum:
            self.minimum = x
        if x > self.maximum:
            self.maximum = x

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Upper bound of the bucket holding the ``q``-quantile.

        A conservative estimate (never understates): accurate to one
        log2 bucket, which is what a fixed-memory histogram buys.
        Returns 0.0 when empty.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if self.count == 0:
            return 0.0
        rank = q * self.count
        seen = 0
        for index, bucket_count in enumerate(self.counts):
            seen += bucket_count
            if seen >= rank and bucket_count:
                return min(self.bucket_upper_bound(index), self.maximum)
        return self.maximum

    def quantile_bounds(self, q: float) -> tuple[float, float]:
        """``(lo, hi)`` bounds containing the true ``q``-quantile.

        ``hi`` is :meth:`quantile` (the conservative upper edge); ``lo``
        is the bucket's lower edge (one octave down), clamped to the
        observed minimum.  Degenerate cases are exact: an empty
        histogram answers ``(0.0, 0.0)`` and a single-valued one (min ==
        max) answers the value itself with zero width — so a diff
        between two exact histograms cannot hide behind bucket slop.
        """
        if self.count == 0:
            return (0.0, 0.0)
        if self.minimum == self.maximum:
            return (self.maximum, self.maximum)
        high = self.quantile(q)
        if high <= 0.0:
            # Underflow bucket: only the exact minimum is known.
            return (min(self.minimum, high), high)
        if high <= self.bucket_upper_bound(0):
            # Bucket 0 spans (-inf, 2^LOG_BUCKET_LOW] — many octaves —
            # so "one octave down" would overstate the floor; the
            # observed minimum is the only honest lower edge.
            return (min(self.minimum, high), high)
        low = max(high / 2.0, self.minimum)
        return (min(low, high), high)

    def merge(self, other: "LogHistogram") -> None:
        """Fold another histogram (same fixed buckets) into this one."""
        for index, bucket_count in enumerate(other.counts):
            self.counts[index] += bucket_count
        self.count += other.count
        self.total += other.total
        self.minimum = min(self.minimum, other.minimum)
        self.maximum = max(self.maximum, other.maximum)

    def as_dict(self) -> dict[str, Any]:
        return {
            "count": self.count,
            "total": self.total,
            "min": self.minimum if self.count else 0.0,
            "max": self.maximum if self.count else 0.0,
            "mean": self.mean,
            "p50": self.quantile(0.5),
            "p99": self.quantile(0.99),
            # Sparse encoding: only occupied buckets, index -> count.
            "buckets": {
                str(i): c for i, c in enumerate(self.counts) if c
            },
        }

    @classmethod
    def from_dict(cls, name: str, data: Mapping[str, Any]) -> "LogHistogram":
        """Rebuild from :meth:`as_dict` output (exact round-trip — the
        derived fields are recomputed, not trusted).

        Tolerates payloads missing ``min``/``max`` (hand-trimmed or
        older exports): the extremes are derived from the occupied
        bucket edges, which keeps them honest bounds — the derived min
        never overstates, the derived max never understates — so
        quantiles and diff bounds stay conservative.
        """
        histogram = cls(name)
        for index, bucket_count in data.get("buckets", {}).items():
            histogram.counts[int(index)] = int(bucket_count)
        histogram.count = int(data.get("count", 0))
        histogram.total = float(data.get("total", 0.0))
        if histogram.count:
            occupied = [i for i, c in enumerate(histogram.counts) if c]
            if "min" in data:
                histogram.minimum = float(data["min"])
            elif occupied:
                lowest = occupied[0]
                histogram.minimum = (
                    0.0 if lowest == 0
                    else 2.0 ** (LOG_BUCKET_LOW + lowest - 1)
                )
            else:
                histogram.minimum = 0.0
            if "max" in data:
                histogram.maximum = float(data["max"])
            elif occupied:
                upper = cls.bucket_upper_bound(occupied[-1])
                histogram.maximum = (
                    upper if math.isfinite(upper)
                    else max(histogram.total, histogram.minimum)
                )
            else:
                histogram.maximum = histogram.minimum
        return histogram


class _Registry:
    """The shared instrument tables behind a hub and all its sub-hubs."""

    __slots__ = ("counters", "gauges", "ewmas", "histograms", "series", "labels")

    def __init__(self) -> None:
        self.counters: dict[str, HubCounter] = {}
        self.gauges: dict[str, Gauge] = {}
        self.ewmas: dict[str, EwmaGauge] = {}
        self.histograms: dict[str, LogHistogram] = {}
        self.series: dict[str, TimeSeries] = {}
        self.labels: list[str] = []


def split_label(name: str) -> tuple[str, str]:
    """Split a registered name into ``(label, base)``.

    ``"sa3/loss_ewma"`` -> ``("sa3", "loss_ewma")``; an unlabeled name
    has label ``""``.  Nested labels keep everything before the final
    separator (``"gw/sa3/x"`` -> ``("gw/sa3", "x")``).
    """
    label, sep, base = name.rpartition("/")
    if not sep:
        return "", name
    return label, base


class MetricsHub:
    """The run-wide metric registry (see module docstring).

    Args:
        name: run label carried into the manifest (purely descriptive).

    Sub-hubs share the root's registry; only the name prefix differs.
    ``enabled`` is a plain class attribute so the *null* subclass can pin
    it — wiring code checks it once at build time and attaches nothing
    when it is False.
    """

    enabled = True

    def __init__(self, name: str = "") -> None:
        self.name = name
        self._registry = _Registry()
        self._prefix = ""

    # ------------------------------------------------------------------
    # Sub-hubs (labels)
    # ------------------------------------------------------------------
    def sub(self, label: str) -> "MetricsHub":
        """A view of this hub with every name prefixed ``"<label>/"``."""
        if not label or "/" in label:
            raise ValueError(f"label must be non-empty and '/'-free, got {label!r}")
        child = MetricsHub.__new__(MetricsHub)
        child.name = self.name
        child._registry = self._registry
        child._prefix = f"{self._prefix}{label}/"
        full = child._prefix[:-1]
        if full not in self._registry.labels:
            self._registry.labels.append(full)
        return child

    @property
    def label(self) -> str:
        """This hub's label prefix ('' for the root)."""
        return self._prefix[:-1] if self._prefix else ""

    @property
    def labels(self) -> list[str]:
        """Every label registered under the root, in creation order."""
        return list(self._registry.labels)

    # ------------------------------------------------------------------
    # Instrument factories (get-or-create by name)
    # ------------------------------------------------------------------
    def counter(self, name: str) -> HubCounter:
        full = self._prefix + name
        table = self._registry.counters
        found = table.get(full)
        if found is None:
            found = table[full] = HubCounter(full)
        return found

    def gauge(self, name: str) -> Gauge:
        full = self._prefix + name
        table = self._registry.gauges
        found = table.get(full)
        if found is None:
            found = table[full] = Gauge(full)
        return found

    def ewma(self, name: str, alpha: float = DEFAULT_EWMA_ALPHA) -> EwmaGauge:
        full = self._prefix + name
        table = self._registry.ewmas
        found = table.get(full)
        if found is None:
            found = table[full] = EwmaGauge(full, alpha=alpha)
        return found

    def histogram(self, name: str) -> LogHistogram:
        full = self._prefix + name
        table = self._registry.histograms
        found = table.get(full)
        if found is None:
            found = table[full] = LogHistogram(full)
        return found

    def series(self, name: str) -> TimeSeries:
        full = self._prefix + name
        table = self._registry.series
        found = table.get(full)
        if found is None:
            found = table[full] = TimeSeries(full)
        return found

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------
    def iter_instruments(self) -> Iterator[tuple[str, str, Any]]:
        """Yield ``(kind, name, instrument)`` for everything registered,
        sorted by name within each kind."""
        registry = self._registry
        for name in sorted(registry.counters):
            yield "counter", name, registry.counters[name]
        for name in sorted(registry.gauges):
            yield "gauge", name, registry.gauges[name]
        for name in sorted(registry.ewmas):
            yield "ewma", name, registry.ewmas[name]
        for name in sorted(registry.histograms):
            yield "histogram", name, registry.histograms[name]
        for name in sorted(registry.series):
            yield "series", name, registry.series[name]

    def as_dict(self) -> dict[str, Any]:
        """Full JSON-safe export of every registered instrument."""
        registry = self._registry
        return {
            "name": self.name,
            "labels": list(registry.labels),
            "counters": {
                name: c.value for name, c in sorted(registry.counters.items())
            },
            "gauges": {
                name: g.value for name, g in sorted(registry.gauges.items())
            },
            "ewmas": {
                name: {"value": e.value, "alpha": e.alpha,
                       "observations": e.observations}
                for name, e in sorted(registry.ewmas.items())
            },
            "histograms": {
                name: h.as_dict()
                for name, h in sorted(registry.histograms.items())
            },
            "series": {
                name: [list(sample) for sample in ts.samples]
                for name, ts in sorted(registry.series.items())
            },
        }

    def rollup(self) -> dict[str, Any]:
        """Label fan-in: sum per-label instruments into their base names.

        Counters sum; gauges and EWMA gauges report the max across
        labels (the fleet-health question is "how bad is the worst
        SA"); histograms merge bucket-wise.  Unlabeled instruments pass
        through.  The result is JSON-safe and is what the fleet runner
        stores per task.
        """
        counters: dict[str, int] = {}
        for name, counter in self._registry.counters.items():
            base = split_label(name)[1]
            counters[base] = counters.get(base, 0) + counter.value
        worst: dict[str, float] = {}
        for name, gauge in self._registry.gauges.items():
            base = split_label(name)[1]
            worst[base] = max(worst.get(base, -math.inf), gauge.value)
        for name, ewma in self._registry.ewmas.items():
            base = split_label(name)[1]
            worst[base] = max(worst.get(base, -math.inf), ewma.value)
        merged: dict[str, LogHistogram] = {}
        for name, histogram in self._registry.histograms.items():
            base = split_label(name)[1]
            if base not in merged:
                merged[base] = LogHistogram(base)
            merged[base].merge(histogram)
        return {
            "labels": len(self._registry.labels),
            "counters": dict(sorted(counters.items())),
            "worst_gauges": dict(sorted(worst.items())),
            "histograms": {
                name: merged[name].as_dict() for name in sorted(merged)
            },
        }


class _NullInstrument:
    """One shared do-nothing instrument standing in for every kind."""

    __slots__ = ()
    name = ""
    value = 0
    count = 0
    alpha = DEFAULT_EWMA_ALPHA
    observations = 0

    def inc(self, amount: int = 1) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, x: float) -> None:
        pass

    def sample(self, time: float, value: float) -> None:
        pass


_NULL_INSTRUMENT = _NullInstrument()


class NullHub(MetricsHub):
    """The disabled hub — pinned off, shared no-op instruments.

    ``enabled`` refuses to flip on (silently dropping a run's metrics
    after components already skipped probe attachment would be worse
    than an error).  All factories return one shared null instrument;
    ``sub`` returns ``self``; exports are empty.  One instance
    (:data:`NULL_HUB`) serves every disabled run in the process.
    """

    def __init__(self) -> None:
        super().__init__(name="null")

    @property
    def enabled(self) -> bool:  # type: ignore[override]
        return False

    @enabled.setter
    def enabled(self, value: bool) -> None:
        if value:
            raise ValueError(
                "NullHub cannot be enabled; build the run with a real "
                "MetricsHub instead"
            )

    def sub(self, label: str) -> "MetricsHub":
        return self

    def counter(self, name: str) -> HubCounter:  # type: ignore[override]
        return _NULL_INSTRUMENT  # type: ignore[return-value]

    def gauge(self, name: str) -> Gauge:  # type: ignore[override]
        return _NULL_INSTRUMENT  # type: ignore[return-value]

    def ewma(self, name: str, alpha: float = DEFAULT_EWMA_ALPHA) -> EwmaGauge:  # type: ignore[override]
        return _NULL_INSTRUMENT  # type: ignore[return-value]

    def histogram(self, name: str) -> LogHistogram:  # type: ignore[override]
        return _NULL_INSTRUMENT  # type: ignore[return-value]

    def series(self, name: str) -> TimeSeries:  # type: ignore[override]
        return _NULL_INSTRUMENT  # type: ignore[return-value]


#: Shared disabled hub (stateless, so one instance serves every run).
NULL_HUB = NullHub()

#: The ambient hub batch drivers install around scenario execution.
_default_hub: MetricsHub = NULL_HUB


def default_hub() -> MetricsHub:
    """The hub ``build_protocol`` / ``Gateway`` use when none is passed."""
    return _default_hub


def merge_rollups(rollups: Iterable[Mapping[str, Any]]) -> dict[str, Any]:
    """Fold per-task :meth:`MetricsHub.rollup` dicts into one aggregate.

    The campaign-level reduction the fleet runner applies over every
    executed task: counters sum, worst-gauges take the max (worst task
    wins), histograms merge bucket-wise via the fixed shared buckets.
    ``tasks`` counts the rollups folded in; a rollup that is itself a
    merge contributes its own ``tasks`` count, so the fold is
    associative — incremental consumers (the progress stream's
    snapshots) can merge merged outputs without double counting.
    """
    merged: dict[str, Any] = {
        "tasks": 0, "labels": 0, "counters": {}, "worst_gauges": {},
    }
    histograms: dict[str, LogHistogram] = {}
    for rollup in rollups:
        merged["tasks"] += rollup.get("tasks", 1)
        merged["labels"] += rollup.get("labels", 0)
        for name, value in rollup.get("counters", {}).items():
            merged["counters"][name] = merged["counters"].get(name, 0) + value
        for name, value in rollup.get("worst_gauges", {}).items():
            merged["worst_gauges"][name] = max(
                merged["worst_gauges"].get(name, -math.inf), value
            )
        for name, data in rollup.get("histograms", {}).items():
            incoming = LogHistogram.from_dict(name, data)
            if name in histograms:
                histograms[name].merge(incoming)
            else:
                histograms[name] = incoming
    merged["counters"] = dict(sorted(merged["counters"].items()))
    merged["worst_gauges"] = dict(sorted(merged["worst_gauges"].items()))
    merged["histograms"] = {
        name: histograms[name].as_dict() for name in sorted(histograms)
    }
    return merged


@contextmanager
def use_hub(hub: MetricsHub) -> Iterator[MetricsHub]:
    """Install ``hub`` as the ambient default for the ``with`` block.

    This is how the fleet runner reaches engines built deep inside
    scenario helpers without threading a ``hub`` argument through every
    scenario signature.  Not async/thread-safe — the fleet's workers are
    processes, so a module global is exactly as shared as it should be.
    """
    global _default_hub
    previous = _default_hub
    _default_hub = hub
    try:
        yield hub
    finally:
        _default_hub = previous
