"""Multi-signal health classification (the controller's decision input).

The wanctl production pattern (SNIPPETS Snippet 1): a link's health is a
small state — GREEN / YELLOW / RED — derived from *several* independent
signals with voting, never from a single noisy one.  ``repro.control``
will run this classification per SA inside its state machine; the ``obs``
CLI runs it over a finished run's exported metrics to render the health
summary table.

Signals (all produced by :class:`~repro.obs.probe.HealthProbe`):

====================  =========================================
``loss_ewma``         smoothed link loss fraction
``save_queue_depth``  peak in-flight SAVEs
``recovery_p99``      p99 reset-to-resume latency (seconds)
``replay_discards``   window rejections over the run
====================  =========================================

Voting rule (:func:`classify`): any signal at its YELLOW threshold makes
the state at least YELLOW; RED requires ``red_votes`` signals (default
2) at their RED thresholds — one saturated signal alone cannot declare
an SA dead, which is the anti-flap property wanctl ships with.  A
single RED vote still reports YELLOW.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any, Mapping

from repro.obs.hub import split_label


class HealthState(enum.IntEnum):
    """Ordered health states (higher is worse)."""

    GREEN = 0
    YELLOW = 1
    RED = 2

    @property
    def label(self) -> str:
        return self.name


@dataclass(frozen=True)
class HealthThresholds:
    """(yellow, red) boundaries per signal; values >= boundary trip it.

    Defaults are sized for the paper's constants (t_save = 100 us,
    t_send = 4 us): a healthy SA sees zero queueing beyond one in-flight
    SAVE and recovers within a couple of t_save.
    """

    loss: tuple[float, float] = (0.02, 0.20)
    save_queue_depth: tuple[float, float] = (2.0, 6.0)
    recovery_p99: tuple[float, float] = (5e-4, 5e-3)
    replay_discards: tuple[float, float] = (1.0, 100.0)

    def for_signal(self, name: str) -> tuple[float, float] | None:
        return {
            "loss_ewma": self.loss,
            "save_queue_depth": self.save_queue_depth,
            "recovery_p99": self.recovery_p99,
            "replay_discards": self.replay_discards,
        }.get(name)


DEFAULT_THRESHOLDS = HealthThresholds()


def signal_level(value: float, yellow: float, red: float) -> HealthState:
    """Classify one signal value against its (yellow, red) boundaries."""
    if value >= red:
        return HealthState.RED
    if value >= yellow:
        return HealthState.YELLOW
    return HealthState.GREEN


def vote(levels: list[HealthState], red_votes: int = 2) -> HealthState:
    """Fold per-signal levels into one state (the anti-flap rule).

    Any YELLOW-or-worse level makes the state at least YELLOW; RED
    requires ``red_votes`` RED levels.  Shared by :func:`classify` and
    the live dashboard's worker-health column, so both vote identically.
    """
    if levels.count(HealthState.RED) >= red_votes:
        return HealthState.RED
    if any(level >= HealthState.YELLOW for level in levels):
        return HealthState.YELLOW
    return HealthState.GREEN


def classify(
    signals: Mapping[str, float],
    thresholds: HealthThresholds = DEFAULT_THRESHOLDS,
    red_votes: int = 2,
) -> HealthState:
    """Vote the per-signal levels into one state (see module docstring).

    Signals without a configured threshold are ignored, so callers can
    pass a full signal row unfiltered.
    """
    levels = []
    for name, value in signals.items():
        bounds = thresholds.for_signal(name)
        if bounds is not None:
            levels.append(signal_level(value, *bounds))
    return vote(levels, red_votes=red_votes)


# ----------------------------------------------------------------------
# Health rows from an exported metrics dict
# ----------------------------------------------------------------------
def _labels_in(export: Mapping[str, Any]) -> list[str]:
    """The labels a metrics export actually carries signals for."""
    labels = list(export.get("labels", ()))
    if not labels:
        # Single-pair run: the probe published unlabeled.
        return [""]
    return labels


def health_rows(
    export: Mapping[str, Any],
    thresholds: HealthThresholds = DEFAULT_THRESHOLDS,
) -> list[dict[str, Any]]:
    """One signal row per label from a hub export
    (:meth:`~repro.obs.hub.MetricsHub.as_dict` shape, or the same dict
    read back from a metrics JSONL file).

    Each row carries the four classified signals, supporting context
    (reset count, path transitions), and the voted ``state``.
    """
    counters = export.get("counters", {})
    gauges = export.get("gauges", {})
    ewmas = export.get("ewmas", {})
    histograms = export.get("histograms", {})
    series = export.get("series", {})

    def prefixed(label: str, base: str) -> str:
        return f"{label}/{base}" if label else base

    rows: list[dict[str, Any]] = []
    pool_hit_rate = _pool_hit_rate(gauges)
    for label in _labels_in(export):
        ewma = ewmas.get(prefixed(label, "loss_ewma"), {})
        recovery = histograms.get(prefixed(label, "recovery_latency"), {})
        depth_samples = series.get(prefixed(label, "save_queue_depth"), [])
        peak_depth = max(
            (value for _, value in depth_samples),
            default=gauges.get(prefixed(label, "save_queue_depth"), 0.0),
        )
        signals = {
            "loss_ewma": ewma.get("value", 0.0),
            "save_queue_depth": peak_depth,
            "recovery_p99": recovery.get("p99", 0.0),
            "replay_discards": counters.get(prefixed(label, "replay_discards"), 0),
        }
        rows.append({
            "label": label or "-",
            **signals,
            "resets": counters.get(prefixed(label, "resets"), 0),
            "recoveries": recovery.get("count", 0),
            "path_transitions": gauges.get(prefixed(label, "path_transitions"), 0.0),
            "pool_hit_rate": pool_hit_rate,
            "state": classify(signals, thresholds).label,
        })
    return rows


def _pool_hit_rate(gauges: Mapping[str, Any]) -> float | None:
    """Event-pool free-list hit rate from the EventCoreProbe gauges.

    The probe publishes ``engine/pool_hits`` / ``engine/pool_misses``
    run-wide (the event core is shared by every SA on the engine), so
    the rate is one number per export — ``None`` when the probe never
    sampled (pre-PR-7 exports, or a run without an engine probe).
    """
    hits = gauges.get("engine/pool_hits")
    misses = gauges.get("engine/pool_misses")
    if hits is None and misses is None:
        return None
    total = (hits or 0.0) + (misses or 0.0)
    if total <= 0.0:
        return 0.0
    return (hits or 0.0) / total


def render_health_table(rows: list[dict[str, Any]]) -> str:
    """The ``python -m repro obs`` health table, one line per label."""
    header = (
        f"{'sa':<8} {'state':<7} {'loss_ewma':>9} {'queue_pk':>8} "
        f"{'rec_p99_us':>10} {'discards':>8} {'resets':>6} {'path_tr':>7} "
        f"{'pool_hit%':>9}"
    )
    lines = [header, "-" * len(header)]
    for row in rows:
        rate = row.get("pool_hit_rate")
        pool = f"{rate * 100.0:>9.1f}" if rate is not None else f"{'-':>9}"
        lines.append(
            f"{row['label']:<8} {row['state']:<7} "
            f"{row['loss_ewma']:>9.4f} {row['save_queue_depth']:>8.0f} "
            f"{row['recovery_p99'] * 1e6:>10.1f} {row['replay_discards']:>8} "
            f"{row['resets']:>6} {row['path_transitions']:>7.0f} {pool}"
        )
    states = [row["state"] for row in rows]
    summary = ", ".join(
        f"{states.count(state.label)} {state.label}"
        for state in HealthState
        if states.count(state.label)
    ) or "no SAs"
    lines.append(f"overall: {summary}")
    return "\n".join(lines)
