"""The sampling engine process: periodic gauge snapshots.

A :class:`Sampler` is the one piece of the observability layer that
lives *inside* the simulation: an engine-scheduled tick that asks every
registered probe to :meth:`sample` and records two engine-level series
(pending events, events processed).  Gauges become time series here —
nothing else in the system turns levels into timelines.

Lifecycle rules, chosen so a sampler can never wedge a run:

* Ticks are scheduled at :data:`~repro.sim.events.PRIORITY_LATE`, so a
  sample taken at time *t* observes the state *after* every protocol
  event at *t* has fired.
* A tick that finds the rest of the event queue empty takes its final
  sample and does **not** re-arm: an ``engine.run()`` with no horizon
  still terminates, and a ``run(until=...)`` leaves at most one armed
  tick behind.
* Sampling only reads component state.  The protocol outcome of a
  sampled run is identical to an unsampled one — only
  ``events_processed`` differs (the ticks themselves).
"""

from __future__ import annotations

from typing import Any

from repro.obs.hub import MetricsHub
from repro.sim.engine import Engine
from repro.sim.events import PRIORITY_LATE
from repro.sim.process import SimProcess
from repro.util.validation import check_positive

#: Default sampling period: 25 paper-rate messages (t_send = 4 us), so a
#: millisecond of simulated time yields 10 points per series.
DEFAULT_SAMPLE_INTERVAL = 1e-4


class Sampler(SimProcess):
    """Periodic snapshotting of probes into hub time series.

    Args:
        engine: the simulation engine (one sampler per engine).
        hub: the root hub receiving the engine-level series.
        interval: simulated seconds between ticks.
    """

    def __init__(
        self,
        engine: Engine,
        hub: MetricsHub,
        interval: float = DEFAULT_SAMPLE_INTERVAL,
        name: str = "obs:sampler",
    ) -> None:
        super().__init__(engine, name)
        check_positive("interval", interval)
        self.hub = hub
        self.interval = interval
        self.samples_taken = 0
        self._probes: list[Any] = []
        self._event = None
        self._running = False
        self._pending_series = hub.series("engine/pending_events")
        self._processed_series = hub.series("engine/events_processed")

    # ------------------------------------------------------------------
    # Probe registry
    # ------------------------------------------------------------------
    def register(self, probe: Any) -> None:
        """Add a probe (anything with ``sample(now)``) to the tick."""
        self._probes.append(probe)

    @property
    def probes(self) -> tuple[Any, ...]:
        return tuple(self._probes)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @property
    def running(self) -> bool:
        """Whether a tick is armed."""
        return self._running

    def start(self, first_delay: float | None = None) -> None:
        """Arm the periodic tick (first sample after ``first_delay``,
        default one interval)."""
        self.stop()
        self._running = True
        delay = self.interval if first_delay is None else first_delay
        self._event = self.engine.call_later(
            delay, self._tick, priority=PRIORITY_LATE
        )

    def stop(self) -> None:
        """Disarm the tick (safe when not running)."""
        self._running = False
        if self._event is not None:
            self._event.cancel()
            self._event = None

    def sample_now(self) -> None:
        """Take one snapshot immediately (also usable while stopped —
        drivers call this after the horizon for a closing data point)."""
        now = self.engine.now
        self.samples_taken += 1
        for probe in self._probes:
            probe.sample(now)
        self._pending_series.sample(now, self.engine.pending_events)
        self._processed_series.sample(now, self.engine.events_processed)

    def _tick(self) -> None:
        self._event = None
        self.sample_now()
        if not self._running:
            return
        if self.engine.pending_events == 0:
            # This tick was the only thing left: the simulation is done.
            # Not re-arming is what lets an un-horizoned run() drain.
            self._running = False
            return
        self._event = self.engine.call_later(
            self.interval, self._tick, priority=PRIORITY_LATE
        )
