"""``repro top``: a refreshing terminal dashboard over a progress ledger.

The dashboard is a pure function of a :class:`~repro.obs.stream.CampaignView`
(:func:`render_dashboard`), which is itself a pure fold of the ledger —
so the same frame renders from a live ``progress.jsonl`` being appended
by a running fleet, from the finished file after the run, or from the
torn ledger a ``kill -9`` left behind.  The follow loop tails the file
incrementally (:class:`~repro.obs.stream.LedgerTail`); nothing here
talks to the runner.

Worker health reuses the GREEN/YELLOW/RED machinery from
:mod:`repro.obs.health` — per-signal :func:`~repro.obs.health.signal_level`
plus the same anti-flap :func:`~repro.obs.health.vote` — over
liveness-flavored signals: heartbeat age, error count, and how far the
current task has run past the campaign's mean wall time.
"""

from __future__ import annotations

import time
from pathlib import Path
from typing import Any, Mapping, TextIO

from repro.obs.health import HealthState, signal_level, vote
from repro.obs.stream import CampaignView, LedgerTail, WorkerStatus

__all__ = [
    "WORKER_THRESHOLDS",
    "find_ledger",
    "render_dashboard",
    "run_top",
    "worker_health",
]

#: (yellow, red) boundaries per worker signal; values >= boundary trip.
#: ``heartbeat_age`` is seconds since the worker's last event,
#: ``errors`` its errored-task count, ``stall_factor`` the current
#: task's runtime as a multiple of the campaign mean wall time.
WORKER_THRESHOLDS: Mapping[str, tuple[float, float]] = {
    "heartbeat_age": (15.0, 60.0),
    "errors": (1.0, 5.0),
    "stall_factor": (5.0, 25.0),
}

#: Screen reset: clear + home.  Written once per follow-mode frame.
ANSI_CLEAR = "\x1b[2J\x1b[H"


def worker_health(
    worker: WorkerStatus, view: CampaignView, now: float
) -> HealthState:
    """Vote a worker's liveness signals into GREEN/YELLOW/RED.

    A finished campaign's workers are all GREEN by definition — their
    silence is completion, not wedging.
    """
    if view.finished:
        return HealthState.GREEN
    signals = {
        "heartbeat_age": max(0.0, now - worker.last_seen),
        "errors": float(worker.errors),
        "stall_factor": _stall_factor(worker, view, now),
    }
    levels = [
        signal_level(value, *WORKER_THRESHOLDS[name])
        for name, value in signals.items()
    ]
    return vote(levels)


def _stall_factor(
    worker: WorkerStatus, view: CampaignView, now: float
) -> float:
    if worker.current_task is None:
        return 0.0
    mean = view.mean_wall_time()
    if mean <= 0.0:
        return 0.0
    return max(0.0, now - worker.task_started_at) / mean


def _format_duration(seconds: float) -> str:
    seconds = max(0.0, seconds)
    if seconds < 60.0:
        return f"{seconds:.0f}s"
    minutes, secs = divmod(int(seconds), 60)
    if minutes < 60:
        return f"{minutes}m{secs:02d}s"
    hours, minutes = divmod(minutes, 60)
    return f"{hours}h{minutes:02d}m"


def _format_bytes(count: float) -> str:
    value = float(count)
    for unit in ("B", "KiB", "MiB", "GiB"):
        if value < 1024.0 or unit == "GiB":
            return f"{value:.0f}{unit}" if unit == "B" else f"{value:.1f}{unit}"
        value /= 1024.0
    return f"{value:.1f}GiB"


def render_dashboard(view: CampaignView, now: float | None = None) -> str:
    """Render one dashboard frame from a campaign view.

    ``now`` defaults to the view's last event time, which is what makes
    a replayed finished ledger render *identically* to the live frame
    the runner's watcher drew at that same event — the acceptance
    property ``repro top`` is pinned by.
    """
    if now is None:
        now = view.last_time
    status = "FINISHED" if view.finished else "RUNNING"
    done, total = view.done, view.total
    percent = (100.0 * done / total) if total else 0.0
    lines = [
        f"campaign {view.campaign or '?'}  [{status}]"
        f"  jobs={view.jobs}  runs={view.runs}",
        f"tasks  {done}/{total} ({percent:.1f}%)  errors={view.errors}"
        f"  skipped={view.skipped}  running={len(view.running)}"
        + (f"  recovered={len(view.recovered)}" if view.recovered else ""),
    ]
    rate = view.throughput()
    eta = view.eta_seconds()
    lines.append(
        f"rate   {rate:.2f} tasks/s"
        f"  eta {_format_duration(eta) if eta is not None else '-'}"
        f"  mean wall {view.mean_wall_time():.3f}s"
    )
    if view.workers:
        lines.append("")
        lines.append(
            f"{'worker':<12} {'state':<7} {'done':>5} {'err':>4} "
            f"{'cpu_s':>8} {'rss':>9} {'age':>6}  current"
        )
        for name in sorted(view.workers):
            worker = view.workers[name]
            state = worker_health(worker, view, now)
            age = max(0.0, now - worker.last_seen)
            lines.append(
                f"{name:<12} {state.label:<7} {worker.tasks_done:>5} "
                f"{worker.errors:>4} {worker.cpu_time:>8.2f} "
                f"{_format_bytes(worker.rss_bytes):>9} "
                f"{_format_duration(age):>6}  {worker.current_task or '-'}"
            )
    outliers = view.worst_outliers()
    if outliers:
        lines.append("")
        lines.append("worst tasks (wall_s  task_id)")
        for wall, task_id in outliers:
            lines.append(f"  {wall:>8.3f}  {task_id}")
    if view.errored:
        lines.append("")
        lines.append("errored tasks")
        for task_id in sorted(view.errored)[:5]:
            message = view.errored[task_id]
            lines.append(f"  {task_id}: {message[:80]}")
        if len(view.errored) > 5:
            lines.append(f"  ... and {len(view.errored) - 5} more")
    return "\n".join(lines)


def find_ledger(run_dir: str | Path) -> Path:
    """Resolve a ``repro top`` argument to a ledger file.

    Accepts the ledger path itself, a campaign out dir containing
    ``progress.jsonl``, or a parent holding exactly one such dir.
    """
    path = Path(run_dir)
    if path.is_file():
        return path
    candidate = path / "progress.jsonl"
    if candidate.exists():
        return candidate
    matches = sorted(path.glob("*/progress.jsonl")) if path.is_dir() else []
    if len(matches) == 1:
        return matches[0]
    raise FileNotFoundError(
        f"no progress.jsonl under {path} (was the run streamed? "
        f"pass --stream/--watch to fleet, or point at the ledger file)"
    )


def run_top(
    run_dir: str | Path,
    follow: bool = True,
    refresh: float = 1.0,
    once: bool = False,
    out: TextIO | None = None,
    max_frames: int | None = None,
) -> CampaignView:
    """Render the dashboard for a run directory; returns the final view.

    ``once`` (or ``follow=False``) renders a single frame from the
    ledger as it stands.  Follow mode clears the screen and re-renders
    every ``refresh`` seconds until the ledger says
    ``campaign_finished`` (or the user interrupts).  ``max_frames``
    bounds the loop for tests.
    """
    import sys

    stream = out if out is not None else sys.stdout
    ledger = find_ledger(run_dir)
    if once or not follow:
        view = CampaignView.replay(ledger)
        print(render_dashboard(view), file=stream)
        return view
    view = CampaignView()
    tail = LedgerTail(ledger)
    frames = 0
    try:
        while True:
            for event in tail.poll():
                view.fold(event)
            stream.write(ANSI_CLEAR)
            # Live frames age heartbeats against the wall clock so a
            # wedged worker visibly goes YELLOW/RED between events.
            print(
                render_dashboard(
                    view, now=None if view.finished else time.time()
                ),
                file=stream,
            )
            stream.flush()
            frames += 1
            if view.finished:
                break
            if max_frames is not None and frames >= max_frames:
                break
            time.sleep(refresh)
    except KeyboardInterrupt:
        pass
    return view


def render_ledger(path: str | Path) -> str:
    """One-shot render of a ledger file (helper for tests and callers)."""
    return render_dashboard(CampaignView.replay(path))


def dashboard_state(view: CampaignView) -> dict[str, Any]:
    """JSON-safe dashboard summary (what ``--json`` consumers read)."""
    now = view.last_time
    return {
        **view.as_dict(),
        "eta_seconds": view.eta_seconds(),
        "worst_tasks": [
            {"wall_time": wall, "task_id": task_id}
            for wall, task_id in view.worst_outliers()
        ],
        "worker_health": {
            name: worker_health(worker, view, now).label
            for name, worker in sorted(view.workers.items())
        },
    }
