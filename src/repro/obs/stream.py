"""Streaming campaign telemetry: progress events, ledger, live view.

PR 6 made runs inspectable *after the fact*; this module is the live
signal plane: while a campaign executes, the fleet emits
schema-versioned **progress events** (:data:`PROGRESS_SCHEMA`) — the
parent announcing the campaign and folding finished tasks, workers
announcing task starts and heartbeats — and every event is appended to
a durable ``progress.jsonl`` **ledger** before it is folded into the
in-memory :class:`CampaignView` (persist-before-fold, the event-ledger
discipline of the crash-recovery design the ROADMAP's ``repro serve``
daemon will reuse).  Kill the run at any instant and the ledger replays
to the exact last acknowledged state; resume reconciles the ledger
against the healed result store, so the replayed view and the store
never disagree about which tasks completed.

The ordering contract the exactness guarantee rests on: the runner
appends a task's record to the **result store first**, then appends the
``task_finished`` event to the ledger, then folds, then calls the
progress callback.  A ledger ``task_finished`` therefore implies a
durable store record; the converse can lag by at most the record in
flight at the kill, and :meth:`CampaignStream.open`'s reconciliation
scan (store completions missing from the replayed ledger become
``recovered`` events) closes that gap on the next start.

Three consumers fold the same events: the runner's live view (behind
``fleet --watch``), ``python -m repro top`` tailing the file, and any
post-mortem replay of a finished — or killed — campaign.
"""

from __future__ import annotations

import heapq
import json
import logging
from collections import deque
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterator, Mapping

from repro.obs.hub import merge_rollups
from repro.util.jsonl import iter_jsonl_objects, salvage_objects

__all__ = [
    "EVENT_KINDS",
    "PROGRESS_SCHEMA",
    "CampaignStream",
    "CampaignView",
    "LedgerTail",
    "ProgressEvent",
    "ProgressLedger",
    "StreamConfig",
    "WorkerStatus",
    "read_ledger",
]

logger = logging.getLogger(__name__)

#: Progress-event schema tag (bump on breaking shape changes).
PROGRESS_SCHEMA = "repro.obs/progress@1"

#: Every event kind a ledger line may carry.
EVENT_KINDS = (
    "campaign_started",
    "task_started",
    "task_finished",
    "task_errored",
    "worker_heartbeat",
    "snapshot",
    "campaign_finished",
)

#: Worst-outlier list size the view maintains (slowest tasks so far).
OUTLIER_KEEP = 5

#: Sliding window (finished tasks) the throughput estimate derives from.
THROUGHPUT_WINDOW = 64


@dataclass(frozen=True)
class ProgressEvent:
    """One schema-versioned line of the progress ledger.

    Attributes:
        kind: one of :data:`EVENT_KINDS`.
        time: wall-clock unix timestamp of the emission.
        worker: emitting worker name (``""`` for the parent process).
        task_id: the task the event concerns (task-scoped kinds only).
        data: kind-specific payload (JSON-safe).
    """

    kind: str
    time: float
    worker: str = ""
    task_id: str | None = None
    data: dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> dict[str, Any]:
        line: dict[str, Any] = {"kind": self.kind, "time": self.time}
        if self.kind == "campaign_started":
            line["schema"] = PROGRESS_SCHEMA
        if self.worker:
            line["worker"] = self.worker
        if self.task_id is not None:
            line["task_id"] = self.task_id
        if self.data:
            line["data"] = self.data
        return line

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ProgressEvent":
        return cls(
            kind=data["kind"],
            time=float(data.get("time", 0.0)),
            worker=data.get("worker", ""),
            task_id=data.get("task_id"),
            data=dict(data.get("data", {})),
        )

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True,
                          separators=(",", ":"))


@dataclass(frozen=True)
class StreamConfig:
    """Everything the runner needs to stream a campaign.

    Attributes:
        ledger_path: the ``progress.jsonl`` location (beside the result
            store — see :func:`repro.fleet.results.progress_ledger_path`).
        heartbeat_interval: minimum wall seconds between a worker's
            heartbeat events (checked at task boundaries; a worker that
            stays silent longer than this is mid-task or wedged).
        snapshot_every: finished tasks between ``snapshot`` events (the
            periodic hub-rollup checkpoints; 0 disables them).
        flight_dir: where workers dump flight-recorder rings (``None``
            = the ledger's directory).
        flight_limit: flight-recorder ring capacity per worker.
        profile_dir: enable the slow-task cProfile hook and write pstats
            dumps here (``None`` = profiling off).
        profile_percentile: profile threshold — a task's wall time at or
            above this percentile of the worker's history gets its dump
            written.
        trace_malloc: also trace per-task allocations (tracemalloc) and
            publish the peak as a hub instrument.
    """

    ledger_path: Path
    heartbeat_interval: float = 5.0
    snapshot_every: int = 25
    flight_dir: Path | None = None
    flight_limit: int = 256
    profile_dir: Path | None = None
    profile_percentile: float = 0.95
    trace_malloc: bool = False

    def resolved_flight_dir(self) -> Path:
        return (Path(self.flight_dir) if self.flight_dir is not None
                else Path(self.ledger_path).parent)

    def worker_payload(self) -> dict[str, Any]:
        """The JSON-safe subset a pool worker needs (pickled once, at
        pool construction)."""
        return {
            "heartbeat_interval": self.heartbeat_interval,
            "flight_dir": str(self.resolved_flight_dir()),
            "flight_limit": self.flight_limit,
            "profile_dir": (str(self.profile_dir)
                            if self.profile_dir is not None else None),
            "profile_percentile": self.profile_percentile,
            "trace_malloc": self.trace_malloc,
        }


# ----------------------------------------------------------------------
# Ledger file
# ----------------------------------------------------------------------
class ProgressLedger:
    """Append-only JSONL progress ledger (one :class:`ProgressEvent` per
    line, ``campaign_started`` lines carrying the schema tag).

    Crash discipline mirrors the result store: appends flush per event,
    a dangling partial line from a previous kill is terminated before
    the first new append, and the replay path salvages torn lines
    instead of aborting at them.
    """

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._heal()
        self._handle = self.path.open("a", encoding="utf-8")

    def _heal(self) -> None:
        try:
            with self.path.open("rb") as handle:
                handle.seek(-1, 2)
                dangling = handle.read(1) != b"\n"
        except (FileNotFoundError, OSError):
            return
        if dangling:
            with self.path.open("a", encoding="utf-8") as handle:
                handle.write("\n")
            logger.warning("%s: healed a dangling partial line", self.path)

    def append(self, event: ProgressEvent) -> None:
        """Durably append one event (flushed before returning)."""
        self._handle.write(event.to_json() + "\n")
        self._handle.flush()

    def close(self) -> None:
        self._handle.close()


def read_ledger(
    path: str | Path, errors: list[str] | None = None
) -> Iterator[ProgressEvent]:
    """Replay a ledger file's events, salvaging torn lines.

    The same salvage-and-skip walk the result store heals with
    (:func:`repro.util.jsonl.iter_jsonl_objects`): a ``kill -9`` tears
    at most the final line, and that line loses only its torn fragment.
    Objects that are not progress events (no ``kind``) are skipped.
    """
    for data in iter_jsonl_objects(path, errors=errors):
        if not isinstance(data, Mapping) or "kind" not in data:
            if errors is not None:
                errors.append(f"{path}: skipping non-event object")
            continue
        yield ProgressEvent.from_dict(data)


class LedgerTail:
    """Incremental ledger reader for live followers (``repro top``).

    Keeps a byte offset and yields only events whose line is complete —
    a partially written tail line stays buffered until its newline
    arrives, so a live ``fleet --watch`` ledger and a finished one fold
    to the identical view.
    """

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self._offset = 0
        self._partial = ""

    def poll(self) -> list[ProgressEvent]:
        """Events appended since the previous poll (empty if none)."""
        try:
            with self.path.open("r", encoding="utf-8") as handle:
                handle.seek(self._offset)
                chunk = handle.read()
                self._offset = handle.tell()
        except FileNotFoundError:
            return []
        text = self._partial + chunk
        lines = text.split("\n")
        self._partial = lines.pop()  # "" when the chunk ended on a newline
        events: list[ProgressEvent] = []
        for line in lines:
            if not line.strip():
                continue
            values, _torn = salvage_objects(line)
            for value in values:
                if isinstance(value, Mapping) and "kind" in value:
                    events.append(ProgressEvent.from_dict(value))
        return events


# ----------------------------------------------------------------------
# Live campaign state
# ----------------------------------------------------------------------
@dataclass
class WorkerStatus:
    """What the view knows about one worker process."""

    name: str
    last_seen: float = 0.0
    current_task: str | None = None
    task_started_at: float = 0.0
    tasks_done: int = 0
    errors: int = 0
    cpu_user: float = 0.0
    cpu_system: float = 0.0
    rss_bytes: int = 0

    @property
    def cpu_time(self) -> float:
        return self.cpu_user + self.cpu_system

    def note_resources(self, resources: Mapping[str, Any]) -> None:
        self.cpu_user = float(resources.get("cpu_user", self.cpu_user))
        self.cpu_system = float(resources.get("cpu_system", self.cpu_system))
        self.rss_bytes = int(resources.get("rss_bytes", self.rss_bytes))


class CampaignView:
    """The fold of a progress-event stream: live campaign state.

    Pure function of the event sequence — replaying a ledger (in any
    state of completion) reconstructs exactly the view the emitting run
    held after its last acknowledged event.  ``completed`` tracks tasks
    with an ``ok`` record in the result store, and only those: the
    SIGKILL acceptance test pins ``view.completed ==
    store.completed_ids()``.
    """

    def __init__(self) -> None:
        self.campaign = ""
        self.schema = PROGRESS_SCHEMA
        self.total = 0
        self.skipped = 0
        self.jobs = 1
        self.runs = 0          # campaign_started folds (1 + resumes)
        self.finished = False  # campaign_finished seen
        self.completed: set[str] = set()
        self.recovered: set[str] = set()
        self.errored: dict[str, str] = {}
        self.running: dict[str, str] = {}   # task_id -> worker
        self.workers: dict[str, WorkerStatus] = {}
        self.started_time = 0.0
        self.last_time = 0.0
        self.events_folded = 0
        self.rollup: dict[str, Any] = {}
        self.wall_time_sum = 0.0
        self.wall_time_count = 0
        # Worst-so-far outliers: min-heap of (wall_time, task_id) so the
        # smallest of the kept outliers is evictable in O(log k).
        self._worst: list[tuple[float, str]] = []
        self._recent: deque[float] = deque(maxlen=THROUGHPUT_WINDOW)

    # ------------------------------------------------------------------
    # Folding
    # ------------------------------------------------------------------
    def fold(self, event: ProgressEvent) -> None:
        """Apply one event (events arrive in ledger order)."""
        self.events_folded += 1
        self.last_time = max(self.last_time, event.time)
        worker = self._worker(event) if event.worker else None
        kind = event.kind
        if kind == "campaign_started":
            self.runs += 1
            if self.runs == 1:
                self.started_time = event.time
            self.campaign = event.data.get("campaign", self.campaign)
            self.total = int(event.data.get("total", self.total))
            self.skipped = int(event.data.get("skipped", self.skipped))
            self.jobs = int(event.data.get("jobs", self.jobs))
            self.finished = False
        elif kind == "task_started":
            if event.task_id is not None:
                self.running[event.task_id] = event.worker
                if worker is not None:
                    worker.current_task = event.task_id
                    worker.task_started_at = event.time
        elif kind in ("task_finished", "task_errored"):
            self._fold_finished(event, worker)
        elif kind == "worker_heartbeat":
            pass  # the _worker() bookkeeping below is the whole effect
        elif kind == "snapshot":
            rollup = event.data.get("rollup")
            if rollup:
                self.rollup = dict(rollup)
        elif kind == "campaign_finished":
            self.finished = True
            self.running.clear()
            for status in self.workers.values():
                status.current_task = None
        if worker is not None:
            worker.last_seen = event.time
            resources = event.data.get("resources")
            if resources:
                worker.note_resources(resources)

    def _fold_finished(
        self, event: ProgressEvent, worker: WorkerStatus | None
    ) -> None:
        task_id = event.task_id
        if task_id is None:
            return
        run_by = self.running.pop(task_id, None)
        owner = worker
        if owner is None and run_by:
            owner = self.workers.get(run_by)
        if owner is not None:
            if owner.current_task == task_id:
                owner.current_task = None
            owner.tasks_done += 1
        if event.kind == "task_errored":
            self.errored[task_id] = event.data.get("error", "")
            if owner is not None:
                owner.errors += 1
        else:
            self.completed.add(task_id)
            self.errored.pop(task_id, None)
            if event.data.get("recovered"):
                self.recovered.add(task_id)
                return  # reconciliation, not a fresh completion
        wall = float(event.data.get("wall_time", 0.0))
        self.wall_time_sum += wall
        self.wall_time_count += 1
        self._recent.append(event.time)
        entry = (wall, task_id)
        if len(self._worst) < OUTLIER_KEEP:
            heapq.heappush(self._worst, entry)
        elif entry > self._worst[0]:
            heapq.heapreplace(self._worst, entry)

    def _worker(self, event: ProgressEvent) -> WorkerStatus:
        status = self.workers.get(event.worker)
        if status is None:
            status = self.workers[event.worker] = WorkerStatus(event.worker)
        return status

    @classmethod
    def replay(
        cls, path: str | Path, errors: list[str] | None = None
    ) -> "CampaignView":
        """Fold a ledger file (live or finished) into a fresh view."""
        view = cls()
        for event in read_ledger(path, errors=errors):
            view.fold(event)
        return view

    # ------------------------------------------------------------------
    # Derived state
    # ------------------------------------------------------------------
    @property
    def done(self) -> int:
        """Tasks with a durable ``ok`` record (resume hits included)."""
        return len(self.completed)

    @property
    def errors(self) -> int:
        """Tasks whose latest outcome is an error record."""
        return len(self.errored)

    @property
    def remaining(self) -> int:
        return max(0, self.total - self.done)

    def throughput(self) -> float:
        """Finished tasks per wall second over the recent window."""
        if len(self._recent) < 2:
            return 0.0
        span = self._recent[-1] - self._recent[0]
        if span <= 0.0:
            return 0.0
        return (len(self._recent) - 1) / span

    def eta_seconds(self) -> float | None:
        """Projected seconds to completion (None when unknowable)."""
        rate = self.throughput()
        if rate <= 0.0 or self.remaining == 0:
            return None
        return self.remaining / rate

    def mean_wall_time(self) -> float:
        if self.wall_time_count == 0:
            return 0.0
        return self.wall_time_sum / self.wall_time_count

    def worst_outliers(self) -> list[tuple[float, str]]:
        """The slowest finished tasks so far, worst first."""
        return sorted(self._worst, reverse=True)

    def as_dict(self) -> dict[str, Any]:
        """JSON-safe summary (the ``snapshot`` event payload shape)."""
        return {
            "campaign": self.campaign,
            "total": self.total,
            "done": self.done,
            "errors": self.errors,
            "skipped": self.skipped,
            "running": len(self.running),
            "workers": len(self.workers),
            "throughput": self.throughput(),
            "mean_wall_time": self.mean_wall_time(),
            "finished": self.finished,
        }


# ----------------------------------------------------------------------
# Persist-before-fold coupling
# ----------------------------------------------------------------------
class CampaignStream:
    """A ledger and its live view, coupled in the only safe order.

    :meth:`emit` appends to the durable ledger *first* and folds into
    the view second — a state the view (and therefore anything rendered
    from it) has acknowledged is always replayable from disk.
    """

    def __init__(self, ledger: ProgressLedger, view: CampaignView) -> None:
        self.ledger = ledger
        self.view = view

    @classmethod
    def open(
        cls,
        path: str | Path,
        completed_ids: set[str] | None = None,
        now: float = 0.0,
    ) -> "CampaignStream":
        """Open (or create) a campaign's stream, replaying any existing
        ledger and reconciling it against the result store.

        ``completed_ids`` is the healed store's truth.  Completions the
        store holds but the replayed ledger lacks (the record-in-flight
        gap of a previous kill) become ``task_finished`` events marked
        ``recovered`` — persisted immediately, so after ``open`` the
        ledger and the store agree exactly.  This is the recovery scan
        the ROADMAP's ``serve`` daemon will run on restart.
        """
        view = CampaignView.replay(path)
        stream = cls(ProgressLedger(path), view)
        if completed_ids is not None:
            for task_id in sorted(completed_ids - view.completed):
                stream.emit(ProgressEvent(
                    kind="task_finished", time=now, task_id=task_id,
                    data={"recovered": True},
                ))
        return stream

    def emit(self, event: ProgressEvent) -> None:
        """Persist, then fold (never the other way around)."""
        self.ledger.append(event)
        self.view.fold(event)

    def emit_snapshot(
        self, now: float, rollups: list[Mapping[str, Any]] | None = None
    ) -> None:
        """Append a periodic checkpoint: view summary + merged rollup."""
        data: dict[str, Any] = {"view": self.as_snapshot()}
        if rollups:
            merged = merge_rollups(
                ([self.view.rollup] if self.view.rollup else []) + rollups
            )
            data["rollup"] = merged
        self.emit(ProgressEvent(kind="snapshot", time=now, data=data))

    def as_snapshot(self) -> dict[str, Any]:
        return self.view.as_dict()

    def close(self) -> None:
        self.ledger.close()
