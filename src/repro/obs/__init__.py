"""repro.obs — unified observability: metrics hub, health probes, export.

The layer that turns a simulation into signals:

* :mod:`repro.obs.hub` — the :class:`MetricsHub` instrument registry
  (counters, gauges, EWMA gauges, log-bucket histograms, time series)
  with sub-hub label fan-in and the zero-overhead :class:`NullHub`.
* :mod:`repro.obs.probe` — pull-based per-SA :class:`HealthProbe` and
  the gateway's :class:`SharedStoreProbe` / :class:`EventCoreProbe`.
* :mod:`repro.obs.sampler` — the periodic :class:`Sampler` engine
  process snapshotting probes into time series.
* :mod:`repro.obs.health` — GREEN/YELLOW/RED multi-signal voting and
  the health summary table.
* :mod:`repro.obs.export` — metrics JSONL, run manifests, and Chrome
  trace-event rendering (open in https://ui.perfetto.dev).

``python -m repro obs`` is the CLI over all of it; ``repro.control``
(ROADMAP) is the next consumer.
"""

from repro.obs.export import (
    CHROME_TRACE_FILE,
    MANIFEST_FILE,
    MANIFEST_SCHEMA,
    METRICS_FILE,
    METRICS_SCHEMA,
    TRACE_RECORDS_FILE,
    TRACE_RECORDS_SCHEMA,
    build_manifest,
    chrome_trace_events,
    export_run,
    metrics_lines,
    read_manifest,
    read_metrics_jsonl,
    read_trace_records,
    render_run_trace,
    validate_manifest,
    validate_metrics_lines,
    validate_trace_events,
    write_chrome_trace,
    write_manifest,
    write_metrics_jsonl,
    write_trace_records,
)
from repro.obs.health import (
    DEFAULT_THRESHOLDS,
    HealthState,
    HealthThresholds,
    classify,
    health_rows,
    render_health_table,
    signal_level,
)
from repro.obs.hub import (
    DEFAULT_EWMA_ALPHA,
    NULL_HUB,
    EwmaGauge,
    Gauge,
    HubCounter,
    LogHistogram,
    MetricsHub,
    NullHub,
    default_hub,
    merge_rollups,
    split_label,
    use_hub,
)
from repro.obs.probe import EventCoreProbe, HealthProbe, SharedStoreProbe
from repro.obs.sampler import DEFAULT_SAMPLE_INTERVAL, Sampler

__all__ = [
    "CHROME_TRACE_FILE",
    "DEFAULT_EWMA_ALPHA",
    "DEFAULT_SAMPLE_INTERVAL",
    "DEFAULT_THRESHOLDS",
    "EventCoreProbe",
    "EwmaGauge",
    "Gauge",
    "HealthProbe",
    "HealthState",
    "HealthThresholds",
    "HubCounter",
    "LogHistogram",
    "MANIFEST_FILE",
    "MANIFEST_SCHEMA",
    "METRICS_FILE",
    "METRICS_SCHEMA",
    "MetricsHub",
    "NULL_HUB",
    "NullHub",
    "Sampler",
    "SharedStoreProbe",
    "TRACE_RECORDS_FILE",
    "TRACE_RECORDS_SCHEMA",
    "build_manifest",
    "chrome_trace_events",
    "classify",
    "default_hub",
    "export_run",
    "health_rows",
    "merge_rollups",
    "metrics_lines",
    "read_manifest",
    "read_metrics_jsonl",
    "read_trace_records",
    "render_health_table",
    "render_run_trace",
    "signal_level",
    "split_label",
    "use_hub",
    "validate_manifest",
    "validate_metrics_lines",
    "validate_trace_events",
    "write_chrome_trace",
    "write_manifest",
    "write_metrics_jsonl",
    "write_trace_records",
]
