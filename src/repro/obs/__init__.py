"""repro.obs — unified observability: metrics hub, health probes, export.

The layer that turns a simulation into signals:

* :mod:`repro.obs.hub` — the :class:`MetricsHub` instrument registry
  (counters, gauges, EWMA gauges, log-bucket histograms, time series)
  with sub-hub label fan-in and the zero-overhead :class:`NullHub`.
* :mod:`repro.obs.probe` — pull-based per-SA :class:`HealthProbe` and
  the gateway's :class:`SharedStoreProbe` / :class:`EventCoreProbe`.
* :mod:`repro.obs.sampler` — the periodic :class:`Sampler` engine
  process snapshotting probes into time series.
* :mod:`repro.obs.health` — GREEN/YELLOW/RED multi-signal voting and
  the health summary table.
* :mod:`repro.obs.export` — metrics JSONL, run manifests, and Chrome
  trace-event rendering (open in https://ui.perfetto.dev).

v2 — the *streaming* plane (live campaigns, not just post-mortems):

* :mod:`repro.obs.stream` — schema-versioned progress events, the
  durable persist-before-fold ``progress.jsonl`` ledger, and the
  :class:`CampaignView` fold that replays it.
* :mod:`repro.obs.resource` — stdlib worker resource probes (CPU, RSS,
  tracemalloc) and the slow-task cProfile hook.
* :mod:`repro.obs.flightrec` — the per-worker crash flight recorder.
* :mod:`repro.obs.top` — the ``repro top`` / ``fleet --watch``
  dashboard rendered from any ledger, live or finished.

``python -m repro obs`` / ``top`` are the CLIs over all of it;
``repro.control`` (ROADMAP) is the next consumer.

v3 — the *cross-run* plane (know when any run got worse):

* :mod:`repro.obs.archive` — the append-only run warehouse: one
  content-addressed :class:`RunSnapshot` per observed run / fleet
  aggregate / bench report, indexed by a salvageable ``runs.jsonl``.
* :mod:`repro.obs.compare` — statistical run-to-run diffing:
  bootstrap CIs on exact series, sketch-error-aware quantile bounds,
  per-metric GREEN/YELLOW/RED verdicts through the health quorum.
* :mod:`repro.obs.trend` — N-run signal trajectories with EWMA control
  bands and anomaly flags.
"""

from repro.obs.archive import (
    RUN_SCHEMA,
    RunArchive,
    RunSnapshot,
    snapshot_from_bench,
    snapshot_from_fleet_run,
    snapshot_from_obs_run,
    snapshot_target,
)
from repro.obs.compare import (
    DEFAULT_POLICIES,
    DiffRow,
    MetricPolicy,
    RunDiff,
    bootstrap_delta_ci,
    diff_runs,
    distribution_bounds,
    policy_for,
    render_diff_table,
)
from repro.obs.export import (
    CHROME_TRACE_FILE,
    MANIFEST_FILE,
    MANIFEST_SCHEMA,
    METRICS_FILE,
    METRICS_SCHEMA,
    TRACE_RECORDS_FILE,
    TRACE_RECORDS_SCHEMA,
    build_manifest,
    chrome_trace_events,
    export_run,
    metrics_lines,
    read_manifest,
    read_metrics_jsonl,
    read_metrics_lines,
    read_trace_records,
    render_run_trace,
    validate_flight_dump,
    validate_manifest,
    validate_metrics_lines,
    validate_progress_file,
    validate_progress_lines,
    validate_trace_events,
    write_chrome_trace,
    write_manifest,
    write_metrics_jsonl,
    write_trace_records,
)
from repro.obs.flightrec import (
    FLIGHT_SCHEMA,
    FlightRecorder,
    flight_path,
    load_flight,
)
from repro.obs.health import (
    DEFAULT_THRESHOLDS,
    HealthState,
    HealthThresholds,
    classify,
    health_rows,
    render_health_table,
    signal_level,
    vote,
)
from repro.obs.hub import (
    DEFAULT_EWMA_ALPHA,
    NULL_HUB,
    EwmaGauge,
    Gauge,
    HubCounter,
    LogHistogram,
    MetricsHub,
    NullHub,
    default_hub,
    merge_rollups,
    split_label,
    use_hub,
)
from repro.obs.probe import EventCoreProbe, HealthProbe, SharedStoreProbe
from repro.obs.resource import (
    ResourceProbe,
    TaskProfiler,
    publish_task_usage,
    resource_snapshot,
)
from repro.obs.sampler import DEFAULT_SAMPLE_INTERVAL, Sampler
from repro.obs.stream import (
    EVENT_KINDS,
    PROGRESS_SCHEMA,
    CampaignStream,
    CampaignView,
    LedgerTail,
    ProgressEvent,
    ProgressLedger,
    StreamConfig,
    WorkerStatus,
    read_ledger,
)
from repro.obs.top import render_dashboard, run_top, worker_health
from repro.obs.trend import (
    DEFAULT_HISTORY_SIGNALS,
    TrendPoint,
    compute_trend,
    render_history_table,
    signal_value,
)

__all__ = [
    "CHROME_TRACE_FILE",
    "CampaignStream",
    "CampaignView",
    "DEFAULT_EWMA_ALPHA",
    "DEFAULT_HISTORY_SIGNALS",
    "DEFAULT_POLICIES",
    "DEFAULT_SAMPLE_INTERVAL",
    "DEFAULT_THRESHOLDS",
    "DiffRow",
    "EVENT_KINDS",
    "EventCoreProbe",
    "EwmaGauge",
    "FLIGHT_SCHEMA",
    "FlightRecorder",
    "Gauge",
    "HealthProbe",
    "HealthState",
    "HealthThresholds",
    "HubCounter",
    "LedgerTail",
    "LogHistogram",
    "MANIFEST_FILE",
    "MANIFEST_SCHEMA",
    "METRICS_FILE",
    "METRICS_SCHEMA",
    "MetricPolicy",
    "MetricsHub",
    "NULL_HUB",
    "NullHub",
    "PROGRESS_SCHEMA",
    "ProgressEvent",
    "ProgressLedger",
    "RUN_SCHEMA",
    "ResourceProbe",
    "RunArchive",
    "RunDiff",
    "RunSnapshot",
    "Sampler",
    "SharedStoreProbe",
    "StreamConfig",
    "TRACE_RECORDS_FILE",
    "TRACE_RECORDS_SCHEMA",
    "TaskProfiler",
    "TrendPoint",
    "WorkerStatus",
    "bootstrap_delta_ci",
    "build_manifest",
    "chrome_trace_events",
    "classify",
    "compute_trend",
    "default_hub",
    "diff_runs",
    "distribution_bounds",
    "export_run",
    "flight_path",
    "health_rows",
    "load_flight",
    "merge_rollups",
    "metrics_lines",
    "policy_for",
    "publish_task_usage",
    "read_ledger",
    "read_manifest",
    "read_metrics_jsonl",
    "read_metrics_lines",
    "read_trace_records",
    "render_dashboard",
    "render_diff_table",
    "render_health_table",
    "render_history_table",
    "render_run_trace",
    "resource_snapshot",
    "run_top",
    "signal_level",
    "signal_value",
    "snapshot_from_bench",
    "snapshot_from_fleet_run",
    "snapshot_from_obs_run",
    "snapshot_target",
    "split_label",
    "use_hub",
    "validate_flight_dump",
    "validate_manifest",
    "validate_metrics_lines",
    "validate_progress_file",
    "validate_progress_lines",
    "validate_trace_events",
    "vote",
    "worker_health",
    "write_chrome_trace",
    "write_manifest",
    "write_metrics_jsonl",
    "write_trace_records",
]
