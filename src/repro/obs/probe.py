"""Per-SA health probes: the controller's input signals.

A :class:`HealthProbe` watches one SA's components — sender, receiver,
link, and their persistent stores — and publishes exactly the signals
the ROADMAP's ``repro.control`` adaptive controller consumes:

* ``loss_ewma`` — smoothed per-interval link loss fraction.
* ``replay_discards`` — window rejections (duplicate + stale verdicts).
* ``save_queue_depth`` / ``save_wait`` — in-flight SAVEs and the time
  until the newest one commits (on a gateway's shared store this is the
  device queueing the sizing rule provisions for).
* ``recovery_latency`` — reset-to-resume duration per completed reset,
  as a fixed-memory log histogram plus a time series.
* ``path_transitions`` / ``blackholed`` — netpath regime activity.

Probes are **pull-based**: they touch nothing on the per-packet hot
path.  All signals derive from counters and records the components
already maintain; the :class:`~repro.obs.sampler.Sampler` calls
:meth:`HealthProbe.sample` on its periodic tick and the probe computes
deltas since its previous sample.  That is what keeps the enabled-hub
tax proportional to the *sampling* rate, not the message rate — and the
disabled path attaches no probe at all (see the zero-overhead-off
invariant in :mod:`repro.obs.hub`).

:class:`SharedStoreProbe` is the gateway-level sibling: one per shared
device, publishing the store's backlog and operation counters under the
root hub.
"""

from __future__ import annotations

from typing import Any

from repro.obs.hub import MetricsHub

#: EWMA smoothing for the loss signal (see hub.DEFAULT_EWMA_ALPHA note).
LOSS_EWMA_ALPHA = 0.25


class HealthProbe:
    """Pull-based health signals for one SA (see module docstring).

    Args:
        hub: the (sub-)hub to publish under — per-SA probes receive the
            gateway's ``hub.sub("saN")`` view, single-pair runs the root.
        sender / receiver / link: the SA's components; any may be
            ``None`` (a receiver-side-only probe, say) and its signals
            are simply not published.
    """

    def __init__(
        self,
        hub: MetricsHub,
        sender: Any = None,
        receiver: Any = None,
        link: Any = None,
    ) -> None:
        self.hub = hub
        self.sender = sender
        self.receiver = receiver
        self.link = link
        # Instruments (registered eagerly so an idle SA still exports
        # its signal names — consumers discover the schema from any run).
        self.loss_ewma = hub.ewma("loss_ewma", alpha=LOSS_EWMA_ALPHA)
        self.loss_series = hub.series("loss_ewma")
        self.replay_discards = hub.counter("replay_discards")
        self.discard_series = hub.series("replay_discards")
        self.queue_depth = hub.gauge("save_queue_depth")
        self.queue_series = hub.series("save_queue_depth")
        self.save_wait = hub.gauge("save_wait")
        self.wait_series = hub.series("save_wait")
        self.recovery_latency = hub.histogram("recovery_latency")
        self.recovery_series = hub.series("recovery_latency")
        self.resets = hub.counter("resets")
        self.path_transitions = hub.gauge("path_transitions")
        self.blackholed = hub.counter("blackholed")
        # Delta state from the previous sample.
        self._seen_offered = 0
        self._seen_dropped = 0
        self._seen_discards = 0
        self._seen_blackholed = 0
        self._reset_cursors: dict[int, int] = {}

    # ------------------------------------------------------------------
    # Sampling
    # ------------------------------------------------------------------
    def sample(self, now: float) -> None:
        """Take one snapshot; called by the sampler on its tick."""
        if self.link is not None:
            self._sample_loss(now)
        if self.receiver is not None:
            self._sample_discards(now)
        self._sample_save_queue(now)
        self._sample_recoveries(now)

    def _sample_loss(self, now: float) -> None:
        link = self.link
        offered, dropped = link.offered, link.dropped
        delta_offered = offered - self._seen_offered
        delta_dropped = dropped - self._seen_dropped
        self._seen_offered, self._seen_dropped = offered, dropped
        if delta_offered > 0:
            self.loss_ewma.observe(delta_dropped / delta_offered)
        self.loss_series.sample(now, self.loss_ewma.value)
        transitions = getattr(link, "path_transitions", 0)
        self.path_transitions.set(transitions)
        blackholed = getattr(link, "blackholed", 0)
        if blackholed > self._seen_blackholed:
            self.blackholed.inc(blackholed - self._seen_blackholed)
            self._seen_blackholed = blackholed

    def _sample_discards(self, now: float) -> None:
        counts = self.receiver.verdict_counts
        discarded = sum(
            count for verdict, count in counts.items() if not verdict.accepted
        )
        if discarded > self._seen_discards:
            self.replay_discards.inc(discarded - self._seen_discards)
            self._seen_discards = discarded
        self.discard_series.sample(now, self.replay_discards.value)

    def _sample_save_queue(self, now: float) -> None:
        depth = 0
        wait = 0.0
        for endpoint in (self.sender, self.receiver):
            store = getattr(endpoint, "store", None)
            if store is None:
                continue
            depth += store.in_flight_count
            wait = max(wait, store.queue_wait())
        self.queue_depth.set(depth)
        self.queue_series.sample(now, depth)
        self.save_wait.set(wait)
        self.wait_series.sample(now, wait)

    def _sample_recoveries(self, now: float) -> None:
        for endpoint in (self.sender, self.receiver):
            if endpoint is None:
                continue
            records = endpoint.reset_records
            cursor = self._reset_cursors.get(id(endpoint), 0)
            while cursor < len(records):
                record = records[cursor]
                if record.resume_time is None:
                    break  # still recovering; revisit next sample
                latency = record.resume_time - record.reset_time
                self.recovery_latency.observe(latency)
                self.recovery_series.sample(record.resume_time, latency)
                self.resets.inc()
                cursor += 1
            self._reset_cursors[id(endpoint)] = cursor


class EventCoreProbe:
    """Engine event-core and envelope-pool counters, sampled per tick.

    Publishes the zero-alloc hot path's effectiveness under ``engine/``:
    the event free list's hits/misses/recycled/size
    (:meth:`repro.sim.events.EventQueue.pool_stats`) plus the engine's
    processed/pending totals.  Optional
    :class:`~repro.net.pool.EnvelopePool` instances registered through
    :meth:`watch_pool` publish the same counter shape under their label.

    Pull-based like every probe: the hot path pays nothing; with the
    hub disabled no probe attaches at all, so pooled and unpooled runs
    stay byte-identical (the obs parity fixtures pin this).
    """

    def __init__(self, hub: MetricsHub, engine: Any) -> None:
        self.hub = hub
        self.engine = engine
        self.pool_hits = hub.gauge("engine/pool_hits")
        self.pool_misses = hub.gauge("engine/pool_misses")
        self.pool_recycled = hub.gauge("engine/pool_recycled")
        self.pool_size = hub.gauge("engine/pool_size")
        self.events_processed = hub.gauge("engine/events_processed")
        self.pending = hub.gauge("engine/pending_events")
        self.processed_series = hub.series("engine/events_processed")
        self._pools: list[tuple[str, Any, dict[str, Any]]] = []

    def watch_pool(self, label: str, pool: Any) -> None:
        """Also publish an envelope pool's counters under ``label/``."""
        gauges = {
            key: self.hub.gauge(f"{label}/{key}")
            for key in ("pool_hits", "pool_misses", "pool_recycled",
                        "pool_size")
        }
        self._pools.append((label, pool, gauges))

    def sample(self, now: float) -> None:
        stats = self.engine.event_core_stats
        self.pool_hits.set(stats["pool_hits"])
        self.pool_misses.set(stats["pool_misses"])
        self.pool_recycled.set(stats["pool_recycled"])
        self.pool_size.set(stats["pool_size"])
        self.events_processed.set(self.engine.events_processed)
        self.pending.set(self.engine.pending_events)
        self.processed_series.sample(now, self.engine.events_processed)
        for _label, pool, gauges in self._pools:
            stats = pool.stats()
            for key, gauge in gauges.items():
                gauge.set(stats[key])


class SharedStoreProbe:
    """Device-level signals of a gateway's shared persistent store.

    Published under the root hub (the device is shared — it has no SA
    label): backlog (time until the device is free), cumulative
    saves/fetches/device-writes, and the worst waits observed so far.
    """

    def __init__(self, hub: MetricsHub, store: Any) -> None:
        self.hub = hub
        self.store = store
        self.backlog = hub.gauge("store/backlog")
        self.backlog_series = hub.series("store/backlog")
        self.saves_series = hub.series("store/saves")
        self.fetches_series = hub.series("store/fetches")
        self.max_save_wait = hub.gauge("store/max_save_wait")
        self.max_fetch_wait = hub.gauge("store/max_fetch_wait")

    def sample(self, now: float) -> None:
        store = self.store
        backlog = store.backlog
        self.backlog.set(backlog)
        self.backlog_series.sample(now, backlog)
        self.saves_series.sample(now, store.saves)
        self.fetches_series.sample(now, store.fetches)
        self.max_save_wait.set(store.max_save_wait)
        self.max_fetch_wait.set(store.max_fetch_wait)
