"""Worker resource probes: CPU, RSS, tracemalloc, slow-task profiling.

Pure-stdlib on purpose (the container has no psutil): CPU time comes
from :func:`os.times`, resident set size from ``/proc/self/statm`` with
a ``resource.getrusage`` fallback for non-Linux hosts, and allocation
peaks from :mod:`tracemalloc` when the stream config opts in.

Two consumers:

* :class:`ResourceProbe` publishes the snapshot as hub instruments
  (``worker/cpu_time``, ``worker/rss_bytes``, ...) so per-task metrics
  files carry the worker's resource curve alongside protocol counters.
* The raw :func:`resource_snapshot` dict rides worker heartbeat /
  task_finished progress events, which is how the parent's
  :class:`~repro.obs.stream.CampaignView` learns worker CPU and RSS
  without any extra IPC.

:class:`TaskProfiler` is the opt-in cProfile hook: every task runs
under the profiler once a profile dir is set, but a pstats dump is
written only for tasks whose wall time lands at or above a percentile
of the worker's history — cProfile cannot be enabled retroactively, so
"profile the slow ones" necessarily means "profile all, keep the slow
ones".
"""

from __future__ import annotations

import cProfile
import os
import tracemalloc
from bisect import bisect_left, insort
from contextlib import contextmanager
from pathlib import Path
from typing import Any, Iterator

from repro.obs.hub import MetricsHub

__all__ = [
    "ResourceProbe",
    "TaskProfiler",
    "publish_task_usage",
    "resource_snapshot",
    "rss_bytes",
]

_PAGE_SIZE = os.sysconf("SC_PAGE_SIZE") if hasattr(os, "sysconf") else 4096


def rss_bytes() -> int:
    """Current resident set size in bytes (0 when unmeasurable)."""
    try:
        with open("/proc/self/statm", "r", encoding="ascii") as handle:
            return int(handle.read().split()[1]) * _PAGE_SIZE
    except (OSError, ValueError, IndexError):
        pass
    try:
        import resource as _resource

        usage = _resource.getrusage(_resource.RUSAGE_SELF)
        # ru_maxrss is KiB on Linux, bytes on macOS; either way it is a
        # high-water mark, the best available fallback.
        scale = 1 if usage.ru_maxrss > (1 << 30) else 1024
        return int(usage.ru_maxrss) * scale
    except Exception:
        return 0


def resource_snapshot() -> dict[str, Any]:
    """One JSON-safe sample of this process's resource usage."""
    times = os.times()
    snapshot: dict[str, Any] = {
        "cpu_user": times.user,
        "cpu_system": times.system,
        "rss_bytes": rss_bytes(),
    }
    if tracemalloc.is_tracing():
        current, peak = tracemalloc.get_traced_memory()
        snapshot["tracemalloc_current"] = current
        snapshot["tracemalloc_peak"] = peak
    return snapshot


class ResourceProbe:
    """Publishes process resource usage as hub gauges.

    Instruments: ``worker/cpu_time`` (user+system seconds),
    ``worker/cpu_user``, ``worker/cpu_system``, ``worker/rss_bytes``,
    and ``worker/tracemalloc_peak`` when tracing is active.  Pull-based
    like :class:`~repro.obs.probe.HealthProbe`: call :meth:`sample`
    whenever a fresh reading should land in the hub.
    """

    def __init__(self, hub: MetricsHub) -> None:
        self.hub = hub
        self._cpu_time = hub.gauge("worker/cpu_time")
        self._cpu_user = hub.gauge("worker/cpu_user")
        self._cpu_system = hub.gauge("worker/cpu_system")
        self._rss = hub.gauge("worker/rss_bytes")
        self._malloc_peak = hub.gauge("worker/tracemalloc_peak")
        self._cpu_series = hub.series("worker/cpu_time")
        self._rss_series = hub.series("worker/rss_bytes")

    def sample(self, now: float = 0.0) -> dict[str, Any]:
        snapshot = resource_snapshot()
        self._cpu_user.set(snapshot["cpu_user"])
        self._cpu_system.set(snapshot["cpu_system"])
        cpu_total = snapshot["cpu_user"] + snapshot["cpu_system"]
        self._cpu_time.set(cpu_total)
        self._rss.set(snapshot["rss_bytes"])
        self._cpu_series.sample(now, cpu_total)
        self._rss_series.sample(now, snapshot["rss_bytes"])
        if "tracemalloc_peak" in snapshot:
            self._malloc_peak.set(snapshot["tracemalloc_peak"])
        return snapshot


def publish_task_usage(
    hub: MetricsHub,
    before: dict[str, Any],
    after: dict[str, Any],
) -> dict[str, Any]:
    """Publish the delta between two snapshots as per-task gauges.

    Returns the delta dict (``task_cpu``, ``task_rss_growth``, plus
    tracemalloc peak when traced) for riding on progress events.
    """
    delta = {
        "task_cpu": (after["cpu_user"] - before["cpu_user"])
        + (after["cpu_system"] - before["cpu_system"]),
        "task_rss_growth": after["rss_bytes"] - before["rss_bytes"],
    }
    if "tracemalloc_peak" in after:
        delta["tracemalloc_peak"] = after["tracemalloc_peak"]
    hub.gauge("worker/task_cpu").set(delta["task_cpu"])
    hub.gauge("worker/task_rss_growth").set(delta["task_rss_growth"])
    if "tracemalloc_peak" in delta:
        hub.gauge("worker/tracemalloc_peak").set(delta["tracemalloc_peak"])
    return delta


class TaskProfiler:
    """Opt-in cProfile hook that keeps dumps only for slow outliers.

    Every task executes under cProfile (the cost the overhead bench
    budgets for); the dump is written to ``<directory>/<task_id>.pstats``
    only when the task's wall time reaches ``percentile`` of the wall
    times this profiler has seen, and never before ``min_samples`` tasks
    have established a distribution.
    """

    def __init__(
        self,
        directory: str | Path,
        percentile: float = 0.95,
        min_samples: int = 20,
    ) -> None:
        self.directory = Path(directory)
        self.percentile = percentile
        self.min_samples = max(1, min_samples)
        self._walls: list[float] = []  # kept sorted via insort
        self.dumped: list[str] = []

    def threshold(self) -> float | None:
        """Current wall-time cutoff, or None before enough samples."""
        if len(self._walls) < self.min_samples:
            return None
        index = min(
            len(self._walls) - 1,
            int(self.percentile * len(self._walls)),
        )
        return self._walls[index]

    def should_dump(self, wall_time: float) -> bool:
        cutoff = self.threshold()
        return cutoff is not None and wall_time >= cutoff

    def observe(self, wall_time: float) -> None:
        insort(self._walls, wall_time)

    def rank(self, wall_time: float) -> float:
        """Fraction of observed wall times at or below ``wall_time``."""
        if not self._walls:
            return 0.0
        return bisect_left(self._walls, wall_time) / len(self._walls)

    @contextmanager
    def profile(self, task_id: str) -> Iterator[None]:
        """Profile one task; dump pstats iff it lands past the cutoff."""
        import time

        profiler = cProfile.Profile()
        start = time.perf_counter()
        profiler.enable()
        try:
            yield
        finally:
            profiler.disable()
            wall = time.perf_counter() - start
            dump = self.should_dump(wall)
            self.observe(wall)
            if dump:
                self.directory.mkdir(parents=True, exist_ok=True)
                # Task ids are hierarchical ("g3/gateway_crash/s00000");
                # flatten so every dump lands directly in the profile dir.
                stem = task_id.replace("/", "_").replace(os.sep, "_")
                target = self.directory / f"{stem}.pstats"
                profiler.dump_stats(str(target))
                self.dumped.append(task_id)
