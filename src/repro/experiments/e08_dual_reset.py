"""E8 — Section 5's third case: both endpoints reset.

Three stories:

1. **Simultaneous dual reset, SAVE/FETCH** — the case the paper calls
   "straightforward to verify": with the window-jump adversary active,
   expected zero replays accepted and convergence.
2. **Simultaneous dual reset, unprotected** — the Section 3 attack: the
   adversary replays the highest recorded sequence number ``z`` after q's
   cold restart, shifting q's right edge above p's restarted counter so
   "all fresh messages ... between s and z will be ... discarded".
3. **Staggered dual reset, SAVE/FETCH** — the boundary this
   reproduction's model checker discovered (see :mod:`repro.core.ceiling`):
   p resets and leaps by ``2Kp``; the first post-leap message jumps q's
   right edge by more than ``Kq``; if q is then reset while checkpointing
   that jump, FETCH under-reads and a replay of the jump message is
   accepted.  Requires ``Kp > Kq``; the experiment targets the reset
   inside the vulnerable save with
   :func:`~repro.core.reset.reset_during_save` and confirms the ceiling
   variant of the receiver closes the hole.
"""

from __future__ import annotations

from repro.core.protocol import build_protocol
from repro.core.reset import reset_during_save
from repro.experiments.common import ExperimentResult
from repro.ipsec.costs import CostModel, PAPER_COSTS
from repro.workloads.scenarios import run_dual_reset_scenario


def _staggered_case(
    variant: str,
    k_p: int,
    k_q: int,
    costs: CostModel,
    seed: int,
) -> dict[str, object]:
    """The vulnerable-window staggered scenario for one receiver variant."""
    harness = build_protocol(
        variant=variant,
        k_p=k_p,
        k_q=k_q,
        costs=costs,
        seed=seed,
        with_adversary=True,
    )
    down = 5 * costs.t_save

    # Reset p right after it has sent 2 * k_p messages.
    def on_send(sent_total: int, packet: object) -> None:
        if sent_total == 2 * k_p:
            harness.sender.reset(down_for=down)

    harness.sender.add_send_listener(on_send)

    # q checkpoints every k_q receives; the (2*k_p/k_q + 1)-th save is the
    # one triggered by the first post-leap jump message.  Strike q halfway
    # through it.
    store = getattr(harness.receiver, "store", None)
    jump_save_index = (2 * k_p) // k_q + 1
    if store is not None:
        reset_during_save(
            harness.engine,
            harness.receiver,
            store,
            nth_save=jump_save_index,
            fraction=0.5,
            down_for=down,
        )

    # The winning adversary strategy: the instant q is back up, replay the
    # *most recently* recorded messages (a plain replay-newest-first
    # policy) so they land before fresh traffic re-advances the window.
    # Messages delivered above q's resumed right edge are the prize.
    def on_q_resume() -> None:
        assert harness.adversary is not None
        record = harness.receiver.reset_records[-1]
        lo = (record.resumed_right_edge or 0) + 1
        hi = record.right_edge_at_reset
        harness.adversary.replay_range(lo, hi, rate=1e9)

    harness.receiver.add_resume_listener(on_q_resume)

    # Low-rate traffic (inter-send gap well above the outage + recovery
    # time): at line rate, fresh messages buffered during q's post-wake
    # SAVE drain first and push the window past the vulnerable range
    # before any replay can land — the hole only opens when the channel
    # is quiet at wake-up, as it is on a lightly loaded SA.
    interval = 4 * down
    attempts = 2 * k_p + k_p // 2
    harness.sender.start_traffic(count=attempts, interval=interval)
    horizon = (attempts + 5) * interval + 4 * down
    harness.run(until=horizon)
    report = harness.score(check_bounds=False)
    return {
        "replays_accepted": report.replays_accepted,
        "fresh_discarded": report.fresh_discarded,
        "q_resets": len(harness.receiver.reset_records),
    }


def run(
    k: int = 25,
    costs: CostModel = PAPER_COSTS,
    seed: int = 0,
) -> ExperimentResult:
    """Run all dual-reset cases; see module docstring."""
    result = ExperimentResult(
        experiment_id="E8",
        title="dual resets: simultaneous, attacked, and staggered",
        paper_artifact="Section 5 third case + Section 3 window-jump attack",
        columns=[
            "case",
            "protocol",
            "replays_accepted",
            "fresh_discarded",
            "converged",
        ],
    )

    # Case 1 & 2: simultaneous dual reset with the window-jump adversary.
    for protected, label in [(True, "save/fetch"), (False, "unprotected")]:
        scenario = run_dual_reset_scenario(
            protected=protected,
            k=k,
            reset_after_sends=20 * k,
            messages_after_reset=20 * k,
            costs=costs,
            seed=seed,
            window_jump_attack=True,
        )
        report = scenario.report
        result.add_row(
            case="simultaneous",
            protocol=label,
            replays_accepted=report.replays_accepted,
            fresh_discarded=report.fresh_discarded,
            # Converged means: no replay slipped in and the collateral is
            # within the Section 5 budget (the unprotected pair fails the
            # second clause by orders of magnitude).
            converged=report.replays_accepted == 0
            and report.fresh_discarded <= 2 * k,
        )

    # Case 3: the staggered vulnerable window (model-checker finding).
    for variant in ("savefetch", "ceiling"):
        staggered = _staggered_case(
            variant=variant, k_p=4 * k, k_q=k, costs=costs, seed=seed
        )
        result.add_row(
            case="staggered-vulnerable",
            protocol=variant,
            replays_accepted=staggered["replays_accepted"],
            fresh_discarded=staggered["fresh_discarded"],
            converged=staggered["replays_accepted"] == 0,
        )

    result.note(
        "simultaneous dual reset: SAVE/FETCH rejects the window-jump "
        "replay; unprotected is desynchronised by it (fresh messages "
        "discarded en masse)"
    )
    result.note(
        "staggered-vulnerable: SAVE/FETCH accepts a replay when the "
        "receiver reset lands inside the checkpoint of the post-leap "
        "jump (the boundary found by exhaustive model checking; outside "
        "the paper's Fig. 2 hypothesis of dense arrival); the write-ahead "
        "ceiling variant accepts none"
    )
    return result
