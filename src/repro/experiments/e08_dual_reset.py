"""E8 — Section 5's third case: both endpoints reset.

Three stories:

1. **Simultaneous dual reset, SAVE/FETCH** — the case the paper calls
   "straightforward to verify": with the window-jump adversary active,
   expected zero replays accepted and convergence.
2. **Simultaneous dual reset, unprotected** — the Section 3 attack: the
   adversary replays the highest recorded sequence number ``z`` after q's
   cold restart, shifting q's right edge above p's restarted counter so
   "all fresh messages ... between s and z will be ... discarded".
3. **Staggered dual reset, SAVE/FETCH** — the boundary this
   reproduction's model checker discovered (see :mod:`repro.core.ceiling`):
   p resets and leaps by ``2Kp``; the first post-leap message jumps q's
   right edge by more than ``Kq``; if q is then reset while checkpointing
   that jump, FETCH under-reads and a replay of the jump message is
   accepted.  Requires ``Kp > Kq``; the sweep targets the reset inside
   the vulnerable save (see
   :func:`repro.workloads.scenarios.run_staggered_reset_scenario`) and
   confirms the ceiling variant of the receiver closes the hole.
"""

from __future__ import annotations

from typing import Any

from repro.experiments.common import ExperimentResult
from repro.experiments.sweep import ExperimentDriver, SweepPoint, SweepSpec, TaskCall
from repro.ipsec.costs import CostModel, PAPER_COSTS


def sweep(
    k: int = 25,
    costs: CostModel = PAPER_COSTS,
    seed: int = 0,
) -> SweepSpec:
    """Declare all dual-reset cases; see the module docstring."""
    points = [
        SweepPoint(
            axis={"case": "simultaneous", "protocol": label},
            calls={"run": TaskCall(
                scenario="dual_reset",
                params=dict(
                    protected=protected,
                    k=k,
                    reset_after_sends=20 * k,
                    messages_after_reset=20 * k,
                    costs=costs,
                    window_jump_attack=True,
                ),
                seed=seed,
            )},
        )
        for protected, label in [(True, "save/fetch"), (False, "unprotected")]
    ] + [
        SweepPoint(
            axis={"case": "staggered-vulnerable", "protocol": variant},
            calls={"run": TaskCall(
                scenario="staggered_reset",
                params=dict(variant=variant, k_p=4 * k, k_q=k, costs=costs),
                seed=seed,
            )},
        )
        for variant in ("savefetch", "ceiling")
    ]

    def reduce_row(axis: dict[str, Any], metrics: dict[str, Any]) -> dict[str, Any]:
        m = metrics["run"]
        if axis["case"] == "simultaneous":
            # Converged means: no replay slipped in and the collateral is
            # within the Section 5 budget (the unprotected pair fails the
            # second clause by orders of magnitude).
            converged = (
                m["replays_accepted"] == 0 and m["fresh_discarded"] <= 2 * k
            )
        else:
            converged = m["replays_accepted"] == 0
        return dict(
            case=axis["case"],
            protocol=axis["protocol"],
            replays_accepted=m["replays_accepted"],
            fresh_discarded=m["fresh_discarded"],
            converged=converged,
        )

    def notes(rows: list[dict[str, Any]]) -> list[str]:
        return [
            "simultaneous dual reset: SAVE/FETCH rejects the window-jump "
            "replay; unprotected is desynchronised by it (fresh messages "
            "discarded en masse)",
            "staggered-vulnerable: SAVE/FETCH accepts a replay when the "
            "receiver reset lands inside the checkpoint of the post-leap "
            "jump (the boundary found by exhaustive model checking; outside "
            "the paper's Fig. 2 hypothesis of dense arrival); the write-ahead "
            "ceiling variant accepts none",
        ]

    return SweepSpec(
        experiment_id="E8",
        title="dual resets: simultaneous, attacked, and staggered",
        paper_artifact="Section 5 third case + Section 3 window-jump attack",
        columns=[
            "case",
            "protocol",
            "replays_accepted",
            "fresh_discarded",
            "converged",
        ],
        points=points,
        reduce_row=reduce_row,
        notes=notes,
    )


def run(
    k: int = 25,
    costs: CostModel = PAPER_COSTS,
    seed: int = 0,
    jobs: int = 1,
    store: Any = None,
) -> ExperimentResult:
    """Run all dual-reset cases; see the module docstring."""
    spec = sweep(k=k, costs=costs, seed=seed)
    return ExperimentDriver(spec, jobs=jobs, store=store).run()
