"""E12 — Section 6's rejected strawman: the replayable "reset notice".

"One may be tempted to think about the possibility of requiring the reset
host to send its peer a special message saying 'I was reset; let us both
reset the sequence number to 1 ...'.  The problem with this approach is
that the special message can be replayed by an attacker at any time to
induce the receiver of this special message to reset its sequence
number."

The experiment runs the strawman through the paper's attack script (see
:func:`repro.workloads.scenarios.run_reset_notice_scenario`): phase one
*appears* to work — the genuine notice is honoured and fresh traffic
resumes; phase two replays the recorded notice, the receiver obediently
reopens its window, and the recorded history is accepted wholesale.

The SAVE/FETCH comparison row shows why the paper concludes persistent
memory is the only way: there *is* no trusted-on-receipt control message
to replay, and the same replay barrage is rejected entirely.
"""

from __future__ import annotations

from typing import Any

from repro.experiments.common import ExperimentResult
from repro.experiments.sweep import ExperimentDriver, SweepPoint, SweepSpec, TaskCall
from repro.ipsec.costs import CostModel, PAPER_COSTS


def sweep(
    pre_reset_messages: int = 500,
    post_reset_messages: int = 200,
    costs: CostModel = PAPER_COSTS,
    seed: int = 0,
) -> SweepSpec:
    """Declare the strawman attack plus the SAVE/FETCH comparison."""
    points = [
        SweepPoint(
            axis={"protocol": "reset-notice strawman"},
            calls={"run": TaskCall(
                scenario="reset_notice",
                params=dict(
                    pre_reset_messages=pre_reset_messages,
                    post_reset_messages=post_reset_messages,
                    costs=costs,
                ),
                seed=seed,
            )},
        ),
        # SAVE/FETCH under the same replay barrage (receiver at its most
        # vulnerable moment): nothing to honour, nothing accepted.
        SweepPoint(
            axis={"protocol": "save/fetch"},
            calls={"run": TaskCall(
                scenario="receiver_reset",
                params=dict(
                    protected=True,
                    reset_after_receives=pre_reset_messages,
                    messages_after_reset=0,
                    costs=costs,
                    replay_history_after=True,
                ),
                seed=seed,
            )},
        ),
    ]

    def reduce_row(axis: dict[str, Any], metrics: dict[str, Any]) -> dict[str, Any]:
        m = metrics["run"]
        if axis["protocol"] == "reset-notice strawman":
            return dict(
                protocol=axis["protocol"],
                notices_honoured=m["notices_honoured"],
                genuine_recovery_ok=m["genuine_notice_worked"],
                replays_accepted=m["replays_accepted"],
                broken_by_replay=bool(m["replays_accepted"]),
            )
        return dict(
            protocol=axis["protocol"],
            notices_honoured=0,
            genuine_recovery_ok=m["converged"],
            replays_accepted=m["replays_accepted"],
            broken_by_replay=m["replays_accepted"] > 0,
        )

    def notes(rows: list[dict[str, Any]]) -> list[str]:
        return [
            "the strawman recovers from the genuine reset (its one notice is "
            "honoured) but any replay of that notice reopens the window and "
            "the recorded history pours in; SAVE/FETCH has no such message "
            "to replay — the paper's argument for persistent memory"
        ]

    return SweepSpec(
        experiment_id="E12",
        title='the "I was reset" notice: replayable by construction',
        paper_artifact="Section 6 concluding remarks (the rejected strawman)",
        columns=[
            "protocol",
            "notices_honoured",
            "genuine_recovery_ok",
            "replays_accepted",
            "broken_by_replay",
        ],
        points=points,
        reduce_row=reduce_row,
        notes=notes,
    )


def run(
    pre_reset_messages: int = 500,
    post_reset_messages: int = 200,
    costs: CostModel = PAPER_COSTS,
    seed: int = 0,
    jobs: int = 1,
    store: Any = None,
) -> ExperimentResult:
    """Run the strawman attack and the SAVE/FETCH comparison."""
    spec = sweep(
        pre_reset_messages=pre_reset_messages,
        post_reset_messages=post_reset_messages,
        costs=costs,
        seed=seed,
    )
    return ExperimentDriver(spec, jobs=jobs, store=store).run()
