"""E12 — Section 6's rejected strawman: the replayable "reset notice".

"One may be tempted to think about the possibility of requiring the reset
host to send its peer a special message saying 'I was reset; let us both
reset the sequence number to 1 ...'.  The problem with this approach is
that the special message can be replayed by an attacker at any time to
induce the receiver of this special message to reset its sequence
number."

The experiment implements the strawman (an unprotected pair where the
sender announces resets with a :class:`~repro.core.recovery.ResetNotice`
that the receiver honours) and runs the paper's attack script:

1. traffic flows; the adversary records everything, including the notice
   emitted after a genuine sender reset (phase one *appears* to work —
   fresh traffic resumes);
2. later, the adversary replays the recorded notice — the receiver
   obediently reopens its window — and then replays the recorded
   history, which is accepted wholesale.

The SAVE/FETCH comparison row shows why the paper concludes persistent
memory is the only way: there *is* no trusted-on-receipt control message
to replay, and the same replay barrage is rejected entirely.
"""

from __future__ import annotations

from repro.core.audit import DeliveryAuditor
from repro.core.recovery import ResetNoticeReceiver, send_reset_notice
from repro.core.sender import UnprotectedSender
from repro.experiments.common import ExperimentResult
from repro.ipsec.costs import CostModel, PAPER_COSTS
from repro.net.adversary import ReplayAdversary
from repro.net.link import Link
from repro.sim.engine import Engine
from repro.workloads.scenarios import run_receiver_reset_scenario


def _run_strawman(
    pre_reset_messages: int,
    post_reset_messages: int,
    costs: CostModel,
    seed: int,
) -> dict[str, object]:
    engine = Engine()
    auditor = DeliveryAuditor()
    receiver = ResetNoticeReceiver(engine, "q", auditor=auditor, costs=costs)
    link = Link(engine, "link:p->q", sink=receiver.on_receive, fifo=True, seed=seed)
    sender = UnprotectedSender(engine, "p", link, costs=costs, auditor=auditor)
    adversary = ReplayAdversary(engine, link, seed=seed + 1)

    # Phase 1: traffic, then a genuine sender reset announced by notice.
    sender.start_traffic(count=pre_reset_messages)
    engine.run(until=(pre_reset_messages + 5) * costs.t_send)

    sender.reset(down_for=costs.t_save)

    def announce() -> None:
        send_reset_notice("p", link, engine.now)

    sender.add_resume_listener(announce)
    engine.run(until=engine.now + 10 * costs.t_save)

    # Post-recovery traffic works: the receiver honoured the real notice.
    sender.start_traffic(count=post_reset_messages)
    engine.run(until=engine.now + (post_reset_messages + 5) * costs.t_send)
    delivered_after_recovery = receiver.delivered_total
    notices_after_phase1 = receiver.notices_honoured

    # Phase 2: the attack.  Replay the notice, then the whole history.
    notice_packets = [
        packet
        for _, packet in adversary.recorded
        if type(packet).__name__ == "ResetNotice"
    ]
    for notice in notice_packets:
        adversary.inject_now(notice)
    engine.run(until=engine.now + 10 * costs.t_recv)
    adversary.replay_history(rate=1.0 / costs.t_recv)
    engine.run(until=engine.now + 4 * (pre_reset_messages + post_reset_messages) * costs.t_recv)

    report = auditor.report()
    return {
        "notices_honoured": receiver.notices_honoured,
        "genuine_notice_worked": delivered_after_recovery > pre_reset_messages
        and notices_after_phase1 == 1,
        "replays_accepted": report.duplicate_deliveries,
    }


def run(
    pre_reset_messages: int = 500,
    post_reset_messages: int = 200,
    costs: CostModel = PAPER_COSTS,
    seed: int = 0,
) -> ExperimentResult:
    """Run the strawman attack and the SAVE/FETCH comparison."""
    result = ExperimentResult(
        experiment_id="E12",
        title='the "I was reset" notice: replayable by construction',
        paper_artifact="Section 6 concluding remarks (the rejected strawman)",
        columns=[
            "protocol",
            "notices_honoured",
            "genuine_recovery_ok",
            "replays_accepted",
            "broken_by_replay",
        ],
    )
    strawman = _run_strawman(pre_reset_messages, post_reset_messages, costs, seed)
    result.add_row(
        protocol="reset-notice strawman",
        notices_honoured=strawman["notices_honoured"],
        genuine_recovery_ok=strawman["genuine_notice_worked"],
        replays_accepted=strawman["replays_accepted"],
        broken_by_replay=bool(strawman["replays_accepted"]),
    )

    # SAVE/FETCH under the same replay barrage (receiver at its most
    # vulnerable moment): nothing to honour, nothing accepted.
    savefetch = run_receiver_reset_scenario(
        protected=True,
        reset_after_receives=pre_reset_messages,
        messages_after_reset=0,
        costs=costs,
        seed=seed,
        replay_history_after=True,
    )
    result.add_row(
        protocol="save/fetch",
        notices_honoured=0,
        genuine_recovery_ok=savefetch.report.converged,
        replays_accepted=savefetch.report.replays_accepted,
        broken_by_replay=savefetch.report.replays_accepted > 0,
    )
    result.note(
        "the strawman recovers from the genuine reset (its one notice is "
        "honoured) but any replay of that notice reopens the window and "
        "the recorded history pours in; SAVE/FETCH has no such message "
        "to replay — the paper's argument for persistent memory"
    )
    return result
