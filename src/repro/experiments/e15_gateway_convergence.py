"""E15 — extension: gateway-scale convergence over a shared store.

The paper's convergence theorems are per-pair; its deployment unit is a
security gateway terminating N SAs, where one crash resets every SA at
one instant and recovery contends for one persistent device.  This
experiment sweeps SA count x shared-store write policy over the
``gateway_crash`` scenario (every SA's story is the paper's claim (i)
sender reset) and reports what N adds:

* ``k`` — the generalized SAVE-interval sizing rule
  (:func:`repro.gateway.safe_save_interval`): the serial policy must
  scale the paper's 25 by N or the save queue grows without bound and
  the 2K gap bound breaks; batching caps it at 50; write-ahead scales
  by N/4.
* ``spread_us`` — last-SA-resumed minus first-SA-resumed after the
  crash: the FETCH-storm fingerprint.  Serial grows ~linearly in N;
  batching flattens it; write-ahead pays its cheap appends back as
  4x recovery scans.
* ``store_busy_ms`` / ``fetch_wait_us`` — device pressure, and the
  queueing delay the *last* recovering SA actually experienced.

Expected shape: every cell converges with zero replays (the sizing rule
holds), while the contention columns separate the policies — the trade
is recovery latency and device seconds, not safety.
"""

from __future__ import annotations

from typing import Any

from repro.experiments.common import ExperimentResult
from repro.experiments.sweep import ExperimentDriver, SweepPoint, SweepSpec, TaskCall
from repro.gateway import STORE_POLICIES
from repro.ipsec.costs import CostModel, PAPER_COSTS


def sweep(
    sa_counts: list[int] | None = None,
    policies: list[str] | None = None,
    crash_after_sends: int = 300,
    messages_after_reset: int = 300,
    costs: CostModel = PAPER_COSTS,
    seed: int = 0,
) -> SweepSpec:
    """Declare the SA count x store policy sweep over ``gateway_crash``."""
    if sa_counts is None:
        sa_counts = [1, 4, 16, 50]
    if policies is None:
        policies = list(STORE_POLICIES)

    points = [
        SweepPoint(
            axis={"n_sas": n_sas, "policy": policy},
            calls={"run": TaskCall(
                scenario="gateway_crash",
                params=dict(
                    n_sas=n_sas,
                    store_policy=policy,
                    crash_after_sends=crash_after_sends,
                    messages_after_reset=messages_after_reset,
                    costs=costs,
                ),
                seed=seed,
            )},
        )
        for n_sas in sa_counts
        for policy in policies
    ]

    def reduce_row(axis: dict[str, Any], metrics: dict[str, Any]) -> dict[str, Any]:
        m = metrics["run"]
        store = m["store"]
        spreads = m["recovery_spreads"]
        return dict(
            n_sas=axis["n_sas"],
            policy=axis["policy"],
            k=m["k"],  # the interval that actually ran
            converged=m["converged"],
            replays=m["replays_accepted"],
            max_gap=max(m["gaps_sender"] + m["gaps_receiver"], default=0),
            spread_us=round(max(spreads, default=0.0) * 1e6, 1),
            fetch_wait_us=round(store["max_fetch_wait"] * 1e6, 1),
            store_busy_ms=round(store["busy_time"] * 1e3, 3),
            batched=store["batched_saves"],
        )

    def notes(rows: list[dict[str, Any]]) -> list[str]:
        serial = [r for r in rows if r["policy"] == "serial" and r["n_sas"] > 1]
        batched = [r for r in rows if r["policy"] == "batched"]
        built = [
            "per-SA stories are claim (i) sender resets; the gateway adds the "
            "shared store: K follows the generalized sizing rule "
            "(serial: N x 25, batched: 50, write-ahead: N x 25/4)",
        ]
        if serial and batched:
            built.append(
                "recovery spread is the FETCH-storm fingerprint: serial grows "
                "~(N-1) x t_fetch; group commit flattens it; write-ahead "
                "trades cheap appends for 4x recovery scans"
            )
        built.append(
            "t_save here is the paper's load-independent upper bound; "
            "SharedStore(load_factor=f) adds f x queue-wait to each write's "
            "duration (load-dependent t_save, default off) — under it an "
            "under-provisioned serial store degrades super-linearly, so the "
            "sizing rule's margin matters, not just its sign"
        )
        return built

    return SweepSpec(
        experiment_id="E15",
        title="gateway convergence: SA count x shared-store policy",
        paper_artifact="extension of Section 5 claims to a multi-SA gateway",
        columns=[
            "n_sas", "policy", "k", "converged", "replays", "max_gap",
            "spread_us", "fetch_wait_us", "store_busy_ms", "batched",
        ],
        points=points,
        reduce_row=reduce_row,
        notes=notes,
    )


def run(
    sa_counts: list[int] | None = None,
    policies: list[str] | None = None,
    crash_after_sends: int = 300,
    messages_after_reset: int = 300,
    costs: CostModel = PAPER_COSTS,
    seed: int = 0,
    jobs: int = 1,
    store: Any = None,
) -> ExperimentResult:
    """Sweep SA count x store policy through the fleet driver."""
    spec = sweep(
        sa_counts=sa_counts,
        policies=policies,
        crash_after_sends=crash_after_sends,
        messages_after_reset=messages_after_reset,
        costs=costs,
        seed=seed,
    )
    return ExperimentDriver(spec, jobs=jobs, store=store).run()
