"""Run every experiment at full parameterisation and render the tables.

Usage::

    python -m repro.experiments.runall            # all experiments
    python -m repro.experiments.runall e05 e07    # a subset

The rendered output is what ``EXPERIMENTS.md`` records; benchmarks under
``benchmarks/`` run the same functions with timing.
"""

from __future__ import annotations

import sys
import time
from typing import Callable

from repro.experiments import (
    e01_sender_gap,
    e02_receiver_gap,
    e03_sender_loss,
    e04_receiver_discard,
    e05_unbounded,
    e06_save_interval,
    e07_rekey_cost,
    e08_dual_reset,
    e09_prolonged_reset,
    e10_reorder,
    e11_double_reset,
    e12_reset_notice,
    e13_dpd,
    e14_loss_robustness,
)
from repro.experiments.common import ExperimentResult

#: Experiment id -> zero-argument callable running it at full size.
REGISTRY: dict[str, Callable[[], ExperimentResult]] = {
    "e01": lambda: e01_sender_gap.run(k=50, offsets=list(range(0, 50, 2))),
    "e02": lambda: e02_receiver_gap.run(k=50, offsets=list(range(0, 50, 2))),
    "e03": lambda: e03_sender_loss.run(ks=[5, 10, 25, 50, 100]),
    "e04": lambda: e04_receiver_discard.run(ks=[5, 10, 25, 50, 100]),
    "e05": lambda: e05_unbounded.run(traffic_volumes=[100, 250, 500, 1000, 2500]),
    "e06": lambda: e06_save_interval.run(ks=[5, 10, 15, 20, 25, 50, 100, 200]),
    "e06b": lambda: e06_save_interval.run_policy_table(ks=[25, 50, 100]),
    "e07": lambda: e07_rekey_cost.run(
        sa_counts=[1, 4, 16, 64], rtts=[0.001, 0.010, 0.050]
    ),
    "e08": lambda: e08_dual_reset.run(k=25),
    "e09": lambda: e09_prolonged_reset.run(
        outages=[0.05, 0.2, 0.5, 2.0], keep_alive_timeout=1.0
    ),
    "e10": lambda: e10_reorder.run(
        window_sizes=[32, 64], degrees=[1, 8, 31, 32, 33, 63, 64, 65, 128],
        messages=2000,
    ),
    "e11": lambda: e11_double_reset.run(k=25),
    "e12": lambda: e12_reset_notice.run(),
    "e13": lambda: e13_dpd.run(cadences=[0.1, 0.5, 2.0]),
    "e14": lambda: e14_loss_robustness.run(
        burst_levels=[0.0, 0.005, 0.02, 0.05], seeds=8
    ),
}


def run_all(ids: list[str] | None = None) -> list[ExperimentResult]:
    """Run the selected experiments (all when ``ids`` is falsy)."""
    selected = ids or list(REGISTRY)
    results = []
    for experiment_id in selected:
        if experiment_id not in REGISTRY:
            raise SystemExit(
                f"unknown experiment {experiment_id!r}; known: {sorted(REGISTRY)}"
            )
        started = time.perf_counter()
        result = REGISTRY[experiment_id]()
        elapsed = time.perf_counter() - started
        print(result.render())
        print(f"\n[{experiment_id} completed in {elapsed:.1f}s]\n")
        results.append(result)
    return results


def main() -> None:
    run_all(sys.argv[1:])


if __name__ == "__main__":
    main()
