"""Run every experiment at full parameterisation and render the tables.

Usage::

    python -m repro.experiments.runall            # all experiments
    python -m repro.experiments.runall e05 e07    # a subset

The :data:`EXPERIMENTS` registry (mirroring ``workloads.SCENARIOS``) maps
stable experiment ids to full-size :class:`~repro.experiments.sweep.SweepSpec`
factories; every experiment executes through the fleet runner, so
``python -m repro experiments --jobs N`` parallelises the suite and
``--resume`` makes it interrupt-safe (finished sessions are never
recomputed).  The rendered output is what ``EXPERIMENTS.md`` records;
benchmarks under ``benchmarks/`` run the same specs with timing.
"""

from __future__ import annotations

import sys
import time
from pathlib import Path
from typing import Callable

from repro.experiments import (
    e01_sender_gap,
    e02_receiver_gap,
    e03_sender_loss,
    e04_receiver_discard,
    e05_unbounded,
    e06_save_interval,
    e07_rekey_cost,
    e08_dual_reset,
    e09_prolonged_reset,
    e10_reorder,
    e11_double_reset,
    e12_reset_notice,
    e13_dpd,
    e14_loss_robustness,
    e15_gateway_convergence,
    e16_path_dynamics,
)
from repro.experiments.common import ExperimentResult
from repro.experiments.sweep import ExperimentDriver, SweepSpec
from repro.fleet.results import ResultStore

#: Experiment id -> factory producing its full-parameterisation sweep.
#: Mirrors ``workloads.SCENARIOS``: a stable string namespace declarative
#: drivers (the CLI, benchmarks, future fleet specs) select from.
EXPERIMENTS: dict[str, Callable[[], SweepSpec]] = {
    "e01": lambda: e01_sender_gap.sweep(k=50, offsets=list(range(0, 50, 2))),
    "e02": lambda: e02_receiver_gap.sweep(k=50, offsets=list(range(0, 50, 2))),
    "e03": lambda: e03_sender_loss.sweep(ks=[5, 10, 25, 50, 100]),
    "e04": lambda: e04_receiver_discard.sweep(ks=[5, 10, 25, 50, 100]),
    "e05": lambda: e05_unbounded.sweep(traffic_volumes=[100, 250, 500, 1000, 2500]),
    "e06": lambda: e06_save_interval.sweep(ks=[5, 10, 15, 20, 25, 50, 100, 200]),
    "e06b": lambda: e06_save_interval.policy_sweep(ks=[25, 50, 100]),
    "e07": lambda: e07_rekey_cost.sweep(
        sa_counts=[1, 4, 16, 64], rtts=[0.001, 0.010, 0.050]
    ),
    "e08": lambda: e08_dual_reset.sweep(k=25),
    "e09": lambda: e09_prolonged_reset.sweep(
        outages=[0.05, 0.2, 0.5, 2.0], keep_alive_timeout=1.0
    ),
    "e10": lambda: e10_reorder.sweep(
        window_sizes=[32, 64], degrees=[1, 8, 31, 32, 33, 63, 64, 65, 128],
        messages=2000,
    ),
    "e11": lambda: e11_double_reset.sweep(k=25),
    "e12": lambda: e12_reset_notice.sweep(),
    "e13": lambda: e13_dpd.sweep(cadences=[0.1, 0.5, 2.0]),
    "e14": lambda: e14_loss_robustness.sweep(
        burst_levels=[0.0, 0.005, 0.02, 0.05], seeds=8
    ),
    "e15": lambda: e15_gateway_convergence.sweep(sa_counts=[1, 4, 16, 50]),
    "e16": lambda: e16_path_dynamics.sweep(scale=300),
}


def run_experiment(
    experiment_id: str,
    jobs: int = 1,
    resume_dir: str | Path | None = None,
    obs_dir: str | Path | None = None,
) -> ExperimentResult:
    """Run one registered experiment at full size through the fleet.

    With ``resume_dir`` the task records persist to
    ``<resume_dir>/<id>.jsonl``; re-running after an interrupt skips
    every finished session.  With ``obs_dir`` every task runs observed:
    per-task metrics files and a campaign rollup land under
    ``<obs_dir>/<id>/`` (same semantics as ``fleet --obs``).
    """
    if experiment_id not in EXPERIMENTS:
        raise SystemExit(
            f"unknown experiment {experiment_id!r}; known: {sorted(EXPERIMENTS)}"
        )
    spec = EXPERIMENTS[experiment_id]()
    store = (
        ResultStore(Path(resume_dir) / f"{experiment_id}.jsonl")
        if resume_dir is not None
        else None
    )
    observe = Path(obs_dir) / experiment_id if obs_dir is not None else None
    return ExperimentDriver(spec, jobs=jobs, store=store, obs_dir=observe).run()


#: Back-compat registry: experiment id -> zero-argument callable running
#: it at full size (the pre-sweep interface, still used by tests/tools).
REGISTRY: dict[str, Callable[[], ExperimentResult]] = {
    experiment_id: (lambda experiment_id=experiment_id: run_experiment(experiment_id))
    for experiment_id in EXPERIMENTS
}


def run_all(
    ids: list[str] | None = None,
    jobs: int = 1,
    resume_dir: str | Path | None = None,
    obs_dir: str | Path | None = None,
) -> list[ExperimentResult]:
    """Run the selected experiments (all when ``ids`` is falsy)."""
    selected = ids or list(EXPERIMENTS)
    results = []
    for experiment_id in selected:
        started = time.perf_counter()
        result = run_experiment(experiment_id, jobs=jobs,
                                resume_dir=resume_dir, obs_dir=obs_dir)
        elapsed = time.perf_counter() - started
        print(result.render())
        print(f"\n[{experiment_id} completed in {elapsed:.1f}s]\n")
        results.append(result)
    return results


def main() -> None:
    run_all(sys.argv[1:])


if __name__ == "__main__":
    main()
