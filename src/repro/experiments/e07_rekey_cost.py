"""E7 — Section 3: the cost of the IETF remedy vs SAVE/FETCH.

"Reestablishing the entire IPsec SA is very expensive. It takes the
recomputation of most attributes ... and the renegotiation of all these
attributes using a secured connection. Moreover, a host may have multiple
SAs ... Requiring a host with multiple existing SAs to drop and
reestablish all the existing SAs because of a reset stands for a huge
amount of overhead."

The rekey side is *measured*, not estimated: every ISAKMP message of the
simplified main+quick handshake crosses a latency link, and every DH
exponentiation/signature burns simulated compute (Pentium-III-era
defaults).  The SAVE/FETCH side is one FETCH plus one synchronous SAVE
per SA — no network at all.

Expected shape: rekey recovery grows linearly in both the SA count and
the RTT; SAVE/FETCH is microseconds, flat in RTT; the speedup is 3-5
orders of magnitude and grows with both sweep axes.
"""

from __future__ import annotations

from typing import Any

from repro.experiments.common import ExperimentResult
from repro.experiments.sweep import ExperimentDriver, SweepPoint, SweepSpec, TaskCall
from repro.ipsec.costs import CostModel, PAPER_COSTS


def sweep(
    sa_counts: list[int] | None = None,
    rtts: list[float] | None = None,
    detection_delay: float = 0.0,
    costs: CostModel = PAPER_COSTS,
    seed: int = 0,
) -> SweepSpec:
    """Declare the SA count x RTT sweep over both recovery paths."""
    if sa_counts is None:
        sa_counts = [1, 4, 16, 64]
    if rtts is None:
        rtts = [0.001, 0.010, 0.050]

    points = [
        SweepPoint(
            axis={"n_sas": n_sas, "rtt": rtt},
            calls={"run": TaskCall(
                scenario="rekey",
                params=dict(
                    n_sas=n_sas,
                    rtt=rtt,
                    detection_delay=detection_delay,
                    costs=costs,
                ),
                seed=seed,
            )},
        )
        for n_sas in sa_counts
        for rtt in rtts
    ]

    def reduce_row(axis: dict[str, Any], metrics: dict[str, Any]) -> dict[str, Any]:
        m = metrics["run"]
        speedup = (
            m["rekey_time_s"] / m["savefetch_time_s"]
            if m["savefetch_time_s"] > 0
            else float("inf")
        )
        return dict(
            n_sas=axis["n_sas"],
            rtt_ms=axis["rtt"] * 1000,
            rekey_time_s=m["rekey_time_s"],
            rekey_messages=m["rekey_messages"],
            savefetch_time_s=m["savefetch_time_s"],
            speedup=round(speedup),
        )

    def notes(rows: list[dict[str, Any]]) -> list[str]:
        return [
            "rekey cost scales with n_sas (sequential renegotiations) and rtt "
            "(4.5 round trips per SA); SAVE/FETCH is local disk IO only, "
            "independent of rtt — the win grows with both axes"
        ]

    return SweepSpec(
        experiment_id="E7",
        title="reset recovery cost: IETF full rekey vs SAVE/FETCH",
        paper_artifact="Section 3's motivation for keeping the SA alive",
        columns=[
            "n_sas",
            "rtt_ms",
            "rekey_time_s",
            "rekey_messages",
            "savefetch_time_s",
            "speedup",
        ],
        points=points,
        reduce_row=reduce_row,
        notes=notes,
    )


def run(
    sa_counts: list[int] | None = None,
    rtts: list[float] | None = None,
    detection_delay: float = 0.0,
    costs: CostModel = PAPER_COSTS,
    seed: int = 0,
    jobs: int = 1,
    store: Any = None,
) -> ExperimentResult:
    """Sweep SA count x RTT; measure both recovery paths."""
    spec = sweep(
        sa_counts=sa_counts,
        rtts=rtts,
        detection_delay=detection_delay,
        costs=costs,
        seed=seed,
    )
    return ExperimentDriver(spec, jobs=jobs, store=store).run()
