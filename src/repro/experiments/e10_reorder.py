"""E10 — Section 2: w-Delivery under controlled reorder.

The anti-replay window promises *w-Delivery*: "q delivers at least one
copy of every message that is neither lost nor suffered a reorder of
degree w or more".  Equivalently, a message reordered by degree ``d < w``
still lands inside the window and is delivered; ``d >= w`` falls off the
left edge and is discarded even though it is perfectly fresh — the
discard behaviour that motivates the paper's reference [2] ("this
protocol may discard a large amount of good messages when severe message
reorders occur").

Sweeps the reorder degree across window sizes.  Expected: a sharp cliff —
zero fresh discards for ``d < w``, every held-back message discarded for
``d >= w`` — with the cliff position equal to ``w`` exactly.
"""

from __future__ import annotations

from repro.core.protocol import build_protocol
from repro.experiments.common import ExperimentResult
from repro.ipsec.costs import CostModel, PAPER_COSTS


def run(
    window_sizes: list[int] | None = None,
    degrees: list[int] | None = None,
    messages: int = 2000,
    probability: float = 0.05,
    costs: CostModel = PAPER_COSTS,
    seed: int = 0,
) -> ExperimentResult:
    """Sweep reorder degree x window size; measure fresh discards."""
    result = ExperimentResult(
        experiment_id="E10",
        title="fresh-message discards vs reorder degree and window size",
        paper_artifact="Section 2 w-Delivery / Discrimination; motivates [2]",
        columns=[
            "w",
            "degree",
            "reordered",
            "fresh_discarded",
            "discard_rate",
            "w_delivery_holds",
            "duplicates_delivered",
        ],
    )
    if window_sizes is None:
        window_sizes = [32, 64]
    if degrees is None:
        degrees = [1, 8, 31, 32, 33, 63, 64, 65, 128]
    for w in window_sizes:
        for degree in degrees:
            harness = build_protocol(
                protected=True,
                w=w,
                costs=costs,
                seed=seed,
                reorder_degree=degree,
                reorder_probability=probability,
            )
            harness.sender.start_traffic(count=messages)
            horizon = (messages + 10) * costs.t_send + 1.0
            harness.run(until=horizon)
            assert harness.reorder_stage is not None
            harness.reorder_stage.flush()
            harness.run(until=horizon + 1.0)
            report = harness.score(check_bounds=False)
            reordered = harness.reorder_stage.held_total
            discard_rate = (
                report.fresh_discarded / reordered if reordered else 0.0
            )
            result.add_row(
                w=w,
                degree=degree,
                reordered=reordered,
                fresh_discarded=report.fresh_discarded,
                discard_rate=round(discard_rate, 3),
                w_delivery_holds=(degree >= w) or report.fresh_discarded == 0,
                duplicates_delivered=report.replays_accepted,
            )
    result.note(
        "the cliff sits exactly at degree = w: every reordered message "
        "with degree < w is delivered, every one with degree >= w is "
        "discarded despite being fresh — the [2] observation"
    )
    result.note("Discrimination holds throughout (duplicates_delivered = 0)")
    return result
