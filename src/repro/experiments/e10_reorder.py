"""E10 — Section 2: w-Delivery under controlled reorder.

The anti-replay window promises *w-Delivery*: "q delivers at least one
copy of every message that is neither lost nor suffered a reorder of
degree w or more".  Equivalently, a message reordered by degree ``d < w``
still lands inside the window and is delivered; ``d >= w`` falls off the
left edge and is discarded even though it is perfectly fresh — the
discard behaviour that motivates the paper's reference [2] ("this
protocol may discard a large amount of good messages when severe message
reorders occur").

Sweeps the reorder degree across window sizes.  Expected: a sharp cliff —
zero fresh discards for ``d < w``, every held-back message discarded for
``d >= w`` — with the cliff position equal to ``w`` exactly.
"""

from __future__ import annotations

from typing import Any

from repro.experiments.common import ExperimentResult
from repro.experiments.sweep import ExperimentDriver, SweepPoint, SweepSpec, TaskCall
from repro.ipsec.costs import CostModel, PAPER_COSTS


def sweep(
    window_sizes: list[int] | None = None,
    degrees: list[int] | None = None,
    messages: int = 2000,
    probability: float = 0.05,
    costs: CostModel = PAPER_COSTS,
    seed: int = 0,
) -> SweepSpec:
    """Declare the reorder degree x window size sweep."""
    if window_sizes is None:
        window_sizes = [32, 64]
    if degrees is None:
        degrees = [1, 8, 31, 32, 33, 63, 64, 65, 128]

    points = [
        SweepPoint(
            axis={"w": w, "degree": degree},
            calls={"run": TaskCall(
                scenario="reorder",
                params=dict(
                    protected=True,
                    w=w,
                    degree=degree,
                    messages=messages,
                    probability=probability,
                    costs=costs,
                ),
                seed=seed,
            )},
        )
        for w in window_sizes
        for degree in degrees
    ]

    def reduce_row(axis: dict[str, Any], metrics: dict[str, Any]) -> dict[str, Any]:
        w, degree = axis["w"], axis["degree"]
        m = metrics["run"]
        reordered = m["reordered"]
        discard_rate = m["fresh_discarded"] / reordered if reordered else 0.0
        return dict(
            w=w,
            degree=degree,
            reordered=reordered,
            fresh_discarded=m["fresh_discarded"],
            discard_rate=round(discard_rate, 3),
            w_delivery_holds=(degree >= w) or m["fresh_discarded"] == 0,
            duplicates_delivered=m["replays_accepted"],
        )

    def notes(rows: list[dict[str, Any]]) -> list[str]:
        return [
            "the cliff sits exactly at degree = w: every reordered message "
            "with degree < w is delivered, every one with degree >= w is "
            "discarded despite being fresh — the [2] observation",
            "Discrimination holds throughout (duplicates_delivered = 0)",
        ]

    return SweepSpec(
        experiment_id="E10",
        title="fresh-message discards vs reorder degree and window size",
        paper_artifact="Section 2 w-Delivery / Discrimination; motivates [2]",
        columns=[
            "w",
            "degree",
            "reordered",
            "fresh_discarded",
            "discard_rate",
            "w_delivery_holds",
            "duplicates_delivered",
        ],
        points=points,
        reduce_row=reduce_row,
        notes=notes,
    )


def run(
    window_sizes: list[int] | None = None,
    degrees: list[int] | None = None,
    messages: int = 2000,
    probability: float = 0.05,
    costs: CostModel = PAPER_COSTS,
    seed: int = 0,
    jobs: int = 1,
    store: Any = None,
) -> ExperimentResult:
    """Sweep reorder degree x window size; measure fresh discards."""
    spec = sweep(
        window_sizes=window_sizes,
        degrees=degrees,
        messages=messages,
        probability=probability,
        costs=costs,
        seed=seed,
    )
    return ExperimentDriver(spec, jobs=jobs, store=store).run()
