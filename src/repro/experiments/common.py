"""Shared experiment plumbing: result container and table rendering.

Experiments return structured rows; rendering is separate so benchmarks
can print paper-style tables while tests assert on the raw values.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any


def _format_cell(value: Any) -> str:
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.001:
            return f"{value:.3e}"
        return f"{value:.4g}"
    return str(value)


def render_table(columns: list[str], rows: list[dict[str, Any]]) -> str:
    """Render rows as an aligned plain-text table."""
    cells = [[_format_cell(row.get(col, "")) for col in columns] for row in rows]
    widths = [
        max(len(col), *(len(row[i]) for row in cells)) if cells else len(col)
        for i, col in enumerate(columns)
    ]
    header = "  ".join(col.ljust(width) for col, width in zip(columns, widths))
    rule = "-" * len(header)
    body = [
        "  ".join(cell.rjust(width) for cell, width in zip(row, widths))
        for row in cells
    ]
    return "\n".join([header, rule, *body])


@dataclass
class ExperimentResult:
    """Structured output of one experiment run.

    Attributes:
        experiment_id: e.g. ``"E1"``.
        title: human-readable description.
        paper_artifact: which figure/claim this reproduces.
        columns: ordered column names.
        rows: one dict per swept configuration.
        notes: free-form observations recorded by the experiment
            (bound checks, crossover positions, anomalies).
    """

    experiment_id: str
    title: str
    paper_artifact: str
    columns: list[str]
    rows: list[dict[str, Any]] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    def add_row(self, **values: Any) -> None:
        """Append one result row."""
        self.rows.append(values)

    def note(self, text: str) -> None:
        """Record an observation."""
        self.notes.append(text)

    def column(self, name: str) -> list[Any]:
        """All values of one column, in row order."""
        return [row.get(name) for row in self.rows]

    def render(self) -> str:
        """Paper-style text rendering of the full result."""
        lines = [
            f"== {self.experiment_id}: {self.title}",
            f"   reproduces: {self.paper_artifact}",
            "",
            render_table(self.columns, self.rows),
        ]
        if self.notes:
            lines.append("")
            lines.extend(f"note: {note}" for note in self.notes)
        return "\n".join(lines)
