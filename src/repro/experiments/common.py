"""Shared experiment plumbing: result container, table rendering, and the
couple of parameter helpers several sweeps share.

Experiments return structured rows; rendering is separate so benchmarks
can print paper-style tables while tests assert on the raw values.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any

from repro.ipsec.costs import CostModel


def _format_cell(value: Any) -> str:
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value == 0:
            return "0"
        # Decide fixed-vs-scientific on the value *as it would print*:
        # ``999.99996`` rounds to ``1000`` under ``%.4g``, so comparing
        # the raw value against the threshold would render two all-but-
        # equal values in different notations across the 1000 boundary.
        compact = f"{value:.4g}"
        magnitude = abs(float(compact))
        if magnitude >= 1000 or magnitude < 0.001:
            return f"{value:.3e}"
        return compact
    return str(value)


def render_table(columns: list[str], rows: list[dict[str, Any]]) -> str:
    """Render rows as an aligned plain-text table.

    Zero rows is a legal table (header and rule only) — experiments can
    legitimately reduce to nothing, e.g. a sweep over an empty axis.
    """
    cells = [[_format_cell(row.get(col, "")) for col in columns] for row in rows]
    widths = [
        max([len(col)] + [len(row[i]) for row in cells])
        for i, col in enumerate(columns)
    ]
    header = "  ".join(col.ljust(width) for col, width in zip(columns, widths))
    rule = "-" * len(header)
    body = [
        "  ".join(cell.rjust(width) for cell, width in zip(row, widths))
        for row in cells
    ]
    return "\n".join([header, rule, *body])


def swept_offsets(k: int, offsets_per_k: int) -> list[int]:
    """``offsets_per_k`` reset positions spread across one SAVE cycle.

    ``int(i * k / offsets_per_k)`` collides for small ``k`` (e.g. ``k=5,
    offsets_per_k=6`` yields offset 0 twice), which would silently re-run
    identical sessions — and collide outright with the sweep layer's
    unique-task-id invariant.  Deduplicated, order preserved.
    """
    return list(dict.fromkeys(
        int(i * k / offsets_per_k) for i in range(offsets_per_k)
    ))


def costs_for_k(k: int, base: CostModel) -> CostModel:
    """A cost model under which ``k`` strictly satisfies the sizing rule.

    The paper requires ``K >= T_save / T_send``; sweeping small ``K``
    under the fixed Pentium-III constants would violate the protocol's
    operating condition (and the bounds legitimately fail there — that
    regime is E6's subject).  Here the save spans ``max(1, k // 2)``
    messages for every swept ``k``.
    """
    return replace(base, t_save=max(1, k // 2) * base.t_send)


@dataclass
class ExperimentResult:
    """Structured output of one experiment run.

    Attributes:
        experiment_id: e.g. ``"E1"``.
        title: human-readable description.
        paper_artifact: which figure/claim this reproduces.
        columns: ordered column names.
        rows: one dict per swept configuration.
        notes: free-form observations recorded by the experiment
            (bound checks, crossover positions, anomalies).
    """

    experiment_id: str
    title: str
    paper_artifact: str
    columns: list[str]
    rows: list[dict[str, Any]] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    def add_row(self, **values: Any) -> None:
        """Append one result row."""
        self.rows.append(values)

    def note(self, text: str) -> None:
        """Record an observation."""
        self.notes.append(text)

    def column(self, name: str) -> list[Any]:
        """All values of one column, in row order."""
        return [row.get(name) for row in self.rows]

    def render(self) -> str:
        """Paper-style text rendering of the full result."""
        lines = [
            f"== {self.experiment_id}: {self.title}",
            f"   reproduces: {self.paper_artifact}",
            "",
            render_table(self.columns, self.rows),
        ]
        if self.notes:
            lines.append("")
            lines.extend(f"note: {note}" for note in self.notes)
        return "\n".join(lines)
