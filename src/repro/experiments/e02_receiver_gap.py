"""E2 — Figure 2: the receiver-reset gap across the SAVE cycle.

Mirror of E1 for process q: a reset lands ``t`` messages after a receiver
SAVE begins; FETCH returns either the previous checkpoint (in-flight case,
gap ``<= 2Kq``) or the fresh one (committed case, gap ``<= Kq``).  The
channel is lossless and in-order, the hypothesis of the paper's Fig. 2
analysis (the right edge advances by exactly one per received message).
"""

from __future__ import annotations

from repro.core.bounds import gap_bound
from repro.experiments.common import ExperimentResult
from repro.ipsec.costs import CostModel, PAPER_COSTS
from repro.workloads.scenarios import run_receiver_reset_scenario


def run(
    k: int = 50,
    offsets: list[int] | None = None,
    costs: CostModel = PAPER_COSTS,
    seed: int = 0,
) -> ExperimentResult:
    """Sweep the receiver reset across one SAVE cycle (see E1)."""
    result = ExperimentResult(
        experiment_id="E2",
        title="receiver-reset gap vs position in the SAVE cycle",
        paper_artifact="Figure 2 and the Section 5 receiver analysis",
        columns=[
            "offset_msgs",
            "save_in_flight",
            "gap",
            "bound_2k",
            "within_bound",
            "fresh_discarded",
            "discard_bound_2k",
            "replays_accepted",
        ],
    )
    if offsets is None:
        offsets = list(range(0, k, max(1, k // 25)))
    anchor = 2 * k
    bound = gap_bound(k)
    max_gap = -1
    max_discarded = -1
    for offset in offsets:
        scenario = run_receiver_reset_scenario(
            protected=True,
            k=k,
            reset_after_receives=anchor + offset,
            messages_after_reset=4 * k,
            costs=costs,
            seed=seed,
        )
        record = scenario.harness.receiver.reset_records[0]
        gap = record.gap if record.gap is not None else -1
        max_gap = max(max_gap, gap)
        discarded = scenario.report.fresh_discarded
        max_discarded = max(max_discarded, discarded)
        result.add_row(
            offset_msgs=offset,
            save_in_flight=record.save_in_flight,
            gap=gap,
            bound_2k=bound,
            within_bound=gap <= bound,
            fresh_discarded=discarded,
            discard_bound_2k=bound,
            replays_accepted=scenario.report.replays_accepted,
        )
    result.note(
        f"k={k}; max measured gap {max_gap} vs bound 2k={bound}; "
        f"max fresh discards {max_discarded} vs claim (ii) bound {bound}"
    )
    return result
