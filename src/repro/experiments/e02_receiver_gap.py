"""E2 — Figure 2: the receiver-reset gap across the SAVE cycle.

Mirror of E1 for process q: a reset lands ``t`` messages after a receiver
SAVE begins; FETCH returns either the previous checkpoint (in-flight case,
gap ``<= 2Kq``) or the fresh one (committed case, gap ``<= Kq``).  The
channel is lossless and in-order, the hypothesis of the paper's Fig. 2
analysis (the right edge advances by exactly one per received message).
"""

from __future__ import annotations

from typing import Any

from repro.core.bounds import gap_bound
from repro.experiments.common import ExperimentResult
from repro.experiments.sweep import ExperimentDriver, SweepPoint, SweepSpec, TaskCall
from repro.ipsec.costs import CostModel, PAPER_COSTS


def sweep(
    k: int = 50,
    offsets: list[int] | None = None,
    costs: CostModel = PAPER_COSTS,
    seed: int = 0,
) -> SweepSpec:
    """Declare the receiver-reset sweep across one SAVE cycle (see E1)."""
    if offsets is None:
        offsets = list(range(0, k, max(1, k // 25)))
    anchor = 2 * k
    bound = gap_bound(k)

    points = [
        SweepPoint(
            axis={"offset_msgs": offset},
            calls={"run": TaskCall(
                scenario="receiver_reset",
                params=dict(
                    protected=True,
                    k=k,
                    reset_after_receives=anchor + offset,
                    messages_after_reset=4 * k,
                    costs=costs,
                ),
                seed=seed,
            )},
        )
        for offset in offsets
    ]

    def reduce_row(axis: dict[str, Any], metrics: dict[str, Any]) -> dict[str, Any]:
        m = metrics["run"]
        record = m["receiver_reset_records"][0]
        gap = record["gap"] if record["gap"] is not None else -1
        return dict(
            offset_msgs=axis["offset_msgs"],
            save_in_flight=record["save_in_flight"],
            gap=gap,
            bound_2k=bound,
            within_bound=gap <= bound,
            fresh_discarded=m["fresh_discarded"],
            discard_bound_2k=bound,
            replays_accepted=m["replays_accepted"],
        )

    def notes(rows: list[dict[str, Any]]) -> list[str]:
        max_gap = max((row["gap"] for row in rows), default=-1)
        max_discarded = max((row["fresh_discarded"] for row in rows), default=-1)
        return [
            f"k={k}; max measured gap {max_gap} vs bound 2k={bound}; "
            f"max fresh discards {max_discarded} vs claim (ii) bound {bound}"
        ]

    return SweepSpec(
        experiment_id="E2",
        title="receiver-reset gap vs position in the SAVE cycle",
        paper_artifact="Figure 2 and the Section 5 receiver analysis",
        columns=[
            "offset_msgs",
            "save_in_flight",
            "gap",
            "bound_2k",
            "within_bound",
            "fresh_discarded",
            "discard_bound_2k",
            "replays_accepted",
        ],
        points=points,
        reduce_row=reduce_row,
        notes=notes,
    )


def run(
    k: int = 50,
    offsets: list[int] | None = None,
    costs: CostModel = PAPER_COSTS,
    seed: int = 0,
    jobs: int = 1,
    store: Any = None,
) -> ExperimentResult:
    """Sweep the receiver reset across one SAVE cycle (see E1)."""
    spec = sweep(k=k, offsets=offsets, costs=costs, seed=seed)
    return ExperimentDriver(spec, jobs=jobs, store=store).run()
