"""E5 — Section 3: the unprotected protocol fails *unboundedly*; SAVE/FETCH
holds the damage at a constant (the reproduction's headline comparison).

Two failure modes, swept over the pre-reset traffic volume ``x``:

* **receiver reset** — "an adversary can replay in order all the messages
  with sequence numbers within the range from 1 to x, and all these
  replayed messages will be unsuspectedly accepted by q": accepted
  replays grow ~linearly with ``x`` unprotected, stay 0 with SAVE/FETCH.
* **sender reset** — "all fresh messages sent from p to q with sequence
  numbers less than y - w + 1 ... will be discarded by q": fresh discards
  grow ~linearly with ``x`` unprotected, stay <= 2Kp with SAVE/FETCH.

Expected crossover: the unprotected lines grow without bound while both
SAVE/FETCH lines are flat — "who wins" at every ``x``, by a factor that
itself grows linearly.
"""

from __future__ import annotations

from repro.core.bounds import discarded_fresh_bound, lost_seq_bound
from repro.experiments.common import ExperimentResult
from repro.ipsec.costs import CostModel, PAPER_COSTS
from repro.workloads.scenarios import (
    run_receiver_reset_scenario,
    run_sender_reset_scenario,
)


def run(
    traffic_volumes: list[int] | None = None,
    k: int = 25,
    w: int = 64,
    costs: CostModel = PAPER_COSTS,
    seed: int = 0,
) -> ExperimentResult:
    """Sweep pre-reset traffic ``x``; compare unprotected vs SAVE/FETCH."""
    result = ExperimentResult(
        experiment_id="E5",
        title="failure growth vs pre-reset traffic: unprotected vs SAVE/FETCH",
        paper_artifact="Section 3 failure modes vs Section 5 guarantees",
        columns=[
            "x_pre_reset",
            "unprot_replays_accepted",
            "sf_replays_accepted",
            "unprot_fresh_discarded",
            "sf_fresh_discarded",
            "sf_lost_seqnums",
            "sf_bounds",
        ],
    )
    if traffic_volumes is None:
        traffic_volumes = [100, 250, 500, 1000, 2500]
    for x in traffic_volumes:
        # -- receiver reset + full-history replay --------------------------
        unprot_rx = run_receiver_reset_scenario(
            protected=False,
            k=k,
            w=w,
            reset_after_receives=x,
            messages_after_reset=0,
            costs=costs,
            seed=seed,
            replay_history_after=True,
        )
        sf_rx = run_receiver_reset_scenario(
            protected=True,
            k=k,
            w=w,
            reset_after_receives=x,
            messages_after_reset=0,
            costs=costs,
            seed=seed,
            replay_history_after=True,
        )
        # -- sender reset, traffic continues -------------------------------
        unprot_tx = run_sender_reset_scenario(
            protected=False,
            k=k,
            w=w,
            reset_after_sends=x,
            messages_after_reset=x,  # give the restarted sender x messages
            costs=costs,
            seed=seed,
        )
        sf_tx = run_sender_reset_scenario(
            protected=True,
            k=k,
            w=w,
            reset_after_sends=x,
            messages_after_reset=x,
            costs=costs,
            seed=seed,
        )
        sf_tx_record = sf_tx.harness.sender.reset_records[0]
        result.add_row(
            x_pre_reset=x,
            unprot_replays_accepted=unprot_rx.report.replays_accepted,
            sf_replays_accepted=sf_rx.report.replays_accepted,
            unprot_fresh_discarded=unprot_tx.report.fresh_discarded,
            sf_fresh_discarded=sf_tx.report.fresh_discarded,
            sf_lost_seqnums=sf_tx_record.lost_seqnums,
            sf_bounds=f"<= {lost_seq_bound(k)}/{discarded_fresh_bound(k)}",
        )
    replays = result.column("unprot_replays_accepted")
    if len(replays) >= 2 and replays[0] and replays[-1]:
        result.note(
            f"unprotected replay acceptance grows {replays[-1] / replays[0]:.1f}x "
            f"as traffic grows {traffic_volumes[-1] / traffic_volumes[0]:.1f}x "
            "(linear, unbounded); SAVE/FETCH flat at 0"
        )
    result.note(
        f"SAVE/FETCH collateral is constant in x: lost <= {lost_seq_bound(k)}, "
        f"discards <= {discarded_fresh_bound(k)}, independent of history length"
    )
    return result
