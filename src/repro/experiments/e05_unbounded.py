"""E5 — Section 3: the unprotected protocol fails *unboundedly*; SAVE/FETCH
holds the damage at a constant (the reproduction's headline comparison).

Two failure modes, swept over the pre-reset traffic volume ``x``:

* **receiver reset** — "an adversary can replay in order all the messages
  with sequence numbers within the range from 1 to x, and all these
  replayed messages will be unsuspectedly accepted by q": accepted
  replays grow ~linearly with ``x`` unprotected, stay 0 with SAVE/FETCH.
* **sender reset** — "all fresh messages sent from p to q with sequence
  numbers less than y - w + 1 ... will be discarded by q": fresh discards
  grow ~linearly with ``x`` unprotected, stay <= 2Kp with SAVE/FETCH.

Expected crossover: the unprotected lines grow without bound while both
SAVE/FETCH lines are flat — "who wins" at every ``x``, by a factor that
itself grows linearly.
"""

from __future__ import annotations

from typing import Any

from repro.core.bounds import discarded_fresh_bound, lost_seq_bound
from repro.experiments.common import ExperimentResult
from repro.experiments.sweep import ExperimentDriver, SweepPoint, SweepSpec, TaskCall
from repro.ipsec.costs import CostModel, PAPER_COSTS


def sweep(
    traffic_volumes: list[int] | None = None,
    k: int = 25,
    w: int = 64,
    costs: CostModel = PAPER_COSTS,
    seed: int = 0,
) -> SweepSpec:
    """Declare the pre-reset traffic sweep: unprotected vs SAVE/FETCH."""
    if traffic_volumes is None:
        traffic_volumes = [100, 250, 500, 1000, 2500]

    def rx_call(protected: bool, x: int) -> TaskCall:
        return TaskCall(
            scenario="receiver_reset",
            params=dict(
                protected=protected,
                k=k,
                w=w,
                reset_after_receives=x,
                messages_after_reset=0,
                costs=costs,
                replay_history_after=True,
            ),
            seed=seed,
        )

    def tx_call(protected: bool, x: int) -> TaskCall:
        return TaskCall(
            scenario="sender_reset",
            params=dict(
                protected=protected,
                k=k,
                w=w,
                reset_after_sends=x,
                messages_after_reset=x,  # give the restarted sender x messages
                costs=costs,
            ),
            seed=seed,
        )

    points = [
        SweepPoint(
            axis={"x_pre_reset": x},
            calls={
                "unprot_rx": rx_call(False, x),
                "sf_rx": rx_call(True, x),
                "unprot_tx": tx_call(False, x),
                "sf_tx": tx_call(True, x),
            },
        )
        for x in traffic_volumes
    ]

    def reduce_row(axis: dict[str, Any], metrics: dict[str, Any]) -> dict[str, Any]:
        sf_tx_record = metrics["sf_tx"]["sender_reset_records"][0]
        return dict(
            x_pre_reset=axis["x_pre_reset"],
            unprot_replays_accepted=metrics["unprot_rx"]["replays_accepted"],
            sf_replays_accepted=metrics["sf_rx"]["replays_accepted"],
            unprot_fresh_discarded=metrics["unprot_tx"]["fresh_discarded"],
            sf_fresh_discarded=metrics["sf_tx"]["fresh_discarded"],
            sf_lost_seqnums=sf_tx_record["lost_seqnums"],
            sf_bounds=f"<= {lost_seq_bound(k)}/{discarded_fresh_bound(k)}",
        )

    def notes(rows: list[dict[str, Any]]) -> list[str]:
        built = []
        replays = [row["unprot_replays_accepted"] for row in rows]
        if len(replays) >= 2 and replays[0] and replays[-1]:
            built.append(
                f"unprotected replay acceptance grows {replays[-1] / replays[0]:.1f}x "
                f"as traffic grows {traffic_volumes[-1] / traffic_volumes[0]:.1f}x "
                "(linear, unbounded); SAVE/FETCH flat at 0"
            )
        built.append(
            f"SAVE/FETCH collateral is constant in x: lost <= {lost_seq_bound(k)}, "
            f"discards <= {discarded_fresh_bound(k)}, independent of history length"
        )
        return built

    return SweepSpec(
        experiment_id="E5",
        title="failure growth vs pre-reset traffic: unprotected vs SAVE/FETCH",
        paper_artifact="Section 3 failure modes vs Section 5 guarantees",
        columns=[
            "x_pre_reset",
            "unprot_replays_accepted",
            "sf_replays_accepted",
            "unprot_fresh_discarded",
            "sf_fresh_discarded",
            "sf_lost_seqnums",
            "sf_bounds",
        ],
        points=points,
        reduce_row=reduce_row,
        notes=notes,
    )


def run(
    traffic_volumes: list[int] | None = None,
    k: int = 25,
    w: int = 64,
    costs: CostModel = PAPER_COSTS,
    seed: int = 0,
    jobs: int = 1,
    store: Any = None,
) -> ExperimentResult:
    """Sweep pre-reset traffic ``x``; compare unprotected vs SAVE/FETCH."""
    spec = sweep(traffic_volumes=traffic_volumes, k=k, w=w, costs=costs, seed=seed)
    return ExperimentDriver(spec, jobs=jobs, store=store).run()
