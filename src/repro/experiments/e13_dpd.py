"""E13 (supplementary) — dead-peer detection time vs probing parameters.

Not a paper table, but the load-bearing constant of two paper arguments:
the IETF remedy fires "once the reset is detected" (its total cost in E7
includes the detection delay) and the Section 6 recovery starts its
keep-alive clock at detection.  This experiment measures detection time
for the two cited IETF mechanisms — heartbeat probing and traffic-based
probing — over simulated links, sweeping the probe cadence (see
:func:`repro.workloads.scenarios.run_dpd_scenario`).

Expected shape: detection time ~ interval + max_misses * interval (plus a
timeout), linear in the probe cadence for both mechanisms; traffic-based
probing sends zero probes while the conversation is healthy.
"""

from __future__ import annotations

from typing import Any

from repro.experiments.common import ExperimentResult
from repro.experiments.sweep import ExperimentDriver, SweepPoint, SweepSpec, TaskCall


def sweep(
    cadences: list[float] | None = None,
    rtt: float = 0.01,
    reset_at: float = 1.0,
) -> SweepSpec:
    """Declare the probe-cadence sweep for both DPD mechanisms."""
    if cadences is None:
        cadences = [0.1, 0.5, 2.0]

    points = [
        SweepPoint(
            axis={"mechanism": mechanism, "cadence_s": cadence},
            calls={"run": TaskCall(
                scenario="dpd",
                params=dict(
                    mechanism=mechanism,
                    cadence=cadence,
                    rtt=rtt,
                    reset_at=reset_at,
                ),
            )},
        )
        for mechanism in ("heartbeat", "traffic")
        for cadence in cadences
    ]

    def reduce_row(axis: dict[str, Any], metrics: dict[str, Any]) -> dict[str, Any]:
        m = metrics["run"]
        detection = m["detection_s"] if m["detection_s"] is not None else float("inf")
        return dict(
            mechanism=axis["mechanism"],
            cadence_s=axis["cadence_s"],
            detection_s=round(detection, 3),
            probes_while_healthy=m["probes_while_healthy"],
            detected=m["detected"],
        )

    def notes(rows: list[dict[str, Any]]) -> list[str]:
        return [
            "detection ~ cadence x (1 + max_misses): tighter probing detects "
            "faster at the cost of probe traffic; the traffic-based mechanism "
            "sends no probes while the conversation is healthy (its "
            "probes_while_healthy counts only post-silence probing)"
        ]

    return SweepSpec(
        experiment_id="E13",
        title="dead-peer detection time vs probe cadence",
        paper_artifact="the detection-delay term of Sections 3 and 6 "
        "(IETF drafts [3] and [7])",
        columns=[
            "mechanism",
            "cadence_s",
            "detection_s",
            "probes_while_healthy",
            "detected",
        ],
        points=points,
        reduce_row=reduce_row,
        notes=notes,
    )


def run(
    cadences: list[float] | None = None,
    rtt: float = 0.01,
    reset_at: float = 1.0,
    jobs: int = 1,
    store: Any = None,
) -> ExperimentResult:
    """Sweep the probe cadence for both DPD mechanisms."""
    spec = sweep(cadences=cadences, rtt=rtt, reset_at=reset_at)
    return ExperimentDriver(spec, jobs=jobs, store=store).run()
