"""E13 (supplementary) — dead-peer detection time vs probing parameters.

Not a paper table, but the load-bearing constant of two paper arguments:
the IETF remedy fires "once the reset is detected" (its total cost in E7
includes the detection delay) and the Section 6 recovery starts its
keep-alive clock at detection.  This experiment measures detection time
for the two cited IETF mechanisms — heartbeat probing and traffic-based
probing — over simulated links, sweeping the probe cadence.

Expected shape: detection time ~ interval + max_misses * interval (plus a
timeout), linear in the probe cadence for both mechanisms; traffic-based
probing sends zero probes while the conversation is healthy.
"""

from __future__ import annotations

from repro.core.dpd import HeartbeatDpd, TrafficDpd
from repro.experiments.common import ExperimentResult
from repro.sim.engine import Engine
from repro.sim.process import Timer


class _Peer:
    """Answers probes (after half an RTT) until reset."""

    def __init__(self, engine: Engine, rtt: float) -> None:
        self.engine = engine
        self.rtt = rtt
        self.up = True
        self.reply_to = None

    def on_probe(self, token: int) -> None:
        if self.up and self.reply_to is not None:
            self.engine.call_later(self.rtt / 2, self.reply_to, token)


def _measure(mechanism: str, cadence: float, rtt: float, reset_at: float) -> tuple[float, int]:
    """Returns (detection time, probes sent before the reset)."""
    engine = Engine()
    peer = _Peer(engine, rtt)
    dead_at: list[float] = []

    def send_probe(token: int) -> None:
        engine.call_later(rtt / 2, peer.on_probe, token)

    if mechanism == "heartbeat":
        dpd = HeartbeatDpd(
            engine, "dpd", send_probe, lambda: dead_at.append(engine.now),
            interval=cadence, timeout=4 * rtt, max_misses=3,
        )
        peer.reply_to = dpd.on_probe_ack
        dpd.start()
        chatter = None
    else:
        dpd = TrafficDpd(
            engine, "dpd", send_probe, lambda: dead_at.append(engine.now),
            idle_threshold=cadence, timeout=4 * rtt, max_misses=3,
        )
        peer.reply_to = dpd.on_probe_ack

        def chat() -> None:
            dpd.note_sent()
            if peer.up:
                engine.call_later(rtt / 2, dpd.note_received)

        chatter = Timer(engine, cadence / 4, chat)
        chatter.start()
        dpd.start()

    probes_before = {"n": 0}

    def mark_reset() -> None:
        peer.up = False
        probes_before["n"] = dpd.probes_sent

    engine.call_at(reset_at, mark_reset)
    engine.run(until=reset_at + 80 * cadence)
    dpd.stop()
    if chatter is not None:
        chatter.stop()
    detection = dead_at[0] - reset_at if dead_at else float("inf")
    return detection, probes_before["n"]


def run(
    cadences: list[float] | None = None,
    rtt: float = 0.01,
    reset_at: float = 1.0,
) -> ExperimentResult:
    """Sweep the probe cadence for both DPD mechanisms."""
    result = ExperimentResult(
        experiment_id="E13",
        title="dead-peer detection time vs probe cadence",
        paper_artifact="the detection-delay term of Sections 3 and 6 "
        "(IETF drafts [3] and [7])",
        columns=[
            "mechanism",
            "cadence_s",
            "detection_s",
            "probes_while_healthy",
            "detected",
        ],
    )
    if cadences is None:
        cadences = [0.1, 0.5, 2.0]
    for mechanism in ("heartbeat", "traffic"):
        for cadence in cadences:
            detection, probes = _measure(mechanism, cadence, rtt, reset_at)
            result.add_row(
                mechanism=mechanism,
                cadence_s=cadence,
                detection_s=round(detection, 3),
                probes_while_healthy=probes,
                detected=detection != float("inf"),
            )
    result.note(
        "detection ~ cadence x (1 + max_misses): tighter probing detects "
        "faster at the cost of probe traffic; the traffic-based mechanism "
        "sends no probes while the conversation is healthy (its "
        "probes_while_healthy counts only post-silence probing)"
    )
    return result
