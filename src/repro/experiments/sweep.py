"""Declarative experiment sweeps, executed through the fleet substrate.

Before this layer, every experiment module ran its own bespoke serial
``for``-loop over ``run_*`` scenario calls — one core, no resume, and
fourteen copies of the same plumbing.  A :class:`SweepSpec` instead
*declares* an experiment: an ordered list of :class:`SweepPoint` rows,
each naming the scenario calls (registry name + JSON-safe kwargs + seed)
its row needs, plus a pure reducer folding the resulting task metrics
back into the row dict.  :class:`ExperimentDriver` expands the spec into
:class:`~repro.fleet.spec.FleetTask` units, executes them through
:class:`~repro.fleet.runner.FleetRunner` (serial or ``jobs=N``, resumable
when given a file-backed :class:`~repro.fleet.results.ResultStore`), and
reduces the records into the familiar
:class:`~repro.experiments.common.ExperimentResult`.

Determinism contract: every task carries an explicit seed, metrics
round-trip through the store's canonical JSON on every path (including
the in-memory store), and reduction reads records by task id — so serial,
parallel, and resumed-after-interrupt runs of the same spec produce
byte-identical rows.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Mapping

from repro.experiments.common import ExperimentResult
from repro.fleet.results import STATUS_OK, MemoryResultStore, ResultStore, TaskRecord
from repro.fleet.runner import FleetOutcome, FleetRunner, ProgressFn
from repro.fleet.spec import FleetTask, encode_params, validate_scenario_params


@dataclass(frozen=True)
class TaskCall:
    """One scenario invocation a sweep row depends on.

    Attributes:
        scenario: name in :data:`repro.workloads.scenarios.SCENARIOS`.
        params: scenario kwargs (seed excluded; ``CostModel`` values are
            fine — they are JSON-encoded at expansion time).
        seed: explicit scenario seed.  Experiments pin seeds (the rows
            must reproduce the paper tables exactly), so sweeps carry
            them verbatim instead of deriving them spawn-key style.
    """

    scenario: str
    params: Mapping[str, Any] = field(default_factory=dict)
    seed: int = 0


@dataclass(frozen=True)
class SweepPoint:
    """One experiment row: its axis coordinates plus the calls it needs.

    Attributes:
        axis: the row's swept coordinates (passed to the reducer; purely
            informational for single-axis sweeps, load-bearing for rows
            that branch on a case label).
        calls: role name -> :class:`TaskCall`.  Roles are local to the
            point ("run", "clean_o3", "attacked_o3", ...) and become the
            task-id suffix, so resume keys stay stable under reordering
            of other points.
    """

    axis: Mapping[str, Any]
    calls: Mapping[str, TaskCall]


#: Per-row reducer: ``(axis, {role: metrics}) -> row dict``.  Receives the
#: JSON-round-tripped task metrics for every role the point declared and
#: returns the complete, ordered row (axis values included).
RowReducer = Callable[[dict[str, Any], dict[str, dict[str, Any]]], dict[str, Any]]

#: Notes builder: ``(rows) -> [note, ...]``, run after all rows reduce.
NotesFn = Callable[[list[dict[str, Any]]], list[str]]


class ExperimentTaskError(RuntimeError):
    """A sweep task failed (or vanished from the store) during reduction.

    Experiments must fail loudly — a half-reduced paper table is worse
    than no table — so unlike open-ended fleet campaigns (which record
    errors and retry on resume) the driver raises as soon as a row's
    record is missing or errored.
    """


@dataclass
class SweepSpec:
    """A complete declarative experiment: points, reducer, presentation.

    Satisfies the :class:`~repro.fleet.runner.FleetRunner` plan interface
    (``tasks()`` + ``max_events``), so a sweep executes on the same
    runner/store/resume machinery as any fleet campaign.

    Attributes:
        experiment_id: e.g. ``"E1"`` (also the task-id prefix).
        title / paper_artifact / columns: presentation metadata, copied
            onto the reduced :class:`ExperimentResult`.
        points: ordered sweep rows.
        reduce_row: per-row reducer (see :data:`RowReducer`).
        notes: optional notes builder over the reduced rows.
        max_events: per-task engine event budget; ``None`` (default)
            disables the guard — experiments are fixed, vetted workloads,
            unlike open-ended campaign specs.
    """

    experiment_id: str
    title: str
    paper_artifact: str
    columns: list[str]
    points: list[SweepPoint]
    reduce_row: RowReducer
    notes: NotesFn | None = None
    max_events: int | None = None

    def task_id(self, index: int, role: str) -> str:
        """Stable task id for one point's role (the resume key)."""
        return f"{self.experiment_id}/{index:04d}/{role}"

    def session_count(self) -> int:
        """Total number of scenario runs the sweep expands to."""
        return sum(len(point.calls) for point in self.points)

    def tasks(self) -> list[FleetTask]:
        """Expand into the deterministic, ordered, validated task list."""
        expanded: list[FleetTask] = []
        for index, point in enumerate(self.points):
            for role, call in point.calls.items():
                validate_scenario_params(
                    call.scenario,
                    call.params,
                    f"experiment {self.experiment_id}",
                )
                expanded.append(FleetTask(
                    task_id=self.task_id(index, role),
                    scenario=call.scenario,
                    params=encode_params(call.params),
                    seed=call.seed,
                ))
        ids = [task.task_id for task in expanded]
        if len(set(ids)) != len(ids):
            raise ValueError(
                f"experiment {self.experiment_id}: duplicate task ids "
                "(two points share an index/role pair?)"
            )
        return expanded


class ExperimentDriver:
    """Executes a :class:`SweepSpec` and reduces it to a result table.

    Args:
        spec: the sweep to run.
        jobs: worker processes (``1`` = in-process serial).
        store: optional durable store; pass any file-backed store
            backend (:class:`ResultStore`,
            :class:`~repro.fleet.results.ShardedResultStore`,
            :class:`~repro.fleet.results.SqliteResultStore`) to make the
            run resumable (finished tasks are skipped on re-run).
            Defaults to an in-memory store — same JSON round-trip, no
            file.
        progress: optional per-record callback, forwarded to the runner.
        obs_dir: observe every task (forwarded to the runner): per-task
            metrics files plus a campaign rollup land under this
            directory — same semantics as ``fleet --obs``.
    """

    def __init__(
        self,
        spec: SweepSpec,
        jobs: int = 1,
        store: ResultStore | MemoryResultStore | Any | None = None,
        progress: ProgressFn | None = None,
        obs_dir: str | Path | None = None,
    ) -> None:
        self.spec = spec
        self.jobs = jobs
        self.store = store if store is not None else MemoryResultStore()
        self.progress = progress
        self.obs_dir = obs_dir
        #: Populated by :meth:`run` — the fleet outcome of the last call
        #: (task counts, resume skips, wall time, sessions/second).
        self.outcome: FleetOutcome | None = None

    def run(self) -> ExperimentResult:
        """Execute all pending tasks, then reduce the store to rows."""
        runner = FleetRunner(
            self.spec, self.store, jobs=self.jobs, progress=self.progress,
            obs_dir=self.obs_dir,
        )
        self.outcome = runner.run()
        return self.reduce()

    def reduce(self) -> ExperimentResult:
        """Fold the store's records into the experiment's row table.

        Pure given the store contents — callable on its own to re-render
        a finished (or resumed) run without executing anything.
        """
        spec = self.spec
        latest: dict[str, TaskRecord] = {
            record.task_id: record for record in self.store.records()
        }
        result = ExperimentResult(
            experiment_id=spec.experiment_id,
            title=spec.title,
            paper_artifact=spec.paper_artifact,
            columns=list(spec.columns),
        )
        for index, point in enumerate(spec.points):
            metrics: dict[str, dict[str, Any]] = {}
            for role, call in point.calls.items():
                task_id = spec.task_id(index, role)
                record = latest.get(task_id)
                if record is None:
                    raise ExperimentTaskError(
                        f"{task_id}: no record in store (interrupted run? "
                        "re-run with the same store to resume)"
                    )
                if record.status != STATUS_OK:
                    raise ExperimentTaskError(f"{task_id}: {record.error}")
                # Guard against a stale store: task ids are positional, so
                # an old record could otherwise be silently attributed to a
                # point whose parameters have since changed.
                expected = json.dumps(
                    encode_params(call.params), sort_keys=True
                )
                stored = json.dumps(record.params, sort_keys=True)
                if (record.scenario != call.scenario
                        or record.seed != call.seed
                        or stored != expected):
                    raise ExperimentTaskError(
                        f"{task_id}: stored record does not match the "
                        "current sweep (scenario/params/seed changed since "
                        "the store was written); use a fresh store "
                        "directory or delete the stale file"
                    )
                metrics[role] = record.metrics
            result.add_row(**spec.reduce_row(dict(point.axis), metrics))
        if spec.notes is not None:
            for note in spec.notes(result.rows):
                result.note(note)
        return result


def run_sweep(
    spec: SweepSpec,
    jobs: int = 1,
    store: ResultStore | MemoryResultStore | Any | None = None,
    progress: ProgressFn | None = None,
    obs_dir: str | Path | None = None,
) -> ExperimentResult:
    """Convenience wrapper: build the driver and run the sweep."""
    return ExperimentDriver(
        spec, jobs=jobs, store=store, progress=progress, obs_dir=obs_dir
    ).run()
