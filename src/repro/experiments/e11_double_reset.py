"""E11 — Section 4's second-reset hazard and the recovery-design ablation.

The paper motivates two wake-up design points:

* the **leap number must be 2K** ("This leap number must be large enough
  to ensure that ... the resulting new sequence number is larger than all
  previously used sequence numbers");
* the reloaded-and-leaped value must be **SAVEd synchronously before
  use** ("another reset can occur to the same computer that just waked up
  and has not yet executed the first SAVE ... those sequence numbers that
  have been used before the second reset occurs will be reused").

This experiment ablates both, under a double-reset fault: the second
reset strikes while the sender is already recovering from the first.
Expected: the paper's configuration survives (no reuse, no replay
accepted); ``leap 1K`` reuses numbers when the first reset lands during
an in-flight save; ``leap 0`` reuses massively; ``skip wake save``
survives a single reset but reuses under the double reset — exactly the
hazard the synchronous SAVE exists to close.
"""

from __future__ import annotations

from repro.core.protocol import build_protocol
from repro.core.reset import reset_during_save
from repro.experiments.common import ExperimentResult
from repro.ipsec.costs import CostModel, PAPER_COSTS


def _run_variant(
    leap_factor: int,
    skip_wake_save: bool,
    double_reset: bool,
    k: int,
    costs: CostModel,
    seed: int,
) -> dict[str, object]:
    harness = build_protocol(
        protected=True,
        k_p=2 * k,  # save spans half the interval: both Fig. 1 cases live
        k_q=2 * k,
        costs=costs,
        seed=seed,
        leap_factor=leap_factor,
        skip_wake_save=skip_wake_save,
    )
    down = costs.t_save  # wake quickly so recovery overlaps traffic

    # First reset: strike inside the second background save.
    reset_during_save(
        harness.engine,
        harness.sender,
        harness.sender.store,  # type: ignore[attr-defined]
        nth_save=2,
        fraction=0.5,
        down_for=down,
    )
    if double_reset:
        # Second reset: strike inside the *synchronous wake save* of the
        # first recovery (or, when that save is skipped, immediately
        # after the first messages of the resumed stream).
        fired = {"done": False}

        def second_strike() -> None:
            if fired["done"]:
                return
            fired["done"] = True
            harness.sender.reset(down_for=down)

        if skip_wake_save:
            def on_resume() -> None:
                if not fired["done"]:
                    # Let a handful of post-recovery messages out first so
                    # there is something to reuse.
                    harness.engine.call_later(
                        5 * costs.t_send, second_strike
                    )

            harness.sender.add_resume_listener(on_resume)
        else:
            reset_during_save(
                harness.engine,
                harness.sender,
                harness.sender.store,  # type: ignore[attr-defined]
                nth_save=3,  # the wake save is the 3rd start
                fraction=0.5,
                down_for=down,
                include_synchronous=True,
            )

    messages = 20 * k
    harness.sender.start_traffic(count=messages)
    harness.run(until=(messages + 10) * costs.t_send + 10 * (down + costs.t_save))
    report = harness.score(check_bounds=False)
    reuse = sum(
        1
        for record in harness.sender.reset_records
        if record.lost_seqnums is not None and record.lost_seqnums < 0
    )
    min_lost = min(
        (
            record.lost_seqnums
            for record in harness.sender.reset_records
            if record.lost_seqnums is not None
        ),
        default=0,
    )
    return {
        "resets": len(harness.sender.reset_records),
        "reuse_events": reuse,
        "min_lost": min_lost,
        "replays_accepted": report.replays_accepted,
        "safe": reuse == 0 and report.replays_accepted == 0,
    }


def run(
    k: int = 25,
    costs: CostModel = PAPER_COSTS,
    seed: int = 0,
) -> ExperimentResult:
    """Ablate the leap factor and the synchronous wake save."""
    result = ExperimentResult(
        experiment_id="E11",
        title="recovery-design ablation under single and double resets",
        paper_artifact="Section 4: the 2K leap and the synchronous wake SAVE",
        columns=[
            "variant",
            "double_reset",
            "resets",
            "reuse_events",
            "min_lost",
            "replays_accepted",
            "safe",
        ],
    )
    variants: list[tuple[str, int, bool]] = [
        ("paper (leap 2K, wake save)", 2, False),
        ("leap 1K", 1, False),
        ("leap 0", 0, False),
        ("skip wake save", 2, True),
    ]
    for label, leap, skip in variants:
        for double_reset in (False, True):
            outcome = _run_variant(
                leap_factor=leap,
                skip_wake_save=skip,
                double_reset=double_reset,
                k=k,
                costs=costs,
                seed=seed,
            )
            result.add_row(
                variant=label,
                double_reset=double_reset,
                **outcome,
            )
    result.note(
        "negative min_lost = sequence numbers reused after a reset (the "
        "failure both design points exist to prevent); the paper's "
        "configuration is the only one safe under both fault patterns"
    )
    return result
