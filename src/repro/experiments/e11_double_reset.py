"""E11 — Section 4's second-reset hazard and the recovery-design ablation.

The paper motivates two wake-up design points:

* the **leap number must be 2K** ("This leap number must be large enough
  to ensure that ... the resulting new sequence number is larger than all
  previously used sequence numbers");
* the reloaded-and-leaped value must be **SAVEd synchronously before
  use** ("another reset can occur to the same computer that just waked up
  and has not yet executed the first SAVE ... those sequence numbers that
  have been used before the second reset occurs will be reused").

This experiment ablates both, under a double-reset fault: the second
reset strikes while the sender is already recovering from the first (see
:func:`repro.workloads.scenarios.run_recovery_ablation_scenario`).
Expected: the paper's configuration survives (no reuse, no replay
accepted); ``leap 1K`` reuses numbers when the first reset lands during
an in-flight save; ``leap 0`` reuses massively; ``skip wake save``
survives a single reset but reuses under the double reset — exactly the
hazard the synchronous SAVE exists to close.
"""

from __future__ import annotations

from typing import Any

from repro.experiments.common import ExperimentResult
from repro.experiments.sweep import ExperimentDriver, SweepPoint, SweepSpec, TaskCall
from repro.ipsec.costs import CostModel, PAPER_COSTS

#: The ablated configurations: (label, leap_factor, skip_wake_save).
VARIANTS: list[tuple[str, int, bool]] = [
    ("paper (leap 2K, wake save)", 2, False),
    ("leap 1K", 1, False),
    ("leap 0", 0, False),
    ("skip wake save", 2, True),
]


def sweep(
    k: int = 25,
    costs: CostModel = PAPER_COSTS,
    seed: int = 0,
) -> SweepSpec:
    """Declare the leap-factor / wake-save ablation sweep."""
    points = [
        SweepPoint(
            axis={"variant": label, "double_reset": double_reset},
            calls={"run": TaskCall(
                scenario="recovery_ablation",
                params=dict(
                    leap_factor=leap,
                    skip_wake_save=skip,
                    double_reset=double_reset,
                    k=k,
                    costs=costs,
                ),
                seed=seed,
            )},
        )
        for label, leap, skip in VARIANTS
        for double_reset in (False, True)
    ]

    def reduce_row(axis: dict[str, Any], metrics: dict[str, Any]) -> dict[str, Any]:
        m = metrics["run"]
        return dict(
            variant=axis["variant"],
            double_reset=axis["double_reset"],
            resets=m["resets"],
            reuse_events=m["reuse_events"],
            min_lost=m["min_lost"],
            replays_accepted=m["replays_accepted"],
            safe=m["safe"],
        )

    def notes(rows: list[dict[str, Any]]) -> list[str]:
        return [
            "negative min_lost = sequence numbers reused after a reset (the "
            "failure both design points exist to prevent); the paper's "
            "configuration is the only one safe under both fault patterns"
        ]

    return SweepSpec(
        experiment_id="E11",
        title="recovery-design ablation under single and double resets",
        paper_artifact="Section 4: the 2K leap and the synchronous wake SAVE",
        columns=[
            "variant",
            "double_reset",
            "resets",
            "reuse_events",
            "min_lost",
            "replays_accepted",
            "safe",
        ],
        points=points,
        reduce_row=reduce_row,
        notes=notes,
    )


def run(
    k: int = 25,
    costs: CostModel = PAPER_COSTS,
    seed: int = 0,
    jobs: int = 1,
    store: Any = None,
) -> ExperimentResult:
    """Ablate the leap factor and the synchronous wake save."""
    spec = sweep(k=k, costs=costs, seed=seed)
    return ExperimentDriver(spec, jobs=jobs, store=store).run()
