"""E16 — extension: convergence on time-varying paths.

The paper's claims hold on one fixed channel.  This experiment crosses
the netpath *phase patterns* — a flapping route (repeated blackhole
windows), a mobile handover (outage + regime shift + NAT rebinding at
one instant), and a bare NAT rebinding under each receiver policy —
with a *reset schedule*: no endpoint reset, a sender reset landing
**during** the path impairment, or one landing safely **after** it.
Every cell runs a protected SAVE/FETCH pair through the corresponding
``workloads.SCENARIOS`` entry.

Expected shape:

* ``replays`` stays 0 everywhere — the anti-replay window, not the
  address check, is the replay authority, and neither path loss nor a
  reset overlapping the impairment opens it.
* ``rebind_on_valid`` rows deliver the post-rebinding stream and record
  exactly one rebind; ``strict`` rows show the tunnel killed instead
  (``gate_rejected`` ~ the whole tail, deliveries collapse) — safe but
  unavailable, the trade the policy table exists to show.
* a ``during`` reset interleaves recovery with the impairment and
  still converges — the cost is availability, never safety.  (It can
  even *shrink* ``never_arrived`` versus ``after``: a sender silenced
  by its reset offers nothing into the dark windows, so fewer packets
  die on the path — the reset schedule moves loss between the
  blackhole and the suppressed-send columns, it never opens the
  window.)
"""

from __future__ import annotations

from typing import Any

from repro.experiments.common import ExperimentResult
from repro.experiments.sweep import ExperimentDriver, SweepPoint, SweepSpec, TaskCall
from repro.ipsec.costs import CostModel, PAPER_COSTS

#: (pattern label, scenario registry name, extra scenario params).
PATTERNS: list[tuple[str, str, dict[str, Any]]] = [
    ("flap", "path_flap", {}),
    ("handover", "mobile_handover", {}),
    ("nat_valid", "nat_rebinding", {"policy": "rebind_on_valid"}),
    ("nat_strict", "nat_rebinding", {"policy": "strict"}),
]

#: The reset-schedule axis (see ``_schedule_reset`` in workloads).
RESET_SCHEDULES = ["none", "during", "after"]


def sweep(
    patterns: list[str] | None = None,
    reset_schedules: list[str] | None = None,
    scale: int = 300,
    costs: CostModel = PAPER_COSTS,
    seed: int = 0,
) -> SweepSpec:
    """Declare the phase-pattern x reset-schedule sweep.

    ``scale`` sets the per-phase traffic volume (sends before the
    impairment and after it), so the full table's cost is one knob.
    """
    selected = [
        entry for entry in PATTERNS if patterns is None or entry[0] in patterns
    ]
    schedules = reset_schedules if reset_schedules is not None else RESET_SCHEDULES

    def params_for(scenario: str, extra: dict[str, Any], schedule: str) -> dict[str, Any]:
        params: dict[str, Any] = dict(extra, reset_schedule=schedule, costs=costs)
        if scenario == "path_flap":
            params.update(messages=2 * scale, flap_after_sends=scale)
        elif scenario == "mobile_handover":
            params.update(
                handover_after_sends=scale, messages_after_handover=scale
            )
        else:  # nat_rebinding
            params.update(rebind_after_sends=scale, messages_after_rebind=scale)
        return params

    points = [
        SweepPoint(
            axis={"pattern": pattern, "reset": schedule, "scenario": scenario},
            calls={"run": TaskCall(
                scenario=scenario,
                params=params_for(scenario, extra, schedule),
                seed=seed,
            )},
        )
        for pattern, scenario, extra in selected
        for schedule in schedules
    ]

    def reduce_row(axis: dict[str, Any], metrics: dict[str, Any]) -> dict[str, Any]:
        m = metrics["run"]
        nat = m.get("nat", {})
        return dict(
            pattern=axis["pattern"],
            reset=axis["reset"],
            replays=m["replays_accepted"],
            delivered=m["delivered_uids"],
            discarded=m["fresh_discarded"],
            never_arrived=m["never_arrived"],
            blackholed=m.get("blackholed", 0),
            gate_rejected=nat.get("rejected", 0),
            rebinds=nat.get("rebinds", 0),
            resets=m["sender_resets"],
        )

    def notes(rows: list[dict[str, Any]]) -> list[str]:
        built = [
            "phase patterns: flap = repeated blackhole windows; handover = "
            "outage + regime shift + NAT rebinding at one instant; nat_* = "
            "bare rebinding under each receiver policy",
            "reset schedule: the sender reset lands during the impairment "
            "window or after the path settles",
        ]
        if all(row["replays"] == 0 for row in rows):
            built.append(
                "replays stayed 0 in every cell: the anti-replay window, not "
                "the address binding, is the replay authority on a moving path"
            )
        strict = [r for r in rows if r["pattern"] == "nat_strict"]
        if strict and all(r["gate_rejected"] > 0 for r in strict):
            built.append(
                "strict rebinding kills the tunnel after the NAT moves "
                "(the whole post-rebinding stream dies at the gate); "
                "rebind_on_valid keeps delivering with exactly one rebind"
            )
        return built

    return SweepSpec(
        experiment_id="E16",
        title="path dynamics: phase pattern x reset schedule",
        paper_artifact="extension: Section 5 claims on time-varying paths",
        columns=[
            "pattern", "reset", "replays", "delivered", "discarded",
            "never_arrived", "blackholed", "gate_rejected", "rebinds", "resets",
        ],
        points=points,
        reduce_row=reduce_row,
        notes=notes,
    )


def run(
    patterns: list[str] | None = None,
    reset_schedules: list[str] | None = None,
    scale: int = 300,
    costs: CostModel = PAPER_COSTS,
    seed: int = 0,
    jobs: int = 1,
    store: Any = None,
) -> ExperimentResult:
    """Sweep phase pattern x reset schedule through the fleet driver."""
    spec = sweep(
        patterns=patterns,
        reset_schedules=reset_schedules,
        scale=scale,
        costs=costs,
        seed=seed,
    )
    return ExperimentDriver(spec, jobs=jobs, store=store).run()
