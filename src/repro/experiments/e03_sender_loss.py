"""E3 — Section 5 claim (i): bounded loss, zero discards, after a sender reset.

"When the sender is reset, a bounded number of sequence numbers will be
lost but no fresh message will be discarded by the receiver if no message
reorder occurs. ... the total number of lost sequence number is bounded by
2Kp."

Sweeps ``Kp`` and, for each, takes the worst case over several reset
positions in the SAVE cycle.  Channel: in-order, lossless (the claim's
hypothesis).  Expected: ``max lost <= 2Kp`` with the bound nearly tight,
``fresh_discarded == 0`` and ``replays_accepted == 0`` everywhere.
"""

from __future__ import annotations

from repro.core.bounds import lost_seq_bound
from repro.experiments.common import ExperimentResult
from repro.ipsec.costs import CostModel, PAPER_COSTS
from repro.workloads.scenarios import run_sender_reset_scenario


def _costs_for_k(k: int, base: CostModel) -> CostModel:
    """A cost model under which ``k`` strictly satisfies the sizing rule.

    The paper requires ``K >= T_save / T_send``; sweeping small ``K``
    under the fixed Pentium-III constants would violate the protocol's
    operating condition (and the bounds legitimately fail there — that
    regime is E6's subject, not this experiment's).  Here the save spans
    ``max(1, k // 2)`` messages for every swept ``k``.
    """
    from dataclasses import replace

    return replace(base, t_save=max(1, k // 2) * base.t_send)


def run(
    ks: list[int] | None = None,
    offsets_per_k: int = 6,
    costs: CostModel = PAPER_COSTS,
    seed: int = 0,
) -> ExperimentResult:
    """Sweep ``Kp``; report worst-case lost sequence numbers per ``Kp``."""
    result = ExperimentResult(
        experiment_id="E3",
        title="lost sequence numbers after a sender reset vs Kp",
        paper_artifact="Section 5 claim (i): lost <= 2Kp, no fresh discards",
        columns=[
            "k_p",
            "max_lost",
            "bound_2k",
            "within_bound",
            "bound_tightness",
            "fresh_discarded",
            "replays_accepted",
            "converged",
        ],
    )
    if ks is None:
        ks = [5, 10, 25, 50, 100]
    for k in ks:
        k_costs = _costs_for_k(k, costs)
        offsets = [int(i * k / offsets_per_k) for i in range(offsets_per_k)]
        max_lost = -1
        total_discarded = 0
        total_replays = 0
        all_converged = True
        for offset in offsets:
            scenario = run_sender_reset_scenario(
                protected=True,
                k=k,
                reset_after_sends=2 * k + offset,
                messages_after_reset=4 * k,
                costs=k_costs,
                seed=seed,
            )
            record = scenario.harness.sender.reset_records[0]
            lost = record.lost_seqnums if record.lost_seqnums is not None else -1
            max_lost = max(max_lost, lost)
            total_discarded += scenario.report.fresh_discarded
            total_replays += scenario.report.replays_accepted
            all_converged = all_converged and scenario.report.converged
        bound = lost_seq_bound(k)
        result.add_row(
            k_p=k,
            max_lost=max_lost,
            bound_2k=bound,
            within_bound=max_lost <= bound,
            bound_tightness=round(max_lost / bound, 3) if bound else 0.0,
            fresh_discarded=total_discarded,
            replays_accepted=total_replays,
            converged=all_converged,
        )
    result.note(
        "claim (i) shape: max lost grows linearly in Kp, stays under 2Kp; "
        "no fresh message discarded on the in-order lossless channel"
    )
    result.note(
        "each k runs under a cost model with the save spanning k//2 "
        "messages, keeping the Section 4 sizing rule strictly satisfied"
    )
    return result
