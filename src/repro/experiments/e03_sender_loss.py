"""E3 — Section 5 claim (i): bounded loss, zero discards, after a sender reset.

"When the sender is reset, a bounded number of sequence numbers will be
lost but no fresh message will be discarded by the receiver if no message
reorder occurs. ... the total number of lost sequence number is bounded by
2Kp."

Sweeps ``Kp`` and, for each, takes the worst case over several distinct
reset positions in the SAVE cycle.  Channel: in-order, lossless (the
claim's hypothesis).  Expected: ``max lost <= 2Kp`` with the bound nearly
tight, ``fresh_discarded == 0`` and ``replays_accepted == 0`` everywhere.
"""

from __future__ import annotations

from typing import Any

from repro.core.bounds import lost_seq_bound
from repro.experiments.common import ExperimentResult, costs_for_k, swept_offsets
from repro.experiments.sweep import ExperimentDriver, SweepPoint, SweepSpec, TaskCall
from repro.ipsec.costs import CostModel, PAPER_COSTS


def sweep(
    ks: list[int] | None = None,
    offsets_per_k: int = 6,
    costs: CostModel = PAPER_COSTS,
    seed: int = 0,
) -> SweepSpec:
    """Declare the ``Kp`` sweep; each row takes the worst case over offsets."""
    if ks is None:
        ks = [5, 10, 25, 50, 100]

    points = []
    for k in ks:
        k_costs = costs_for_k(k, costs)
        points.append(SweepPoint(
            axis={"k_p": k},
            calls={
                f"o{offset}": TaskCall(
                    scenario="sender_reset",
                    params=dict(
                        protected=True,
                        k=k,
                        reset_after_sends=2 * k + offset,
                        messages_after_reset=4 * k,
                        costs=k_costs,
                    ),
                    seed=seed,
                )
                for offset in swept_offsets(k, offsets_per_k)
            },
        ))

    def reduce_row(axis: dict[str, Any], metrics: dict[str, Any]) -> dict[str, Any]:
        k = axis["k_p"]
        max_lost = -1
        total_discarded = 0
        total_replays = 0
        all_converged = True
        for m in metrics.values():
            record = m["sender_reset_records"][0]
            lost = record["lost_seqnums"] if record["lost_seqnums"] is not None else -1
            max_lost = max(max_lost, lost)
            total_discarded += m["fresh_discarded"]
            total_replays += m["replays_accepted"]
            all_converged = all_converged and m["converged"]
        bound = lost_seq_bound(k)
        return dict(
            k_p=k,
            max_lost=max_lost,
            bound_2k=bound,
            within_bound=max_lost <= bound,
            bound_tightness=round(max_lost / bound, 3) if bound else 0.0,
            fresh_discarded=total_discarded,
            replays_accepted=total_replays,
            converged=all_converged,
        )

    def notes(rows: list[dict[str, Any]]) -> list[str]:
        return [
            "claim (i) shape: max lost grows linearly in Kp, stays under 2Kp; "
            "no fresh message discarded on the in-order lossless channel",
            "each k runs under a cost model with the save spanning k//2 "
            "messages, keeping the Section 4 sizing rule strictly satisfied",
        ]

    return SweepSpec(
        experiment_id="E3",
        title="lost sequence numbers after a sender reset vs Kp",
        paper_artifact="Section 5 claim (i): lost <= 2Kp, no fresh discards",
        columns=[
            "k_p",
            "max_lost",
            "bound_2k",
            "within_bound",
            "bound_tightness",
            "fresh_discarded",
            "replays_accepted",
            "converged",
        ],
        points=points,
        reduce_row=reduce_row,
        notes=notes,
    )


def run(
    ks: list[int] | None = None,
    offsets_per_k: int = 6,
    costs: CostModel = PAPER_COSTS,
    seed: int = 0,
    jobs: int = 1,
    store: Any = None,
) -> ExperimentResult:
    """Sweep ``Kp``; report worst-case lost sequence numbers per ``Kp``."""
    spec = sweep(ks=ks, offsets_per_k=offsets_per_k, costs=costs, seed=seed)
    return ExperimentDriver(spec, jobs=jobs, store=store).run()
