"""E4 — Section 5 claim (ii): bounded fresh discards, zero replays,
after a receiver reset.

"When the receiver is reset, the number of discarded fresh messages is
bounded [by 2Kq]. ... In either case, no replayed message will be accepted
by q."

For each ``Kq`` this runs, over several reset positions in the SAVE cycle:

* a **clean** run (no adversary injections) measuring fresh discards —
  the claim (ii) quantity, uncontaminated by replayed copies of messages
  the downtime swallowed;
* an **attacked** run where the Section 3 adversary replays the entire
  recorded history the instant the receiver wakes — checking the
  unconditional "no replayed message accepted".

Expected: ``max fresh_discarded <= 2Kq`` and ``replays_accepted == 0``
for every ``Kq``.  Each ``k`` runs under a cost model in which the save
spans ``k // 2`` messages (see E3's sizing note).
"""

from __future__ import annotations

from dataclasses import replace

from repro.core.bounds import discarded_fresh_bound
from repro.experiments.common import ExperimentResult
from repro.ipsec.costs import CostModel, PAPER_COSTS
from repro.workloads.scenarios import run_receiver_reset_scenario


def _costs_for_k(k: int, base: CostModel) -> CostModel:
    return replace(base, t_save=max(1, k // 2) * base.t_send)


def run(
    ks: list[int] | None = None,
    offsets_per_k: int = 6,
    costs: CostModel = PAPER_COSTS,
    seed: int = 0,
) -> ExperimentResult:
    """Sweep ``Kq``; report worst-case fresh discards and replay counts."""
    result = ExperimentResult(
        experiment_id="E4",
        title="fresh messages discarded after a receiver reset vs Kq",
        paper_artifact="Section 5 claim (ii): discards <= 2Kq, replays = 0",
        columns=[
            "k_q",
            "max_fresh_discarded",
            "bound_2k",
            "within_bound",
            "replays_injected",
            "replays_accepted",
            "converged",
        ],
    )
    if ks is None:
        ks = [5, 10, 25, 50, 100]
    for k in ks:
        k_costs = _costs_for_k(k, costs)
        offsets = [int(i * k / offsets_per_k) for i in range(offsets_per_k)]
        max_discarded = -1
        total_injected = 0
        total_replays = 0
        all_converged = True
        for offset in offsets:
            clean = run_receiver_reset_scenario(
                protected=True,
                k=k,
                reset_after_receives=2 * k + offset,
                messages_after_reset=4 * k,
                costs=k_costs,
                seed=seed,
                replay_history_after=False,
            )
            max_discarded = max(max_discarded, clean.report.fresh_discarded)
            all_converged = all_converged and clean.report.converged

            attacked = run_receiver_reset_scenario(
                protected=True,
                k=k,
                reset_after_receives=2 * k + offset,
                messages_after_reset=0,
                costs=k_costs,
                seed=seed,
                replay_history_after=True,
            )
            assert attacked.harness.adversary is not None
            total_injected += attacked.harness.adversary.injections
            total_replays += attacked.report.replays_accepted
        bound = discarded_fresh_bound(k)
        result.add_row(
            k_q=k,
            max_fresh_discarded=max_discarded,
            bound_2k=bound,
            within_bound=max_discarded <= bound,
            replays_injected=total_injected,
            replays_accepted=total_replays,
            converged=all_converged,
        )
    result.note(
        "claim (ii) shape: worst-case discards grow linearly in Kq under "
        "2Kq; full-history replay at wake-up is rejected wholesale"
    )
    return result
