"""E4 — Section 5 claim (ii): bounded fresh discards, zero replays,
after a receiver reset.

"When the receiver is reset, the number of discarded fresh messages is
bounded [by 2Kq]. ... In either case, no replayed message will be accepted
by q."

For each ``Kq`` the sweep runs, over several distinct reset positions in
the SAVE cycle:

* a **clean** run (no adversary injections) measuring fresh discards —
  the claim (ii) quantity, uncontaminated by replayed copies of messages
  the downtime swallowed;
* an **attacked** run where the Section 3 adversary replays the entire
  recorded history the instant the receiver wakes — checking the
  unconditional "no replayed message accepted".

Expected: ``max fresh_discarded <= 2Kq`` and ``replays_accepted == 0``
for every ``Kq``.  Each ``k`` runs under a cost model in which the save
spans ``k // 2`` messages (see E3's sizing note).
"""

from __future__ import annotations

from typing import Any

from repro.core.bounds import discarded_fresh_bound
from repro.experiments.common import ExperimentResult, costs_for_k, swept_offsets
from repro.experiments.sweep import ExperimentDriver, SweepPoint, SweepSpec, TaskCall
from repro.ipsec.costs import CostModel, PAPER_COSTS


def sweep(
    ks: list[int] | None = None,
    offsets_per_k: int = 6,
    costs: CostModel = PAPER_COSTS,
    seed: int = 0,
) -> SweepSpec:
    """Declare the ``Kq`` sweep; each row pairs clean and attacked runs."""
    if ks is None:
        ks = [5, 10, 25, 50, 100]

    points = []
    for k in ks:
        k_costs = costs_for_k(k, costs)
        calls: dict[str, TaskCall] = {}
        for offset in swept_offsets(k, offsets_per_k):
            calls[f"clean_o{offset}"] = TaskCall(
                scenario="receiver_reset",
                params=dict(
                    protected=True,
                    k=k,
                    reset_after_receives=2 * k + offset,
                    messages_after_reset=4 * k,
                    costs=k_costs,
                    replay_history_after=False,
                ),
                seed=seed,
            )
            calls[f"attacked_o{offset}"] = TaskCall(
                scenario="receiver_reset",
                params=dict(
                    protected=True,
                    k=k,
                    reset_after_receives=2 * k + offset,
                    messages_after_reset=0,
                    costs=k_costs,
                    replay_history_after=True,
                ),
                seed=seed,
            )
        points.append(SweepPoint(axis={"k_q": k}, calls=calls))

    def reduce_row(axis: dict[str, Any], metrics: dict[str, Any]) -> dict[str, Any]:
        k = axis["k_q"]
        max_discarded = -1
        total_injected = 0
        total_replays = 0
        all_converged = True
        for role, m in metrics.items():
            if role.startswith("clean_"):
                max_discarded = max(max_discarded, m["fresh_discarded"])
                all_converged = all_converged and m["converged"]
            else:
                total_injected += m["adversary_injections"]
                total_replays += m["replays_accepted"]
        bound = discarded_fresh_bound(k)
        return dict(
            k_q=k,
            max_fresh_discarded=max_discarded,
            bound_2k=bound,
            within_bound=max_discarded <= bound,
            replays_injected=total_injected,
            replays_accepted=total_replays,
            converged=all_converged,
        )

    def notes(rows: list[dict[str, Any]]) -> list[str]:
        return [
            "claim (ii) shape: worst-case discards grow linearly in Kq under "
            "2Kq; full-history replay at wake-up is rejected wholesale"
        ]

    return SweepSpec(
        experiment_id="E4",
        title="fresh messages discarded after a receiver reset vs Kq",
        paper_artifact="Section 5 claim (ii): discards <= 2Kq, replays = 0",
        columns=[
            "k_q",
            "max_fresh_discarded",
            "bound_2k",
            "within_bound",
            "replays_injected",
            "replays_accepted",
            "converged",
        ],
        points=points,
        reduce_row=reduce_row,
        notes=notes,
    )


def run(
    ks: list[int] | None = None,
    offsets_per_k: int = 6,
    costs: CostModel = PAPER_COSTS,
    seed: int = 0,
    jobs: int = 1,
    store: Any = None,
) -> ExperimentResult:
    """Sweep ``Kq``; report worst-case fresh discards and replay counts."""
    spec = sweep(ks=ks, offsets_per_k=offsets_per_k, costs=costs, seed=seed)
    return ExperimentDriver(spec, jobs=jobs, store=store).run()
