"""E6 — Section 4: sizing the SAVE interval.

Two questions from the paper's design discussion:

1. **How small may K be?**  "Our choice of the interval between two SAVEs
   is the maximum number of messages that can be sent during the
   execution time of SAVE" — with the measured constants (100 us save,
   4 us send) that is ``K >= 25``.  Below the rule, saves overlap
   (``max_concurrent_saves > 1``) and the checkpoint can lag more than
   ``2K``; above it, overhead falls but worst-case post-reset loss
   (``2K``) grows linearly.  The knee sits exactly at 25.

2. **Messages or seconds?**  "measuring the interval in terms of time
   leads to wasteful SAVEs because when the interval to the next SAVE
   expires, the sequence number has not advanced much."  A second sweep
   (:func:`policy_sweep`) drives the same sender with bursty on/off
   traffic under (a) the paper's count-based policy and (b) a timer-based
   policy of equivalent steady-state cadence, and counts *wasteful* saves
   (advance < K since the previous save) — see
   :func:`repro.workloads.scenarios.run_save_policy_scenario`.
"""

from __future__ import annotations

from typing import Any

from repro.core.bounds import save_overhead_fraction
from repro.experiments.common import ExperimentResult
from repro.experiments.sweep import ExperimentDriver, SweepPoint, SweepSpec, TaskCall
from repro.ipsec.costs import CostModel, PAPER_COSTS

# Re-exported for direct use (tests pin individual policy comparisons).
from repro.workloads.scenarios import PolicyComparison, compare_policies

__all__ = [
    "PolicyComparison",
    "compare_policies",
    "policy_sweep",
    "run",
    "run_policy_table",
    "sweep",
]


def sweep(
    ks: list[int] | None = None,
    costs: CostModel = PAPER_COSTS,
    seed: int = 0,
) -> SweepSpec:
    """Declare the ``K`` sweep under the paper's fixed cost constants."""
    if ks is None:
        ks = [5, 10, 15, 20, 25, 50, 100, 200]
    rule = costs.min_save_interval()

    points = [
        SweepPoint(
            axis={"k": k},
            calls={"run": TaskCall(
                scenario="sender_reset",
                params=dict(
                    protected=True,
                    k=k,
                    # Reset at the most adversarial spot we can cheaply
                    # target: right as a steady-state save begins.
                    reset_after_sends=4 * k,
                    messages_after_reset=4 * k,
                    costs=costs,
                ),
                seed=seed,
            )},
        )
        for k in ks
    ]

    def reduce_row(axis: dict[str, Any], metrics: dict[str, Any]) -> dict[str, Any]:
        k = axis["k"]
        m = metrics["run"]
        record = m["sender_reset_records"][0]
        gap = record["gap"] if record["gap"] is not None else -1
        return dict(
            k=k,
            rule_satisfied=k >= rule,
            overhead_fraction=round(save_overhead_fraction(k, costs), 4),
            max_concurrent_saves=m["max_concurrent_saves"],
            worst_case_loss_2k=2 * k,
            measured_lost=record["lost_seqnums"],
            measured_gap=gap,
            gap_bound_ok=gap <= 2 * k,
        )

    def notes(rows: list[dict[str, Any]]) -> list[str]:
        return [
            f"sizing rule: K >= T_save/T_send = {rule}; below it saves overlap "
            "(max_concurrent_saves > 1) and the 2K guarantee is no longer "
            "covered by the paper's analysis; above it worst-case loss 2K "
            "grows linearly while overhead falls as 1/K — the knee is at "
            f"K = {rule}"
        ]

    return SweepSpec(
        experiment_id="E6",
        title="SAVE interval sizing under the Pentium-III cost model",
        paper_artifact="Section 4 sizing rule: K >= T_save/T_send = 25",
        columns=[
            "k",
            "rule_satisfied",
            "overhead_fraction",
            "max_concurrent_saves",
            "worst_case_loss_2k",
            "measured_lost",
            "measured_gap",
            "gap_bound_ok",
        ],
        points=points,
        reduce_row=reduce_row,
        notes=notes,
    )


def run(
    ks: list[int] | None = None,
    costs: CostModel = PAPER_COSTS,
    seed: int = 0,
    jobs: int = 1,
    store: Any = None,
) -> ExperimentResult:
    """Sweep ``K`` under the paper's fixed cost constants."""
    spec = sweep(ks=ks, costs=costs, seed=seed)
    return ExperimentDriver(spec, jobs=jobs, store=store).run()


# ----------------------------------------------------------------------
# Count-based vs time-based SAVE policy under bursty traffic
# ----------------------------------------------------------------------
def policy_sweep(
    ks: list[int] | None = None,
    costs: CostModel = PAPER_COSTS,
) -> SweepSpec:
    """Declare the count-vs-time policy comparison sweep."""
    if ks is None:
        ks = [25, 50, 100]

    points = [
        SweepPoint(
            axis={"k": k},
            calls={"run": TaskCall(
                scenario="save_policy",
                params=dict(k=k, costs=costs),
            )},
        )
        for k in ks
    ]

    def reduce_row(axis: dict[str, Any], metrics: dict[str, Any]) -> dict[str, Any]:
        m = metrics["run"]
        return dict(
            k=m["k"],
            messages=m["messages_sent"],
            count_saves=m["count_based_saves"],
            time_saves=m["time_based_saves"],
            time_wasteful=m["time_based_wasteful"],
            waste_fraction=round(m["waste_fraction"], 3),
        )

    def notes(rows: list[dict[str, Any]]) -> list[str]:
        return [
            "under on/off traffic the timer policy keeps saving through idle "
            "periods (advance < K per save), the waste the paper's "
            "message-count policy avoids by construction"
        ]

    return SweepSpec(
        experiment_id="E6b",
        title="count-based vs time-based SAVE policy under bursty traffic",
        paper_artifact="Section 4: why the interval is measured in messages",
        columns=[
            "k",
            "messages",
            "count_saves",
            "time_saves",
            "time_wasteful",
            "waste_fraction",
        ],
        points=points,
        reduce_row=reduce_row,
        notes=notes,
    )


def run_policy_table(
    ks: list[int] | None = None,
    costs: CostModel = PAPER_COSTS,
    jobs: int = 1,
    store: Any = None,
) -> ExperimentResult:
    """The count-vs-time policy comparison as a result table."""
    spec = policy_sweep(ks=ks, costs=costs)
    return ExperimentDriver(spec, jobs=jobs, store=store).run()
