"""E6 — Section 4: sizing the SAVE interval.

Two questions from the paper's design discussion:

1. **How small may K be?**  "Our choice of the interval between two SAVEs
   is the maximum number of messages that can be sent during the
   execution time of SAVE" — with the measured constants (100 us save,
   4 us send) that is ``K >= 25``.  Below the rule, saves overlap
   (``max_concurrent_saves > 1``) and the checkpoint can lag more than
   ``2K``; above it, overhead falls but worst-case post-reset loss
   (``2K``) grows linearly.  The knee sits exactly at 25.

2. **Messages or seconds?**  "measuring the interval in terms of time
   leads to wasteful SAVEs because when the interval to the next SAVE
   expires, the sequence number has not advanced much."  A second table
   drives the same sender with bursty on/off traffic under (a) the
   paper's count-based policy and (b) a timer-based policy of equivalent
   steady-state cadence, and counts *wasteful* saves (advance < K since
   the previous save).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.bounds import save_overhead_fraction
from repro.core.sender import SaveFetchSender
from repro.experiments.common import ExperimentResult
from repro.ipsec.costs import CostModel, PAPER_COSTS
from repro.sim.engine import Engine
from repro.sim.process import Timer
from repro.workloads.scenarios import run_sender_reset_scenario
from repro.workloads.traffic import BurstyTraffic


def run(
    ks: list[int] | None = None,
    costs: CostModel = PAPER_COSTS,
    seed: int = 0,
) -> ExperimentResult:
    """Sweep ``K`` under the paper's fixed cost constants."""
    result = ExperimentResult(
        experiment_id="E6",
        title="SAVE interval sizing under the Pentium-III cost model",
        paper_artifact="Section 4 sizing rule: K >= T_save/T_send = 25",
        columns=[
            "k",
            "rule_satisfied",
            "overhead_fraction",
            "max_concurrent_saves",
            "worst_case_loss_2k",
            "measured_lost",
            "measured_gap",
            "gap_bound_ok",
        ],
    )
    if ks is None:
        ks = [5, 10, 15, 20, 25, 50, 100, 200]
    rule = costs.min_save_interval()
    for k in ks:
        # Reset at the most adversarial spot we can cheaply target: right
        # as a steady-state save begins.
        scenario = run_sender_reset_scenario(
            protected=True,
            k=k,
            reset_after_sends=4 * k,
            messages_after_reset=4 * k,
            costs=costs,
            seed=seed,
        )
        store = scenario.harness.sender.store
        record = scenario.harness.sender.reset_records[0]
        gap = record.gap if record.gap is not None else -1
        result.add_row(
            k=k,
            rule_satisfied=k >= rule,
            overhead_fraction=round(save_overhead_fraction(k, costs), 4),
            max_concurrent_saves=store.max_concurrent_saves,
            worst_case_loss_2k=2 * k,
            measured_lost=record.lost_seqnums,
            measured_gap=gap,
            gap_bound_ok=gap <= 2 * k,
        )
    result.note(
        f"sizing rule: K >= T_save/T_send = {rule}; below it saves overlap "
        "(max_concurrent_saves > 1) and the 2K guarantee is no longer "
        "covered by the paper's analysis; above it worst-case loss 2K "
        "grows linearly while overhead falls as 1/K — the knee is at "
        f"K = {rule}"
    )
    return result


# ----------------------------------------------------------------------
# Count-based vs time-based SAVE policy under bursty traffic
# ----------------------------------------------------------------------
class _TimerSaveSender(SaveFetchSender):
    """Ablation sender: SAVEs on a wall-clock timer, not a message count.

    The timer period equals ``k * t_send`` — the cadence the count-based
    policy exhibits at full line rate — so the two policies are identical
    under CBR and differ exactly where the paper predicts: idle periods.
    """

    def __init__(self, *args: object, **kwargs: object) -> None:
        super().__init__(*args, **kwargs)  # type: ignore[arg-type]
        self.wasteful_saves = 0
        self._last_saved_value = self.lst
        period = self.k * self.costs.t_send
        self._save_timer = Timer(self.engine, period, self._timer_save)
        self._save_timer.start()

    def _after_send(self) -> None:  # disable the count-based trigger
        return

    def _timer_save(self) -> None:
        if not self.is_up:
            return
        advance = self.s - self._last_saved_value
        if advance < self.k:
            self.wasteful_saves += 1
        self._last_saved_value = self.s
        self.lst = self.s
        self.store.begin_save(self.s)


@dataclass
class PolicyComparison:
    """Outcome of the count-vs-time policy comparison."""

    k: int
    messages_sent: int
    count_based_saves: int
    time_based_saves: int
    time_based_wasteful: int

    @property
    def waste_fraction(self) -> float:
        """Share of timer-policy saves that were wasteful."""
        if not self.time_based_saves:
            return 0.0
        return self.time_based_wasteful / self.time_based_saves


def compare_policies(
    k: int = 25,
    bursts: int = 40,
    burst_len: int = 50,
    idle_time: float | None = None,
    costs: CostModel = PAPER_COSTS,
) -> PolicyComparison:
    """Drive both policies with identical bursty traffic; count saves."""
    if idle_time is None:
        idle_time = 20 * k * costs.t_send  # idle dwarfs the burst
    total = bursts * burst_len

    def run_one(use_timer: bool) -> SaveFetchSender:
        engine = Engine()
        sink_count = [0]
        from repro.net.link import Link

        link = Link(engine, "link", sink=lambda packet: sink_count.__setitem__(0, sink_count[0] + 1))
        cls = _TimerSaveSender if use_timer else SaveFetchSender
        sender = cls(engine, "p", link, k=k, costs=costs)
        traffic = BurstyTraffic(
            engine,
            sender,
            burst_len=burst_len,
            burst_interval=costs.t_send,
            idle_time=idle_time,
        )
        traffic.start(count=total)
        # Horizon covers exactly the traffic window (plus a short drain)
        # so the timer policy is not additionally penalised for a long
        # quiet tail after the workload ends.
        horizon = bursts * (burst_len * costs.t_send + idle_time) + 50 * costs.t_save
        engine.run(until=horizon)
        if use_timer:
            sender._save_timer.stop()  # let later engine use drain cleanly
        return sender

    count_sender = run_one(use_timer=False)
    timer_sender = run_one(use_timer=True)
    assert isinstance(timer_sender, _TimerSaveSender)
    return PolicyComparison(
        k=k,
        messages_sent=count_sender.sent_total,
        count_based_saves=count_sender.store.saves_started,
        time_based_saves=timer_sender.store.saves_started,
        time_based_wasteful=timer_sender.wasteful_saves,
    )


def run_policy_table(
    ks: list[int] | None = None,
    costs: CostModel = PAPER_COSTS,
) -> ExperimentResult:
    """The count-vs-time policy comparison as a result table."""
    result = ExperimentResult(
        experiment_id="E6b",
        title="count-based vs time-based SAVE policy under bursty traffic",
        paper_artifact="Section 4: why the interval is measured in messages",
        columns=[
            "k",
            "messages",
            "count_saves",
            "time_saves",
            "time_wasteful",
            "waste_fraction",
        ],
    )
    if ks is None:
        ks = [25, 50, 100]
    for k in ks:
        comparison = compare_policies(k=k, costs=costs)
        result.add_row(
            k=comparison.k,
            messages=comparison.messages_sent,
            count_saves=comparison.count_based_saves,
            time_saves=comparison.time_based_saves,
            time_wasteful=comparison.time_based_wasteful,
            waste_fraction=round(comparison.waste_fraction, 3),
        )
    result.note(
        "under on/off traffic the timer policy keeps saving through idle "
        "periods (advance < K per save), the waste the paper's "
        "message-count policy avoids by construction"
    )
    return result
