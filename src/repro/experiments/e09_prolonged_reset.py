"""E9 — Section 6: surviving prolonged resets over a bidirectional SA.

The concluding remarks' protocol: the live host learns of the outage from
ICMP destination-unreachable, holds its SAs for a keep-alive period
instead of deleting them, and the reset host announces recovery with a
secured message carrying its leaped sequence number; a replayed old
message cannot impersonate that announcement because its sequence number
falls below the live host's right edge.

Sweeps the outage duration against a fixed keep-alive budget, with a
replay adversary injecting recorded b->a traffic into the live host
during the outage.  Expected: for outages under the keep-alive, traffic
resumes (resync accepted, zero replays accepted, recovery time tracks the
outage); past the keep-alive, the session reports expiry (the fall-back
to full rekey measured by E7).
"""

from __future__ import annotations

from typing import Any

from repro.experiments.common import ExperimentResult
from repro.experiments.sweep import ExperimentDriver, SweepPoint, SweepSpec, TaskCall
from repro.ipsec.costs import CostModel, PAPER_COSTS


def sweep(
    outages: list[float] | None = None,
    keep_alive_timeout: float = 1.0,
    k: int = 25,
    costs: CostModel = PAPER_COSTS,
    seed: int = 0,
) -> SweepSpec:
    """Declare the outage-duration sweep vs a fixed keep-alive budget."""
    if outages is None:
        outages = [0.05, 0.2, 0.5, 2.0]

    points = [
        SweepPoint(
            axis={"outage_s": outage},
            calls={"run": TaskCall(
                scenario="prolonged_reset",
                params=dict(
                    outage=outage,
                    keep_alive_timeout=keep_alive_timeout,
                    k=k,
                    costs=costs,
                ),
                seed=seed,
            )},
        )
        for outage in outages
    ]

    def reduce_row(axis: dict[str, Any], metrics: dict[str, Any]) -> dict[str, Any]:
        m = metrics["run"]
        return dict(
            outage_s=axis["outage_s"],
            detected=m["detected"],
            keepalive_expired=m["keepalive_expired"],
            resync_accepted=m["resync_accepted"],
            resync_seq=m["resync_seq"],
            recovery_s=round(m["recovery_s"], 4),
            replays_injected=m["replays_injected"],
            replays_accepted=m["replays_accepted"],
        )

    def notes(rows: list[dict[str, Any]]) -> list[str]:
        return [
            f"keep-alive budget {keep_alive_timeout}s: outages below it recover "
            "via the secured resync message (recovery time ~ outage); the one "
            "above it reports expiry — the fall-back to full rekey whose cost "
            "E7 measures",
            "replayed b->a traffic injected during the outage is never "
            "accepted by the live host (sequence numbers at or below its "
            "right edge)",
        ]

    return SweepSpec(
        experiment_id="E9",
        title="prolonged-reset recovery over a bidirectional SA pair",
        paper_artifact="Section 6 concluding remarks (keep-alive + resync)",
        columns=[
            "outage_s",
            "detected",
            "keepalive_expired",
            "resync_accepted",
            "resync_seq",
            "recovery_s",
            "replays_injected",
            "replays_accepted",
        ],
        points=points,
        reduce_row=reduce_row,
        notes=notes,
    )


def run(
    outages: list[float] | None = None,
    keep_alive_timeout: float = 1.0,
    k: int = 25,
    costs: CostModel = PAPER_COSTS,
    seed: int = 0,
    jobs: int = 1,
    store: Any = None,
) -> ExperimentResult:
    """Sweep outage duration vs a fixed keep-alive budget."""
    spec = sweep(
        outages=outages,
        keep_alive_timeout=keep_alive_timeout,
        k=k,
        costs=costs,
        seed=seed,
    )
    return ExperimentDriver(spec, jobs=jobs, store=store).run()
