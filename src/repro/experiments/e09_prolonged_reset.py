"""E9 — Section 6: surviving prolonged resets over a bidirectional SA.

The concluding remarks' protocol: the live host learns of the outage from
ICMP destination-unreachable, holds its SAs for a keep-alive period
instead of deleting them, and the reset host announces recovery with a
secured message carrying its leaped sequence number; a replayed old
message cannot impersonate that announcement because its sequence number
falls below the live host's right edge.

Sweeps the outage duration against a fixed keep-alive budget, with a
replay adversary injecting recorded b->a traffic into the live host
during the outage.  Expected: for outages under the keep-alive, traffic
resumes (resync accepted, zero replays accepted, recovery time tracks the
outage); past the keep-alive, the session reports expiry (the fall-back
to full rekey measured by E7).
"""

from __future__ import annotations

from repro.core.recovery import ProlongedResetSession
from repro.experiments.common import ExperimentResult
from repro.ipsec.costs import CostModel, PAPER_COSTS


def run(
    outages: list[float] | None = None,
    keep_alive_timeout: float = 1.0,
    k: int = 25,
    costs: CostModel = PAPER_COSTS,
    seed: int = 0,
) -> ExperimentResult:
    """Sweep outage duration vs a fixed keep-alive budget."""
    result = ExperimentResult(
        experiment_id="E9",
        title="prolonged-reset recovery over a bidirectional SA pair",
        paper_artifact="Section 6 concluding remarks (keep-alive + resync)",
        columns=[
            "outage_s",
            "detected",
            "keepalive_expired",
            "resync_accepted",
            "resync_seq",
            "recovery_s",
            "replays_injected",
            "replays_accepted",
        ],
    )
    if outages is None:
        outages = [0.05, 0.2, 0.5, 2.0]
    for outage in outages:
        session = ProlongedResetSession(
            k=k,
            costs=costs,
            keep_alive_timeout=keep_alive_timeout,
            seed=seed,
            with_adversary=True,
        )
        session.start_traffic()
        warmup = 0.02
        reset_at = warmup
        session.engine.call_at(reset_at, session.host_b.reset_host, outage)

        # The adversary replays recorded b->a traffic into the live host
        # midway through the outage (b cannot answer for itself then).
        def replay_midway() -> None:
            assert session.adversary is not None
            session.adversary.replay_history(rate=1000.0)

        session.engine.call_at(reset_at + outage / 2, replay_midway)

        session.run(until=reset_at + outage + keep_alive_timeout + 0.5)
        session.stop_traffic()
        session.run(until=reset_at + outage + keep_alive_timeout + 1.0)

        report = session.report()
        a = report.host_a
        detected = a.peer_down_detected_at is not None
        resumed = a.peer_back_up_at is not None
        recovery = (
            a.peer_back_up_at - reset_at if a.peer_back_up_at is not None else -1.0
        )
        result.add_row(
            outage_s=outage,
            detected=detected,
            keepalive_expired=a.keepalive_expired,
            resync_accepted=resumed,
            resync_seq=a.resync_seq,
            recovery_s=round(recovery, 4),
            replays_injected=report.replayed_into_live_host,
            replays_accepted=report.replays_accepted_total,
        )
    result.note(
        f"keep-alive budget {keep_alive_timeout}s: outages below it recover "
        "via the secured resync message (recovery time ~ outage); the one "
        "above it reports expiry — the fall-back to full rekey whose cost "
        "E7 measures"
    )
    result.note(
        "replayed b->a traffic injected during the outage is never "
        "accepted by the live host (sequence numbers at or below its "
        "right edge)"
    )
    return result
