"""E1 — Figure 1: the sender-reset gap across the SAVE cycle.

The paper's Fig. 1 analyses a reset landing ``t`` messages after a SAVE
begins, in two cases: before the SAVE commits (FETCH returns the previous
checkpoint, gap ``<= 2Kp``) and after (FETCH returns the fresh one, gap
``<= Kp``).  This experiment sweeps the reset position across one whole
SAVE cycle and records the measured gap, the in-flight flag, and the
``2Kp`` bound.

Expected shape (reproducing Fig. 1): a rising ramp from ``~Kp`` while the
save is in flight, dropping to a ramp from ``~0`` once it commits, never
touching ``2Kp``.  With the paper's cost constants a save spans
``T_save/T_send = 25`` messages, so choosing ``k > 25`` shows both
regimes.
"""

from __future__ import annotations

from repro.core.bounds import gap_bound
from repro.experiments.common import ExperimentResult
from repro.ipsec.costs import CostModel, PAPER_COSTS
from repro.workloads.scenarios import run_sender_reset_scenario


def run(
    k: int = 50,
    offsets: list[int] | None = None,
    costs: CostModel = PAPER_COSTS,
    seed: int = 0,
) -> ExperimentResult:
    """Sweep the sender reset across one SAVE cycle.

    Args:
        k: SAVE interval ``Kp`` (choose > ``costs.min_save_interval()``
            so both Fig. 1 cases appear).
        offsets: reset positions within the cycle, in messages after the
            cycle's SAVE initiation (default: every position in
            ``[0, k)`` stepping by ``max(1, k // 25)``).
        costs: cost model (save duration in messages comes from it).
        seed: scenario seed.
    """
    result = ExperimentResult(
        experiment_id="E1",
        title="sender-reset gap vs position in the SAVE cycle",
        paper_artifact="Figure 1 and the Section 5 sender analysis",
        columns=[
            "offset_msgs",
            "save_in_flight",
            "gap",
            "bound_2k",
            "within_bound",
            "lost_seqnums",
            "fresh_discarded",
            "replays_accepted",
        ],
    )
    save_span = costs.min_save_interval()  # messages per save duration
    if offsets is None:
        offsets = list(range(0, k, max(1, k // 25)))
    # Anchor in the cycle that starts with the SAVE initiated right after
    # send number 2k (the third checkpoint; steady state).
    anchor = 2 * k
    bound = gap_bound(k)
    max_gap = -1
    for offset in offsets:
        scenario = run_sender_reset_scenario(
            protected=True,
            k=k,
            reset_after_sends=anchor + offset,
            messages_after_reset=4 * k,
            costs=costs,
            seed=seed,
        )
        record = scenario.harness.sender.reset_records[0]
        gap = record.gap if record.gap is not None else -1
        max_gap = max(max_gap, gap)
        result.add_row(
            offset_msgs=offset,
            save_in_flight=record.save_in_flight,
            gap=gap,
            bound_2k=bound,
            within_bound=gap <= bound,
            lost_seqnums=record.lost_seqnums,
            fresh_discarded=scenario.report.fresh_discarded,
            replays_accepted=scenario.report.replays_accepted,
        )
    result.note(
        f"k={k}, save spans {save_span} messages; max measured gap "
        f"{max_gap} vs bound 2k={bound}"
    )
    in_flight_gaps = [
        row["gap"] for row in result.rows if row["save_in_flight"]
    ]
    committed_gaps = [
        row["gap"] for row in result.rows if not row["save_in_flight"]
    ]
    if in_flight_gaps and committed_gaps:
        result.note(
            f"Fig.1 shape: in-flight gaps {min(in_flight_gaps)}..{max(in_flight_gaps)} "
            f"(> k case), committed gaps {min(committed_gaps)}..{max(committed_gaps)} "
            f"(< k case)"
        )
    return result
