"""E1 — Figure 1: the sender-reset gap across the SAVE cycle.

The paper's Fig. 1 analyses a reset landing ``t`` messages after a SAVE
begins, in two cases: before the SAVE commits (FETCH returns the previous
checkpoint, gap ``<= 2Kp``) and after (FETCH returns the fresh one, gap
``<= Kp``).  This experiment sweeps the reset position across one whole
SAVE cycle and records the measured gap, the in-flight flag, and the
``2Kp`` bound.

Expected shape (reproducing Fig. 1): a rising ramp from ``~Kp`` while the
save is in flight, dropping to a ramp from ``~0`` once it commits, never
touching ``2Kp``.  With the paper's cost constants a save spans
``T_save/T_send = 25`` messages, so choosing ``k > 25`` shows both
regimes.
"""

from __future__ import annotations

from typing import Any

from repro.core.bounds import gap_bound
from repro.experiments.common import ExperimentResult
from repro.experiments.sweep import ExperimentDriver, SweepPoint, SweepSpec, TaskCall
from repro.ipsec.costs import CostModel, PAPER_COSTS


def sweep(
    k: int = 50,
    offsets: list[int] | None = None,
    costs: CostModel = PAPER_COSTS,
    seed: int = 0,
) -> SweepSpec:
    """Declare the sweep of the sender reset across one SAVE cycle.

    Args:
        k: SAVE interval ``Kp`` (choose > ``costs.min_save_interval()``
            so both Fig. 1 cases appear).
        offsets: reset positions within the cycle, in messages after the
            cycle's SAVE initiation (default: every position in
            ``[0, k)`` stepping by ``max(1, k // 25)``).
        costs: cost model (save duration in messages comes from it).
        seed: scenario seed.
    """
    save_span = costs.min_save_interval()  # messages per save duration
    if offsets is None:
        offsets = list(range(0, k, max(1, k // 25)))
    # Anchor in the cycle that starts with the SAVE initiated right after
    # send number 2k (the third checkpoint; steady state).
    anchor = 2 * k
    bound = gap_bound(k)

    points = [
        SweepPoint(
            axis={"offset_msgs": offset},
            calls={"run": TaskCall(
                scenario="sender_reset",
                params=dict(
                    protected=True,
                    k=k,
                    reset_after_sends=anchor + offset,
                    messages_after_reset=4 * k,
                    costs=costs,
                ),
                seed=seed,
            )},
        )
        for offset in offsets
    ]

    def reduce_row(axis: dict[str, Any], metrics: dict[str, Any]) -> dict[str, Any]:
        m = metrics["run"]
        record = m["sender_reset_records"][0]
        gap = record["gap"] if record["gap"] is not None else -1
        return dict(
            offset_msgs=axis["offset_msgs"],
            save_in_flight=record["save_in_flight"],
            gap=gap,
            bound_2k=bound,
            within_bound=gap <= bound,
            lost_seqnums=record["lost_seqnums"],
            fresh_discarded=m["fresh_discarded"],
            replays_accepted=m["replays_accepted"],
        )

    def notes(rows: list[dict[str, Any]]) -> list[str]:
        max_gap = max((row["gap"] for row in rows), default=-1)
        built = [
            f"k={k}, save spans {save_span} messages; max measured gap "
            f"{max_gap} vs bound 2k={bound}"
        ]
        in_flight_gaps = [row["gap"] for row in rows if row["save_in_flight"]]
        committed_gaps = [row["gap"] for row in rows if not row["save_in_flight"]]
        if in_flight_gaps and committed_gaps:
            built.append(
                f"Fig.1 shape: in-flight gaps {min(in_flight_gaps)}..{max(in_flight_gaps)} "
                f"(> k case), committed gaps {min(committed_gaps)}..{max(committed_gaps)} "
                f"(< k case)"
            )
        return built

    return SweepSpec(
        experiment_id="E1",
        title="sender-reset gap vs position in the SAVE cycle",
        paper_artifact="Figure 1 and the Section 5 sender analysis",
        columns=[
            "offset_msgs",
            "save_in_flight",
            "gap",
            "bound_2k",
            "within_bound",
            "lost_seqnums",
            "fresh_discarded",
            "replays_accepted",
        ],
        points=points,
        reduce_row=reduce_row,
        notes=notes,
    )


def run(
    k: int = 50,
    offsets: list[int] | None = None,
    costs: CostModel = PAPER_COSTS,
    seed: int = 0,
    jobs: int = 1,
    store: Any = None,
) -> ExperimentResult:
    """Sweep the sender reset across one SAVE cycle (see :func:`sweep`)."""
    spec = sweep(k=k, offsets=offsets, costs=costs, seed=seed)
    return ExperimentDriver(spec, jobs=jobs, store=store).run()
