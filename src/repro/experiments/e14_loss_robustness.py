"""E14 (extension) — how often does the loss hole actually bite?

The model checker proved (E8, `repro.verify`) that channel loss before a
receiver reset can defeat SAVE/FETCH's no-replay guarantee: a loss burst
makes one received message advance the right edge by more than ``2Kq``
past the committed checkpoint, and a reset landing inside that
checkpoint's save leaves the wake-up leap short.

This experiment quantifies the exposure under Gilbert-Elliott bursty
loss of increasing severity:

* a **vulnerable window** exists whenever a background SAVE starts whose
  value exceeds the committed checkpoint by more than ``2Kq`` (the leap
  cannot cover a reset during that save);
* the fault injector strikes the receiver exactly there (worst case),
  and the adversary replays the exposed range at wake-up (the optimal
  strategy from E8);
* the same trigger is run against the write-ahead ceiling variant.

Expected shape: vulnerable windows appear once mean burst length
approaches ``2Kq`` and SAVE/FETCH then admits replays; the ceiling
variant, under the identical trigger and attack, admits none.
"""

from __future__ import annotations

from repro.core.protocol import build_protocol
from repro.experiments.common import ExperimentResult
from repro.ipsec.costs import CostModel, PAPER_COSTS
from repro.net.loss import GilbertElliottLoss, NoLoss


def _one_run(
    variant: str, burst_g2b: float, seed: int, k: int, costs: CostModel
) -> tuple[bool, int]:
    """Returns (vulnerable window found, replay acceptances)."""
    loss = (
        NoLoss()
        if burst_g2b == 0.0
        else GilbertElliottLoss(
            p_good_to_bad=burst_g2b, p_bad_to_good=0.015, loss_bad=1.0
        )
    )
    harness = build_protocol(
        variant=variant,
        k_p=k,
        k_q=k,
        costs=costs,
        seed=seed,
        loss=loss,
        with_adversary=True,
    )
    down = 5 * costs.t_save
    store = harness.receiver.store  # both variants have one
    state = {"armed": True, "fired": False}

    def on_save(record) -> None:
        # React to *starts* of background saves whose value leapt more
        # than 2Kq past the committed checkpoint: the vulnerable window.
        if record.committed or record.aborted or record.synchronous:
            return
        if state["armed"] and record.value - store.committed_value > 2 * k:
            state["armed"] = False
            state["fired"] = True
            harness.engine.call_later(
                0.5 * store.t_save, harness.receiver.reset, down
            )

    store.add_listener(on_save)

    def on_q_resume() -> None:
        assert harness.adversary is not None
        record = harness.receiver.reset_records[-1]
        lo = (record.resumed_right_edge or 0) + 1
        hi = record.right_edge_at_reset
        if hi >= lo:
            harness.adversary.replay_range(lo, hi, rate=1e9)
        harness.adversary.replay_max()

    harness.receiver.add_resume_listener(on_q_resume)

    interval = 4 * down  # low-rate traffic: the vulnerable regime (E8)
    attempts = 16 * k
    harness.sender.start_traffic(count=attempts, interval=interval)
    harness.run(until=(attempts + 5) * interval + 4 * down)
    return state["fired"], harness.score(check_bounds=False).replays_accepted


def run(
    burst_levels: list[float] | None = None,
    seeds: int = 8,
    k: int = 25,
    costs: CostModel = PAPER_COSTS,
) -> ExperimentResult:
    """Sweep loss-burst severity x seeds for both protocol variants."""
    result = ExperimentResult(
        experiment_id="E14",
        title="replay exposure under bursty loss: SAVE/FETCH vs ceiling",
        paper_artifact="extension: empirical exposure of the loss-hole "
        "counterexample found by model checking (DESIGN.md section 7)",
        columns=[
            "burst_g2b",
            "vulnerable_windows",
            "sf_runs_with_replays",
            "sf_replays_total",
            "ceiling_runs_with_replays",
            "runs",
        ],
    )
    if burst_levels is None:
        burst_levels = [0.0, 0.005, 0.02, 0.05]
    for burst in burst_levels:
        windows = sf_hits = sf_total = ceil_hits = 0
        for seed in range(seeds):
            fired, sf = _one_run("savefetch", burst, seed, k, costs)
            windows += 1 if fired else 0
            sf_hits += 1 if sf else 0
            sf_total += sf
            _fired_c, ceiling = _one_run("ceiling", burst, seed, k, costs)
            ceil_hits += 1 if ceiling else 0
        result.add_row(
            burst_g2b=burst,
            vulnerable_windows=windows,
            sf_runs_with_replays=sf_hits,
            sf_replays_total=sf_total,
            ceiling_runs_with_replays=ceil_hits,
            runs=seeds,
        )
    result.note(
        "a vulnerable window = a checkpoint save starting more than 2Kq "
        "ahead of the committed value (mean loss-burst length ~ 67 "
        "messages vs 2Kq = 50 here); when one exists and the reset lands "
        "inside it, SAVE/FETCH admits the replayed range — the ceiling "
        "variant admits none under the identical trigger and attack"
    )
    return result
