"""E14 (extension) — how often does the loss hole actually bite?

The model checker proved (E8, `repro.verify`) that channel loss before a
receiver reset can defeat SAVE/FETCH's no-replay guarantee: a loss burst
makes one received message advance the right edge by more than ``2Kq``
past the committed checkpoint, and a reset landing inside that
checkpoint's save leaves the wake-up leap short.

This experiment quantifies the exposure under Gilbert-Elliott bursty
loss of increasing severity (see
:func:`repro.workloads.scenarios.run_loss_hole_scenario`):

* a **vulnerable window** exists whenever a background SAVE starts whose
  value exceeds the committed checkpoint by more than ``2Kq`` (the leap
  cannot cover a reset during that save);
* the fault injector strikes the receiver exactly there (worst case),
  and the adversary replays the exposed range at wake-up (the optimal
  strategy from E8);
* the same trigger is run against the write-ahead ceiling variant.

Expected shape: vulnerable windows appear once mean burst length
approaches ``2Kq`` and SAVE/FETCH then admits replays; the ceiling
variant, under the identical trigger and attack, admits none.
"""

from __future__ import annotations

from typing import Any

from repro.experiments.common import ExperimentResult
from repro.experiments.sweep import ExperimentDriver, SweepPoint, SweepSpec, TaskCall
from repro.ipsec.costs import CostModel, PAPER_COSTS


def sweep(
    burst_levels: list[float] | None = None,
    seeds: int = 8,
    k: int = 25,
    costs: CostModel = PAPER_COSTS,
) -> SweepSpec:
    """Declare the loss-burst severity x seeds sweep for both variants."""
    if burst_levels is None:
        burst_levels = [0.0, 0.005, 0.02, 0.05]

    points = []
    for burst in burst_levels:
        calls: dict[str, TaskCall] = {}
        for seed in range(seeds):
            for role_prefix, variant in (("sf", "savefetch"), ("ceil", "ceiling")):
                calls[f"{role_prefix}{seed}"] = TaskCall(
                    scenario="loss_hole",
                    params=dict(variant=variant, burst_g2b=burst, k=k, costs=costs),
                    seed=seed,
                )
        points.append(SweepPoint(axis={"burst_g2b": burst}, calls=calls))

    def reduce_row(axis: dict[str, Any], metrics: dict[str, Any]) -> dict[str, Any]:
        windows = sf_hits = sf_total = ceil_hits = 0
        for role, m in metrics.items():
            if role.startswith("sf"):
                windows += 1 if m["vulnerable_window"] else 0
                sf_hits += 1 if m["replays_accepted"] else 0
                sf_total += m["replays_accepted"]
            else:
                ceil_hits += 1 if m["replays_accepted"] else 0
        return dict(
            burst_g2b=axis["burst_g2b"],
            vulnerable_windows=windows,
            sf_runs_with_replays=sf_hits,
            sf_replays_total=sf_total,
            ceiling_runs_with_replays=ceil_hits,
            runs=seeds,
        )

    def notes(rows: list[dict[str, Any]]) -> list[str]:
        return [
            "a vulnerable window = a checkpoint save starting more than 2Kq "
            "ahead of the committed value (mean loss-burst length ~ 67 "
            "messages vs 2Kq = 50 here); when one exists and the reset lands "
            "inside it, SAVE/FETCH admits the replayed range — the ceiling "
            "variant admits none under the identical trigger and attack"
        ]

    return SweepSpec(
        experiment_id="E14",
        title="replay exposure under bursty loss: SAVE/FETCH vs ceiling",
        paper_artifact="extension: empirical exposure of the loss-hole "
        "counterexample found by model checking (DESIGN.md section 7)",
        columns=[
            "burst_g2b",
            "vulnerable_windows",
            "sf_runs_with_replays",
            "sf_replays_total",
            "ceiling_runs_with_replays",
            "runs",
        ],
        points=points,
        reduce_row=reduce_row,
        notes=notes,
    )


def run(
    burst_levels: list[float] | None = None,
    seeds: int = 8,
    k: int = 25,
    costs: CostModel = PAPER_COSTS,
    jobs: int = 1,
    store: Any = None,
) -> ExperimentResult:
    """Sweep loss-burst severity x seeds for both protocol variants."""
    spec = sweep(burst_levels=burst_levels, seeds=seeds, k=k, costs=costs)
    return ExperimentDriver(spec, jobs=jobs, store=store).run()
