"""Experiment harness (system S18): one module per reproduced artifact.

Every module declares its experiment as a fleet-executed sweep: a
``sweep(...) -> SweepSpec`` factory (named parameter axes, scenario
references into ``workloads.SCENARIOS``, and a per-row reducer) plus a
``run(...) -> ExperimentResult`` convenience wrapper that drives the
sweep through :class:`~repro.experiments.sweep.ExperimentDriver` —
serial, parallel (``jobs=N``), or resumable (file-backed store).  The
full-size specs are registered in
:data:`repro.experiments.runall.EXPERIMENTS`; benchmarks under
``benchmarks/`` run the same specs with timing.  The experiment <->
paper-artifact mapping lives in ``DESIGN.md``; measured-vs-paper results
are recorded in ``EXPERIMENTS.md``.

==========  ==========================================================
module      paper artifact
==========  ==========================================================
e01         Fig. 1 — sender-reset gap across the SAVE cycle
e02         Fig. 2 — receiver-reset gap across the SAVE cycle
e03         Section 5 claim (i) — lost sequence numbers <= 2Kp
e04         Section 5 claim (ii) — fresh discards <= 2Kq, replays = 0
e05         Section 3 — unbounded failures of the unprotected protocol
e06         Section 4 — SAVE interval sizing (K >= T_save/T_send = 25)
e07         Section 3 — IETF full-rekey cost vs SAVE/FETCH recovery
e08         Section 5 third case — dual resets (+ the staggered-reset
            boundary found by the model checker)
e09         Section 6 — prolonged-reset recovery over bidirectional SAs
e10         Section 2 — w-Delivery under reorder (motivates ref [2])
e11         Section 4 — second-reset hazard / wake-SAVE + leap ablation
e12         Section 6 — the replayed "reset notice" strawman attack
e13         supplementary — dead-peer detection time vs probe cadence
e14         extension — replay exposure under bursty loss (loss hole)
e15         extension — gateway-scale convergence: N SAs, one crash,
            one shared store (SA count x write-policy sweep)
e16         extension — path dynamics: flaps, mobile handovers and NAT
            rebindings crossed with the reset schedule
==========  ==========================================================
"""

from repro.experiments.common import ExperimentResult, render_table
from repro.experiments.sweep import (
    ExperimentDriver,
    ExperimentTaskError,
    SweepPoint,
    SweepSpec,
    TaskCall,
    run_sweep,
)

__all__ = [
    "ExperimentDriver",
    "ExperimentResult",
    "ExperimentTaskError",
    "SweepPoint",
    "SweepSpec",
    "TaskCall",
    "render_table",
    "run_sweep",
]
