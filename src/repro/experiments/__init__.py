"""Experiment harness (system S18): one module per reproduced artifact.

Every module exposes ``run(...) -> ExperimentResult`` (pure, deterministic,
parameterised so tests can shrink it) and the benchmarks under
``benchmarks/`` call them.  The experiment <-> paper-artifact mapping lives
in ``DESIGN.md``; measured-vs-paper results are recorded in
``EXPERIMENTS.md``.

==========  ==========================================================
module      paper artifact
==========  ==========================================================
e01         Fig. 1 — sender-reset gap across the SAVE cycle
e02         Fig. 2 — receiver-reset gap across the SAVE cycle
e03         Section 5 claim (i) — lost sequence numbers <= 2Kp
e04         Section 5 claim (ii) — fresh discards <= 2Kq, replays = 0
e05         Section 3 — unbounded failures of the unprotected protocol
e06         Section 4 — SAVE interval sizing (K >= T_save/T_send = 25)
e07         Section 3 — IETF full-rekey cost vs SAVE/FETCH recovery
e08         Section 5 third case — dual resets (+ the staggered-reset
            boundary found by the model checker)
e09         Section 6 — prolonged-reset recovery over bidirectional SAs
e10         Section 2 — w-Delivery under reorder (motivates ref [2])
e11         Section 4 — second-reset hazard / wake-SAVE + leap ablation
e12         Section 6 — the replayed "reset notice" strawman attack
==========  ==========================================================
"""

from repro.experiments.common import ExperimentResult, render_table

__all__ = ["ExperimentResult", "render_table"]
