"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``experiments [ids...]`` — run experiments (default: all) and print the
  paper-style tables (the ``EXPERIMENTS`` registry in
  ``repro.experiments.runall``).  ``--only eNN`` selects experiments
  (repeatable; equivalent to the positional ids), ``--jobs N`` runs each
  sweep through a fleet worker pool, and ``--resume`` persists per-task
  records under ``--out`` so an interrupted suite picks up where it
  stopped.
* ``check [--budget N]`` — model-check the protocol specs in the standard
  bounded configurations and print SAFE / COUNTEREXAMPLE per case.
* ``demo`` — the quickstart scenario, one screenful.
* ``spec {unprotected,savefetch,ceiling}`` — print the APN spec inventory
  in the paper's notation style.
* ``fleet <spec.json>`` — run a multi-session campaign (``--jobs N`` for
  a worker pool, ``--out DIR`` for the durable result store, ``--store
  jsonl|sharded|sqlite`` to pick the store backend, ``--sample N`` to
  run a deterministic subsample of a huge campaign; re-running the same
  spec resumes, whatever the backend).  ``--stream`` appends live
  progress events to ``<out>/progress.jsonl`` (plus per-worker crash
  flight recorders); ``--watch`` implies it and renders the refreshing
  ``top`` dashboard instead of the line printer; ``--profile-slow``
  cProfile-dumps tasks slower than the running 95th percentile;
  ``--trace-malloc`` adds per-task allocation peaks to worker
  heartbeats.  ``fleet --sample`` with no spec prints an example spec.
* ``top <run-dir>`` — terminal dashboard over a campaign's progress
  ledger: throughput, ETA, per-worker GREEN/YELLOW/RED health, worst
  outliers.  Follows a live ledger until the campaign finishes
  (``--once`` renders a single frame; works identically on a finished
  run's ledger).
* ``gateway`` — the multi-SA gateway demo: one correlated crash against
  N SAs over a shared store, compared across write policies
  (``--sas N``, ``--side``, ``--policy`` to pin one).
* ``netpath`` — the time-varying-path demo: a NAT rebinding under each
  receiver policy, a flapping route, and a mobile handover, each with a
  recorded-history replay against the moved binding (``--messages N``
  to scale the streams).
* ``obs <run-dir>`` — summarize an observed run: the per-SA health
  table, headline metrics, and a rendered ``trace.json`` (open in
  https://ui.perfetto.dev).  ``--scenario NAME`` produces the run first
  (under a live metrics hub); ``--check`` schema-validates the run
  directory's files — metrics, manifest, trace, plus any
  ``progress.jsonl`` ledger and ``flight_*.json`` dumps it carries —
  and fails loudly; the CI obs smoke job runs it.
* ``obs archive|diff|history`` — the run warehouse
  (:mod:`repro.obs.archive`): ingest observed runs / fleet aggregates /
  BENCH reports into an append-only content-addressed archive,
  statistically diff any two runs into per-metric GREEN/YELLOW/RED
  verdicts (exit 1 on a gated RED — the CI regression gate), and render
  N-run signal history with EWMA control bands.  ``fleet --archive DIR``
  and ``python -m repro.perf check --archive DIR`` feed the same
  warehouse.
"""

from __future__ import annotations

import argparse
import os
import sys
from dataclasses import replace
from pathlib import Path


def _cmd_experiments(args: argparse.Namespace) -> int:
    from repro.experiments.runall import run_all

    if args.jobs < 1:
        print(f"error: --jobs must be >= 1, got {args.jobs}", file=sys.stderr)
        return 2
    ids = list(args.ids) + list(args.only or [])
    resume_dir = args.out if args.resume else None
    obs_dir = Path(args.out) / "obs" if args.obs else None
    try:
        run_all(ids or None, jobs=args.jobs, resume_dir=resume_dir,
                obs_dir=obs_dir)
    except KeyboardInterrupt:
        if resume_dir is not None:
            print(f"\ninterrupted — finished sessions persisted under "
                  f"{resume_dir}/; re-run the same command to resume",
                  file=sys.stderr)
        else:
            print("\ninterrupted — re-run with --resume to make experiment "
                  "runs interrupt-safe", file=sys.stderr)
        return 130
    return 0


def _cmd_check(args: argparse.Namespace) -> int:
    from repro.apn.specs import SpecConfig, make_savefetch_system, make_unprotected_system
    from repro.apn.specs_ceiling import make_ceiling_system
    from repro.verify.explorer import StateExplorer

    base = SpecConfig(w=2, k=1, max_seq=4, chan_cap=2, max_replays=2)
    cases = [
        ("unprotected / p resets", make_unprotected_system(
            replace(base, max_resets_p=1, max_resets_q=0))),
        ("unprotected / q resets", make_unprotected_system(
            replace(base, max_resets_p=0, max_resets_q=1))),
        ("save-fetch / p resets", make_savefetch_system(
            replace(base, max_resets_p=1, max_resets_q=0))),
        ("save-fetch / q resets", make_savefetch_system(
            replace(base, max_resets_p=0, max_resets_q=1))),
        ("save-fetch / q resets + loss", make_savefetch_system(
            replace(base, max_resets_p=0, max_resets_q=1, with_loss=True))),
        ("save-fetch / staggered dual", make_savefetch_system(
            replace(base, max_resets_p=1, max_resets_q=1))),
        ("ceiling / q resets + loss", make_ceiling_system(
            replace(base, max_resets_p=0, max_resets_q=1, with_loss=True))),
        ("ceiling / staggered dual", make_ceiling_system(
            replace(base, max_resets_p=1, max_resets_q=1))),
    ]
    failures_expected = 0
    for title, system in cases:
        result = StateExplorer(system, max_states=args.budget).explore()
        status = "SAFE" if result.ok else (
            "TRUNCATED" if result.truncated else "COUNTEREXAMPLE"
        )
        print(f"{title:<34} {status:>15}  ({result.states_explored} states)")
        for violation in result.violations[:1]:
            print(f"    {violation.error}")
            print(f"    via: {' -> '.join(violation.trace)}")
        if not result.ok and not result.truncated:
            failures_expected += 1
    return 0


def _cmd_demo(args: argparse.Namespace) -> int:
    from repro import build_protocol

    harness = build_protocol(protected=True, k_p=25, k_q=25)
    harness.sender.start_traffic(count=2000)
    harness.engine.call_at(0.002, harness.sender.reset, 0.001)
    harness.run(until=0.1)
    print(harness.score().summary())
    return 0


def _cmd_spec(args: argparse.Namespace) -> int:
    from repro.apn.pretty import render_system
    from repro.apn.specs import make_savefetch_system, make_unprotected_system
    from repro.apn.specs_ceiling import make_ceiling_system

    factories = {
        "unprotected": make_unprotected_system,
        "savefetch": make_savefetch_system,
        "ceiling": make_ceiling_system,
    }
    print(render_system(factories[args.which](), name=args.which))
    return 0


def _cmd_fleet(args: argparse.Namespace) -> int:
    import json

    from repro.fleet import (
        CampaignSpec,
        FleetRunner,
        SampledCampaign,
        detect_store_kind,
        example_spec,
        make_store,
    )
    from repro.fleet.aggregate import aggregate_store

    if args.spec is None:
        # Bare `--sample` (no spec, no count) keeps its original meaning:
        # print an example campaign spec and exit.
        if args.sample is not None and args.sample < 0:
            print(example_spec().to_json())
            return 0
        print("error: a campaign spec file is required (or use --sample "
              "to print an example spec)", file=sys.stderr)
        return 2
    if args.sample is not None and args.sample < 0:
        print("error: --sample needs a session count when running a spec, "
              "e.g. --sample 2000", file=sys.stderr)
        return 2
    if args.sample is not None and args.sample == 0:
        print("error: --sample must be >= 1", file=sys.stderr)
        return 2
    if args.jobs < 1:
        print(f"error: --jobs must be >= 1, got {args.jobs}", file=sys.stderr)
        return 2
    try:
        spec = CampaignSpec.load(args.spec)
        spec.validate_scenarios()
    except OSError as exc:
        print(f"error: cannot read spec file: {exc}", file=sys.stderr)
        return 2
    except (ValueError, KeyError, TypeError) as exc:
        print(f"error: invalid campaign spec {args.spec!r}: {exc}", file=sys.stderr)
        return 2
    out_dir = Path(args.out) if args.out else Path("fleet_runs") / spec.name
    # Resume reopens whatever backend the interrupted run was writing;
    # an explicit --store always wins (mismatches surface as two stores
    # in one directory, which the summary line below makes visible).
    store_kind = args.store or detect_store_kind(out_dir) or "jsonl"
    try:
        store = make_store(store_kind, out_dir, shard_bits=args.shard_bits)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    plan = spec if args.sample is None else SampledCampaign(spec, args.sample)
    obs_dir = out_dir / "obs" if args.obs else None
    total = plan.session_count()
    sampled = (f" (~{total} sampled of {plan.total})"
               if isinstance(plan, SampledCampaign) else "")
    extra = f", obs={obs_dir}" if obs_dir is not None else ""

    stream_config = None
    watch = bool(args.watch)
    if watch or args.stream or args.profile_slow or args.trace_malloc:
        from repro.fleet.results import progress_ledger_path
        from repro.obs.stream import StreamConfig

        ledger_path = (progress_ledger_path(store)
                       or out_dir / "progress.jsonl")
        profile_dir = None
        if args.profile_slow:
            profile_dir = obs_dir if obs_dir is not None else out_dir / "profiles"
        stream_config = StreamConfig(
            ledger_path=ledger_path,
            profile_dir=profile_dir,
            trace_malloc=args.trace_malloc,
        )
        extra += f", ledger={ledger_path}"
    print(f"campaign {spec.name!r}: {total} sessions{sampled}, "
          f"jobs={args.jobs}, store={store.path} [{store_kind}]{extra}")

    stride = max(1, total // 20)

    def progress(done: int, pending: int, record) -> None:
        if done % stride == 0 or done == pending or record.status != "ok":
            status = "" if record.status == "ok" else f"  [{record.status}: {record.error}]"
            print(f"  [{done}/{pending}] {record.task_id}{status}")

    runner = FleetRunner(
        plan, store, jobs=args.jobs, progress=progress, obs_dir=obs_dir,
        stream=stream_config,
    )
    if watch:
        import time as time_module

        from repro.obs.top import ANSI_CLEAR, render_dashboard

        last_frame = 0.0

        def progress(done: int, pending: int, record) -> None:  # noqa: F811
            nonlocal last_frame
            now = time_module.monotonic()
            if runner.view is None or (now - last_frame < 0.5
                                       and done != pending):
                return
            last_frame = now
            sys.stdout.write(ANSI_CLEAR + render_dashboard(runner.view) + "\n")
            sys.stdout.flush()

        runner.progress = progress
    try:
        outcome = runner.run()
    except KeyboardInterrupt:
        done = len(store.completed_ids())
        print(f"\ninterrupted — {done}/{total} sessions persisted to {store.path}; "
              "re-run the same command to resume", file=sys.stderr)
        return 130
    print(f"executed {len(outcome.executed)} sessions "
          f"({outcome.skipped} resumed from store) in {outcome.wall_time:.2f}s "
          f"({outcome.sessions_per_second:.1f} sessions/s)")
    print()
    aggregate = aggregate_store(store)
    summary = aggregate.summary()
    print(summary.render())
    aggregate_path = out_dir / "aggregate.json"
    out_dir.mkdir(parents=True, exist_ok=True)
    payload = summary.as_dict()
    if aggregate.sketch.count:
        # The serialized sketch rides along so cross-run diffing can
        # compare full convergence-time distributions, not just the
        # reported percentile points.
        payload["sketch"] = aggregate.sketch.as_dict()
    aggregate_path.write_text(
        json.dumps(payload, sort_keys=True, indent=2) + "\n",
        encoding="utf-8",
    )
    print(f"aggregate written to {aggregate_path}")
    close = getattr(store, "close", None)
    if close is not None:
        close()
    if args.archive:
        from repro.obs.archive import RunArchive

        snapshot, created = RunArchive(args.archive).ingest(
            out_dir, name=spec.name
        )
        status = "archived" if created else "already archived"
        print(f"{status}: {out_dir} -> {args.archive} "
              f"[{snapshot.short_id}]")
    if summary.errors:
        print(f"error: {summary.errors} session(s) errored; "
              "re-run the same command to retry them", file=sys.stderr)
        return 1
    return 0


def _cmd_top(args: argparse.Namespace) -> int:
    from repro.obs.top import find_ledger, run_top

    if args.refresh <= 0:
        print(f"error: --refresh must be > 0, got {args.refresh}",
              file=sys.stderr)
        return 2
    try:
        find_ledger(args.run_dir)
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    try:
        run_top(args.run_dir, follow=not args.once, refresh=args.refresh,
                once=args.once)
    except BrokenPipeError:
        # Piped into head/less and the reader went away: exit quietly.
        # Point stdout at devnull so the interpreter's shutdown flush
        # doesn't raise the same error again.
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
    return 0


def _cmd_gateway(args: argparse.Namespace) -> int:
    from repro.gateway import STORE_POLICIES
    from repro.workloads.scenarios import run_gateway_crash_scenario

    if args.sas < 1:
        print(f"error: --sas must be >= 1, got {args.sas}", file=sys.stderr)
        return 2
    if args.crash_after < 1:
        print(f"error: --crash-after must be >= 1, got {args.crash_after}",
              file=sys.stderr)
        return 2
    if args.messages < 0:
        print(f"error: --messages must be >= 0, got {args.messages}",
              file=sys.stderr)
        return 2
    policies = [args.policy] if args.policy else list(STORE_POLICIES)
    print(f"gateway crash demo: {args.sas} SAs ({args.side} side), "
          f"crash after {args.crash_after} sends, "
          f"{args.messages} messages after recovery")
    header = (f"{'policy':<12} {'K':>5} {'converged':>9} {'replays':>7} "
              f"{'spread_us':>10} {'fetch_wait_us':>13} {'busy_ms':>8}")
    print(header)
    print("-" * len(header))
    worst = 0
    for policy in policies:
        metrics = run_gateway_crash_scenario(
            n_sas=args.sas,
            side=args.side,
            store_policy=policy,
            crash_after_sends=args.crash_after,
            messages_after_reset=args.messages,
        )
        spread = max(metrics["recovery_spreads"], default=0.0) * 1e6
        store = metrics["store"]
        verdict = "yes" if metrics["converged"] else "NO"
        if not metrics["converged"]:
            worst = 1
        print(f"{policy:<12} {metrics['k']:>5} "
              f"{verdict:>9} {metrics['replays_accepted']:>7} "
              f"{spread:>10.1f} {store['max_fetch_wait'] * 1e6:>13.1f} "
              f"{store['busy_time'] * 1e3:>8.3f}")
    print()
    print("spread = last SA resumed minus first (the post-crash FETCH-storm "
          "queueing); K follows the gateway sizing rule per policy")
    return worst


def _cmd_netpath(args: argparse.Namespace) -> int:
    from repro.ipsec.sa import REBIND_POLICIES
    from repro.workloads.scenarios import (
        run_mobile_handover_scenario,
        run_nat_rebinding_scenario,
        run_path_flap_scenario,
    )

    if args.messages < 20:
        print(f"error: --messages must be >= 20, got {args.messages}",
              file=sys.stderr)
        return 2
    half = args.messages // 2
    print(f"netpath demo: {args.messages}-message streams, impairment at "
          f"message {half}, adversary replays the old-binding history")
    header = (f"{'story':<30} {'delivered':>9} {'replays':>7} {'rejected':>8} "
              f"{'rebinds':>7} {'blackholed':>10} {'lost':>6}")
    print(header)
    print("-" * len(header))

    def show(label: str, result) -> None:
        report = result.report
        nat = result.extra.get("nat", {})
        print(f"{label:<30} {report.audit.delivered_uids:>9} "
              f"{report.replays_accepted:>7} {nat.get('rejected', 0):>8} "
              f"{nat.get('rebinds', 0):>7} {result.extra['blackholed']:>10} "
              f"{report.audit.never_arrived:>6}")

    for policy in REBIND_POLICIES:
        show(f"nat_rebinding/{policy}", run_nat_rebinding_scenario(
            rebind_after_sends=half, messages_after_rebind=half, policy=policy,
        ))
    show("path_flap", run_path_flap_scenario(
        messages=args.messages, flap_after_sends=half,
    ))
    show("mobile_handover", run_mobile_handover_scenario(
        handover_after_sends=half, messages_after_handover=half,
    ))
    print()
    print("replays stay 0 on every story: the anti-replay window, not the "
          "address binding, is the replay authority; 'strict' trades the "
          "tunnel's availability for address pinning (rejected = the whole "
          "post-rebinding stream)")
    return 0


def _cmd_obs(args: argparse.Namespace) -> int:
    import json

    from repro.obs import (
        CHROME_TRACE_FILE,
        MANIFEST_FILE,
        METRICS_FILE,
        MetricsHub,
        export_run,
        health_rows,
        read_manifest,
        read_metrics_jsonl,
        read_metrics_lines,
        render_health_table,
        render_run_trace,
        use_hub,
        validate_flight_dump,
        validate_manifest,
        validate_metrics_lines,
        validate_progress_file,
        validate_trace_events,
    )

    run_dir = Path(args.run_dir)

    if args.scenario is not None:
        from repro.fleet.runner import scenario_metrics
        from repro.workloads.scenarios import get_scenario

        try:
            scenario = get_scenario(args.scenario)
        except KeyError as exc:
            print(f"error: {exc.args[0]}", file=sys.stderr)
            return 2
        try:
            params = json.loads(args.params) if args.params else {}
        except json.JSONDecodeError as exc:
            print(f"error: --params is not valid JSON: {exc}", file=sys.stderr)
            return 2
        hub = MetricsHub(args.scenario)
        with use_hub(hub):
            result = scenario(seed=args.seed, **params)
        export_run(
            run_dir,
            hub,
            name=args.scenario,
            scenario=args.scenario,
            params=params,
            seed=args.seed,
            manifest_extra={"metrics": scenario_metrics(result)},
        )
        print(f"observed run written to {run_dir}/")

    metrics_path = run_dir / METRICS_FILE
    if not metrics_path.exists():
        print(f"error: {metrics_path} not found — not an observed run "
              "directory (produce one with --scenario)", file=sys.stderr)
        return 2

    export = read_metrics_jsonl(metrics_path)
    manifest = None
    manifest_path = run_dir / MANIFEST_FILE
    if manifest_path.exists():
        manifest = read_manifest(manifest_path)
    trace_path = render_run_trace(run_dir)

    if args.check:
        failures: list[str] = []
        # Torn tails (a crash mid-append) are salvage notes, not schema
        # failures — the salvage-and-skip walk loses at most the torn
        # line, mirroring the result store's recovery discipline.
        salvage_notes: list[str] = []
        lines = read_metrics_lines(metrics_path, errors=salvage_notes)
        for note in salvage_notes:
            print(f"WARN  {note}", file=sys.stderr)
        failures += [f"{METRICS_FILE}: {e}" for e in validate_metrics_lines(lines)]
        if manifest is None:
            failures.append(f"{MANIFEST_FILE}: missing")
        else:
            failures += [f"{MANIFEST_FILE}: {e}" for e in validate_manifest(manifest)]
        if trace_path is None:
            failures.append(f"{CHROME_TRACE_FILE}: not renderable")
        else:
            document = json.loads(trace_path.read_text(encoding="utf-8"))
            failures += [
                f"{CHROME_TRACE_FILE}: {e}"
                for e in validate_trace_events(document)
            ]
        # Streaming artifacts, when the run dir carries them: the
        # progress ledger and the per-worker flight recorders validate
        # against their schemas too.  Torn-line salvage notes stay
        # warnings (damage, not invalidity) — the same split the
        # metrics check above applies.
        checked = [METRICS_FILE, MANIFEST_FILE, CHROME_TRACE_FILE]
        progress_path = run_dir / "progress.jsonl"
        if progress_path.exists():
            checked.append(progress_path.name)
            for error in validate_progress_file(progress_path):
                if "torn line" in error:
                    print(f"WARN  {error}", file=sys.stderr)
                else:
                    failures.append(f"{progress_path.name}: {error}")
        for flight in sorted(run_dir.glob("flight_*.json")):
            checked.append(flight.name)
            try:
                dump = json.loads(flight.read_text(encoding="utf-8"))
            except json.JSONDecodeError as exc:
                failures.append(f"{flight.name}: not valid JSON ({exc})")
                continue
            failures += [
                f"{flight.name}: {e}" for e in validate_flight_dump(dump)
            ]
        if failures:
            for failure in failures:
                print(f"SCHEMA FAIL  {failure}", file=sys.stderr)
            return 1
        print(f"schema check OK: {', '.join(checked)}")

    if manifest is not None:
        scenario_name = manifest.get("scenario", manifest.get("name", "?"))
        seed = manifest.get("seed", "?")
        print(f"run: {scenario_name} (seed {seed})")
    counters = export.get("counters", {})
    total = sum(v for k, v in counters.items() if k.endswith("replay_discards"))
    resets = sum(v for k, v in counters.items() if k.endswith("resets"))
    print(f"instruments: {len(counters)} counters, "
          f"{len(export.get('series', {}))} series, "
          f"{len(export.get('histograms', {}))} histograms; "
          f"resets={resets} replay_discards={total}")
    print()
    print(render_health_table(health_rows(export)))
    if trace_path is not None:
        print()
        print(f"timeline: {trace_path} (load into https://ui.perfetto.dev)")
    return 0


def _cmd_obs_archive(args: argparse.Namespace) -> int:
    import json

    from repro.obs.archive import RunArchive

    archive = RunArchive(args.archive)
    try:
        snapshot, created = archive.ingest(
            args.target, kind=args.kind, name=args.name
        )
    except (OSError, ValueError, json.JSONDecodeError) as exc:
        print(f"error: cannot archive {args.target}: {exc}", file=sys.stderr)
        return 2
    if args.write_snapshot:
        out = Path(args.write_snapshot)
        out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(
            json.dumps(snapshot.as_dict(), sort_keys=True, indent=2) + "\n",
            encoding="utf-8",
        )
        print(f"snapshot written to {out}")
    if args.json:
        print(json.dumps(snapshot.as_dict(), sort_keys=True, indent=2))
        return 0
    counts = ", ".join(
        f"{n} {table}" for table, n in snapshot.signal_count().items() if n
    ) or "no signals"
    status = "archived" if created else "already archived (content match)"
    print(f"{status}: {snapshot.kind} {snapshot.name!r} "
          f"[{snapshot.short_id}] — {counts}")
    print(f"index: {archive.index_path} ({len(archive.index())} run(s))")
    return 0


def _cmd_obs_diff(args: argparse.Namespace) -> int:
    import json

    from repro.obs.archive import RunArchive
    from repro.obs.compare import diff_runs, render_diff_table

    archive = RunArchive(args.archive)
    try:
        baseline = archive.resolve(args.baseline)
        current = archive.resolve(args.current)
    except (OSError, ValueError, json.JSONDecodeError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    diff = diff_runs(baseline, current)
    if args.json:
        print(json.dumps(diff.as_dict(), sort_keys=True, indent=2))
    else:
        print(render_diff_table(diff, verbose=args.verbose))
    if diff.regressions:
        print(
            "REGRESSION: protocol metrics went RED vs the baseline.\n"
            "if the change is intentional, refresh the reference snapshot "
            "and commit it:\n"
            f"  python -m repro obs archive {args.current} "
            f"--write-snapshot {args.baseline}",
            file=sys.stderr,
        )
        return 1
    return 0


def _cmd_obs_history(args: argparse.Namespace) -> int:
    import json

    from repro.obs.archive import RunArchive
    from repro.obs.trend import (
        compute_trend,
        history_signals,
        render_history_table,
    )

    archive = RunArchive(args.archive)
    snapshots = archive.history(
        kind=args.kind, name=args.name, last=args.last
    )
    signals = (
        [name.strip() for name in args.signals.split(",") if name.strip()]
        if args.signals else None
    )
    if args.json:
        columns = history_signals(snapshots, signals)
        payload = {
            name: [
                {
                    "run_id": point.run_id, "value": point.value,
                    "center": point.center, "band": point.band,
                    "anomaly": point.anomaly,
                }
                for point in compute_trend(snapshots, name)
            ]
            for name in columns
        }
        print(json.dumps(payload, sort_keys=True, indent=2))
        return 0
    print(render_history_table(snapshots, signals))
    return 0


def _obs_warehouse_main(argv: list[str]) -> int:
    """The ``obs archive|diff|history`` verbs (the run warehouse).

    Dispatched before the main parser so the long-standing
    ``obs <run-dir>`` summarize form keeps its exact argument surface.
    """
    from repro.obs.archive import RUN_KINDS

    parser = argparse.ArgumentParser(
        prog="repro obs",
        description="run warehouse: archive runs, diff them, chart history",
    )
    sub = parser.add_subparsers(dest="verb", required=True)

    p_arch = sub.add_parser(
        "archive", help="ingest a run/bench artifact into the warehouse",
        epilog="example: python -m repro obs archive obs_smoke_run "
               "--archive run_warehouse",
    )
    p_arch.add_argument("target",
                        help="what to ingest: an observed-run dir, a fleet "
                             "campaign dir, a BENCH_*.json, or a run.json "
                             "snapshot")
    p_arch.add_argument("--archive", default="run_archive", metavar="DIR",
                        help="warehouse directory (default: run_archive)")
    p_arch.add_argument("--kind", choices=list(RUN_KINDS), default=None,
                        help="override artifact autodetection")
    p_arch.add_argument("--name", default=None,
                        help="snapshot name (default: derived from the "
                             "artifact)")
    p_arch.add_argument("--write-snapshot", default=None, metavar="PATH",
                        help="also write the standalone run.json snapshot "
                             "here (how the committed reference snapshot "
                             "is refreshed)")
    p_arch.add_argument("--json", action="store_true",
                        help="print the full snapshot JSON")
    p_arch.set_defaults(fn=_cmd_obs_archive)

    p_diff = sub.add_parser(
        "diff", help="statistical diff of two runs (exit 1 on gated RED)",
        epilog="example: python -m repro obs diff "
               "benchmarks/baselines/obs_reference/run.json obs_smoke_run",
    )
    p_diff.add_argument("baseline",
                        help="baseline run: a path (run dir / run.json / "
                             "BENCH json), an archived id prefix, or "
                             "'latest'")
    p_diff.add_argument("current", help="current run (same forms)")
    p_diff.add_argument("--archive", default="run_archive", metavar="DIR",
                        help="warehouse used to resolve id references "
                             "(default: run_archive)")
    p_diff.add_argument("--verbose", action="store_true",
                        help="print clean GREEN rows too")
    p_diff.add_argument("--json", action="store_true",
                        help="print the diff as JSON")
    p_diff.set_defaults(fn=_cmd_obs_diff)

    p_hist = sub.add_parser(
        "history", help="N-run signal history with EWMA control bands",
        epilog="example: python -m repro obs history --archive "
               "run_warehouse --kind obs-run --last 20",
    )
    p_hist.add_argument("--archive", default="run_archive", metavar="DIR",
                        help="warehouse directory (default: run_archive)")
    p_hist.add_argument("--kind", default=None,
                        help="only runs of this kind "
                             "(obs-run/fleet-run/bench)")
    p_hist.add_argument("--name", default=None,
                        help="only runs with this snapshot name")
    p_hist.add_argument("--last", type=int, default=None, metavar="N",
                        help="only the N most recent runs")
    p_hist.add_argument("--signals", default=None, metavar="CSV",
                        help="comma-separated signal columns (supports "
                             "name@p99 / name@mean); default: the standard "
                             "protocol set")
    p_hist.add_argument("--json", action="store_true",
                        help="print trend points as JSON")
    p_hist.set_defaults(fn=_cmd_obs_history)

    args = parser.parse_args(argv)
    return args.fn(args)


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    if argv is None:
        argv = sys.argv[1:]
    # The warehouse verbs nest under `obs` but parse separately, so the
    # original `obs <run-dir> [--check ...]` surface stays intact (a
    # run directory named like a verb is still reachable via ./archive).
    if argv[:1] == ["obs"] and argv[1:2] and argv[1] in (
        "archive", "diff", "history"
    ):
        return _obs_warehouse_main(argv[1:])
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Convergence of IPsec in Presence of Resets'",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    p_exp = subparsers.add_parser(
        "experiments", help="run experiment tables",
        epilog="example: python -m repro experiments e01 e06 --jobs 4",
    )
    p_exp.add_argument("ids", nargs="*", help="experiment ids (default: all)")
    p_exp.add_argument("--only", action="append", metavar="eNN",
                       help="run only this experiment (repeatable)")
    p_exp.add_argument("--jobs", type=int, default=1,
                       help="worker processes per sweep (default: 1, serial)")
    p_exp.add_argument("--resume", action="store_true",
                       help="persist per-task records under --out and skip "
                            "already-finished sessions on re-run")
    p_exp.add_argument("--out", default="experiment_runs",
                       help="result-store directory for --resume "
                            "(default: experiment_runs)")
    p_exp.add_argument("--obs", action="store_true",
                       help="observe every session: per-task metrics files "
                            "and per-experiment campaign rollups under "
                            "<out>/obs/<id>/")
    p_exp.set_defaults(fn=_cmd_experiments)

    p_check = subparsers.add_parser(
        "check", help="model-check the specs",
        epilog="example: python -m repro check --budget 500000",
    )
    p_check.add_argument("--budget", type=int, default=2_000_000,
                         help="max states per configuration")
    p_check.set_defaults(fn=_cmd_check)

    p_demo = subparsers.add_parser(
        "demo", help="run the quickstart scenario",
        epilog="example: python -m repro demo",
    )
    p_demo.set_defaults(fn=_cmd_demo)

    p_spec = subparsers.add_parser(
        "spec", help="print an APN spec",
        epilog="example: python -m repro spec savefetch",
    )
    p_spec.add_argument("which", choices=["unprotected", "savefetch", "ceiling"])
    p_spec.set_defaults(fn=_cmd_spec)

    p_fleet = subparsers.add_parser(
        "fleet", help="run a multi-session campaign from a spec file",
        epilog="example: python -m repro fleet campaign.json --jobs 4 "
               "--obs  (first print a spec with: python -m repro fleet --sample)",
    )
    p_fleet.add_argument("spec", nargs="?", help="campaign spec JSON file")
    p_fleet.add_argument("--jobs", type=int, default=1,
                         help="worker processes (default: 1, serial)")
    p_fleet.add_argument("--out", default=None,
                         help="output directory (default: fleet_runs/<name>)")
    p_fleet.add_argument("--sample", nargs="?", type=int, const=-1,
                         default=None, metavar="N",
                         help="with a spec: run a deterministic ~N-session "
                              "subsample of the campaign; without a spec: "
                              "print an example campaign spec and exit")
    p_fleet.add_argument("--store", choices=["jsonl", "sharded", "sqlite"],
                         default=None,
                         help="result-store backend (default: whatever the "
                              "output directory already holds, else jsonl); "
                              "sharded splits records across 2^bits JSONL "
                              "files by spawn-key prefix, sqlite persists "
                              "each record in a WAL transaction before "
                              "acknowledging it")
    p_fleet.add_argument("--shard-bits", type=int, default=None, metavar="B",
                         help="shard count exponent for --store sharded "
                              "(2^B shard files; default: the store's "
                              "existing layout, else 4)")
    p_fleet.add_argument("--obs", action="store_true",
                         help="observe every session: per-task metrics files "
                              "and a campaign rollup under <out>/obs/")
    p_fleet.add_argument("--stream", action="store_true",
                         help="append live progress events to "
                              "<out>/progress.jsonl (durable ledger; feeds "
                              "`repro top` and crash flight recorders)")
    p_fleet.add_argument("--watch", action="store_true",
                         help="render the refreshing top dashboard while the "
                              "campaign runs (implies --stream)")
    p_fleet.add_argument("--profile-slow", action="store_true",
                         help="cProfile tasks slower than the running 95th "
                              "percentile; pstats dumps land under "
                              "<out>/obs/ (with --obs) or <out>/profiles/ "
                              "(implies --stream)")
    p_fleet.add_argument("--trace-malloc", action="store_true",
                         help="track per-task allocation peaks via "
                              "tracemalloc in worker heartbeats (implies "
                              "--stream)")
    p_fleet.add_argument("--archive", default=None, metavar="DIR",
                         help="after the campaign, ingest the aggregate "
                              "into this run warehouse (see "
                              "`python -m repro obs archive`)")
    p_fleet.set_defaults(fn=_cmd_fleet)

    p_top = subparsers.add_parser(
        "top", help="terminal dashboard over a campaign's progress ledger",
        epilog="example: python -m repro top fleet_runs/smoke",
    )
    p_top.add_argument("run_dir",
                       help="campaign output directory (or the progress.jsonl "
                            "file itself); written by fleet --stream")
    p_top.add_argument("--refresh", type=float, default=1.0,
                       help="seconds between dashboard frames (default: 1.0)")
    p_top.add_argument("--once", action="store_true",
                       help="render a single frame from the ledger and exit "
                            "(no follow loop)")
    p_top.set_defaults(fn=_cmd_top)

    p_gw = subparsers.add_parser(
        "gateway", help="multi-SA gateway crash demo over a shared store",
        epilog="example: python -m repro gateway --sas 16 --policy batched",
    )
    p_gw.add_argument("--sas", type=int, default=8,
                      help="number of SAs the gateway terminates (default: 8)")
    p_gw.add_argument("--side", choices=["sender", "receiver"],
                      default="sender",
                      help="which end of each SA lives on the gateway")
    p_gw.add_argument("--policy",
                      choices=["serial", "batched", "write_ahead"],
                      default=None,
                      help="pin one store policy (default: compare all three)")
    p_gw.add_argument("--crash-after", type=int, default=300,
                      help="crash after SA 0's Nth send (default: 300)")
    p_gw.add_argument("--messages", type=int, default=300,
                      help="per-SA messages after recovery (default: 300)")
    p_gw.set_defaults(fn=_cmd_gateway)

    p_np = subparsers.add_parser(
        "netpath", help="time-varying path demo: NAT rebinding, flaps, handover",
        epilog="example: python -m repro netpath --messages 2000",
    )
    p_np.add_argument("--messages", type=int, default=1000,
                      help="messages per demo stream (default: 1000)")
    p_np.set_defaults(fn=_cmd_netpath)

    p_obs = subparsers.add_parser(
        "obs", help="summarize an observed run: health table + Chrome trace",
        epilog="example: python -m repro obs runs/crash --scenario "
               "gateway_crash --params '{\"n_sas\": 8}' --check",
    )
    p_obs.add_argument("run_dir",
                       help="run directory (holds metrics.jsonl; created by "
                            "--scenario)")
    p_obs.add_argument("--scenario", default=None,
                       help="produce the run first: a registry scenario name "
                            "(see repro.workloads.scenarios)")
    p_obs.add_argument("--params", default=None, metavar="JSON",
                       help='scenario kwargs as JSON, e.g. \'{"n_sas": 8}\'')
    p_obs.add_argument("--seed", type=int, default=0,
                       help="scenario seed (default: 0)")
    p_obs.add_argument("--check", action="store_true",
                       help="schema-validate metrics/manifest/trace files "
                            "(exit 1 on any violation)")
    p_obs.set_defaults(fn=_cmd_obs)

    args = parser.parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
