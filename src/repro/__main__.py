"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``experiments [ids...]`` — run experiments (default: all) and print the
  paper-style tables (same registry as ``repro.experiments.runall``).
* ``check [--budget N]`` — model-check the protocol specs in the standard
  bounded configurations and print SAFE / COUNTEREXAMPLE per case.
* ``demo`` — the quickstart scenario, one screenful.
* ``spec {unprotected,savefetch,ceiling}`` — print the APN spec inventory
  in the paper's notation style.
"""

from __future__ import annotations

import argparse
import sys
from dataclasses import replace


def _cmd_experiments(args: argparse.Namespace) -> int:
    from repro.experiments.runall import run_all

    run_all(args.ids)
    return 0


def _cmd_check(args: argparse.Namespace) -> int:
    from repro.apn.specs import SpecConfig, make_savefetch_system, make_unprotected_system
    from repro.apn.specs_ceiling import make_ceiling_system
    from repro.verify.explorer import StateExplorer

    base = SpecConfig(w=2, k=1, max_seq=4, chan_cap=2, max_replays=2)
    cases = [
        ("unprotected / p resets", make_unprotected_system(
            replace(base, max_resets_p=1, max_resets_q=0))),
        ("unprotected / q resets", make_unprotected_system(
            replace(base, max_resets_p=0, max_resets_q=1))),
        ("save-fetch / p resets", make_savefetch_system(
            replace(base, max_resets_p=1, max_resets_q=0))),
        ("save-fetch / q resets", make_savefetch_system(
            replace(base, max_resets_p=0, max_resets_q=1))),
        ("save-fetch / q resets + loss", make_savefetch_system(
            replace(base, max_resets_p=0, max_resets_q=1, with_loss=True))),
        ("save-fetch / staggered dual", make_savefetch_system(
            replace(base, max_resets_p=1, max_resets_q=1))),
        ("ceiling / q resets + loss", make_ceiling_system(
            replace(base, max_resets_p=0, max_resets_q=1, with_loss=True))),
        ("ceiling / staggered dual", make_ceiling_system(
            replace(base, max_resets_p=1, max_resets_q=1))),
    ]
    failures_expected = 0
    for title, system in cases:
        result = StateExplorer(system, max_states=args.budget).explore()
        status = "SAFE" if result.ok else (
            "TRUNCATED" if result.truncated else "COUNTEREXAMPLE"
        )
        print(f"{title:<34} {status:>15}  ({result.states_explored} states)")
        for violation in result.violations[:1]:
            print(f"    {violation.error}")
            print(f"    via: {' -> '.join(violation.trace)}")
        if not result.ok and not result.truncated:
            failures_expected += 1
    return 0


def _cmd_demo(args: argparse.Namespace) -> int:
    from repro import build_protocol

    harness = build_protocol(protected=True, k_p=25, k_q=25)
    harness.sender.start_traffic(count=2000)
    harness.engine.call_at(0.002, harness.sender.reset, 0.001)
    harness.run(until=0.1)
    print(harness.score().summary())
    return 0


def _cmd_spec(args: argparse.Namespace) -> int:
    from repro.apn.pretty import render_system
    from repro.apn.specs import make_savefetch_system, make_unprotected_system
    from repro.apn.specs_ceiling import make_ceiling_system

    factories = {
        "unprotected": make_unprotected_system,
        "savefetch": make_savefetch_system,
        "ceiling": make_ceiling_system,
    }
    print(render_system(factories[args.which](), name=args.which))
    return 0


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Convergence of IPsec in Presence of Resets'",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    p_exp = subparsers.add_parser("experiments", help="run experiment tables")
    p_exp.add_argument("ids", nargs="*", help="experiment ids (default: all)")
    p_exp.set_defaults(fn=_cmd_experiments)

    p_check = subparsers.add_parser("check", help="model-check the specs")
    p_check.add_argument("--budget", type=int, default=2_000_000,
                         help="max states per configuration")
    p_check.set_defaults(fn=_cmd_check)

    p_demo = subparsers.add_parser("demo", help="run the quickstart scenario")
    p_demo.set_defaults(fn=_cmd_demo)

    p_spec = subparsers.add_parser("spec", help="print an APN spec")
    p_spec.add_argument("which", choices=["unprotected", "savefetch", "ceiling"])
    p_spec.set_defaults(fn=_cmd_spec)

    args = parser.parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
