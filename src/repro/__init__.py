"""repro — reproduction of "Convergence of IPsec in Presence of Resets".

Huang, Gouda, Elnozahy (ICDCS 2003 / Journal of High Speed Networks 15(2),
2006).  The library implements:

* the IPsec anti-replay window protocol (Section 2) and its SAVE/FETCH
  reset-tolerant extension (Section 4), as timed state machines on a
  deterministic discrete-event simulator;
* every substrate the paper's evaluation needs: lossy/reordering links,
  the replay adversary, persistent memory with commit latency, ESP/AH
  with enforced integrity, a message-faithful IKE handshake, ICMP and
  dead-peer detection;
* the convergence analysis of Section 5 (gap/loss/discard bounds) and the
  prolonged-reset recovery of Section 6;
* an Abstract Protocol Notation engine with the paper's processes encoded
  literally, plus a bounded model checker over their interleavings.

Quickstart::

    from repro import build_protocol

    harness = build_protocol(protected=True, k_p=25, k_q=25)
    harness.sender.start_traffic(count=2000)
    harness.engine.call_at(0.004, harness.sender.reset, 0.001)
    harness.run(until=0.05)
    print(harness.score().summary())

Beyond one pair, :mod:`repro.fleet` scales the same scenarios to whole
campaigns — thousands of independent sessions under mixed reset/loss/replay
stories, run across a process pool with durable, resumable JSONL results
(``python -m repro fleet campaign.json --jobs 8``).

See ``DESIGN.md`` for the full system inventory; the paper-vs-measured
record of every reproduced figure and claim lives in
:mod:`repro.experiments` (run ``python -m repro experiments``).
"""

from repro.core.audit import DeliveryAuditor
from repro.core.ceiling import CeilingReceiver, CeilingSender
from repro.core.baselines import (
    RekeyOutcome,
    RekeySimulation,
    SaveFetchOutcome,
    savefetch_recovery_outcome,
)
from repro.core.convergence import ConvergenceReport, score_run
from repro.core.persistent import PersistentStore
from repro.core.protocol import ProtocolHarness, build_protocol
from repro.core.receiver import SaveFetchReceiver, UnprotectedReceiver
from repro.core.recovery import ProlongedResetSession
from repro.core.reset import ResetSchedule, reset_at_count, reset_at_time, reset_during_save
from repro.core.sender import SaveFetchSender, UnprotectedSender
from repro.fleet import (
    CampaignSpec,
    FleetRunner,
    FleetSummary,
    FleetTask,
    ResultStore,
    ScenarioGrid,
    TaskRecord,
    run_campaign,
    summarize,
)
from repro.ipsec.costs import PAPER_COSTS, CostModel
from repro.ipsec.replay_window import ArrayReplayWindow, BitmapReplayWindow, Verdict
from repro.ipsec.replay_window_blocked import BlockedReplayWindow
from repro.ipsec.stack import IpsecStack
from repro.net.adversary import ReplayAdversary
from repro.netpath import (
    NatGate,
    NatRebinding,
    PathFlap,
    PathOutage,
    PathPhase,
    PathProfile,
    RegimeShift,
)
from repro.sim.engine import Engine, EngineEventLimitError

__version__ = "1.0.0"

__all__ = [
    "ArrayReplayWindow",
    "BitmapReplayWindow",
    "BlockedReplayWindow",
    "CampaignSpec",
    "CeilingReceiver",
    "CeilingSender",
    "ConvergenceReport",
    "CostModel",
    "DeliveryAuditor",
    "Engine",
    "EngineEventLimitError",
    "FleetRunner",
    "FleetSummary",
    "FleetTask",
    "IpsecStack",
    "NatGate",
    "NatRebinding",
    "PAPER_COSTS",
    "PathFlap",
    "PathOutage",
    "PathPhase",
    "PathProfile",
    "PersistentStore",
    "ProlongedResetSession",
    "ProtocolHarness",
    "RegimeShift",
    "RekeyOutcome",
    "RekeySimulation",
    "ReplayAdversary",
    "ResetSchedule",
    "ResultStore",
    "SaveFetchOutcome",
    "SaveFetchReceiver",
    "SaveFetchSender",
    "ScenarioGrid",
    "TaskRecord",
    "UnprotectedReceiver",
    "UnprotectedSender",
    "Verdict",
    "__version__",
    "build_protocol",
    "reset_at_count",
    "reset_at_time",
    "reset_during_save",
    "run_campaign",
    "savefetch_recovery_outcome",
    "score_run",
    "summarize",
]
