"""Time-varying network paths: phases, profiles, and their runtime.

The paper's convergence argument assumes one fixed channel between
sender and receiver; real paths change mid-SA — loss/delay regimes
shift, blackhole windows open, routes flap.  A :class:`PathProfile`
makes link conditions first-class, schedulable simulation objects: an
ordered timeline of :class:`PathPhase` regimes (each a delay model, a
loss model, an up/down flag and an optional FIFO override) that a
:class:`~repro.net.link.Link` steps through as simulated time advances.

Three properties the rest of the stack depends on:

* **Static parity** — a single-phase profile with no end time *is* the
  paper's fixed channel: the link resolves it at construction and runs
  the exact pre-netpath hot path, byte-identical results included
  (pinned by ``tests/netpath/test_netpath_parity.py``).
* **Determinism per seed** — phase boundaries may carry jitter; every
  jittered duration is drawn from an RNG derived from the link seed via
  the spawn-key scheme, so the whole timeline is a pure function of
  ``(profile, seed)`` regardless of process or worker count.
* **JSON round-trip** — profiles serialise to tagged plain dicts
  (delay/loss models via their ``to_dict`` codecs), so fleet campaign
  specs carry them like any other scenario parameter (see the
  ``__pathprofile__`` tag in :mod:`repro.fleet.spec`).

Phase transitions are evaluated *lazily*, per offered packet: the link
checks ``now >= timeline.next_change`` before applying its loss/delay
models.  No extra engine events exist for transitions, so a profile adds
zero event-heap pressure and the static case adds one integer compare.
Packets already in flight when a phase ends were priced by the regime
that carried them — a delivery is not retroactively re-priced.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Mapping

from repro.net.delay import DelayModel, delay_from_dict
from repro.net.loss import LossModel, loss_from_dict
from repro.util.rng import derive_seed, make_rng


def _clone_delay(model: DelayModel) -> DelayModel:
    """Fresh equivalent of ``model`` (profiles may be shared across links)."""
    return delay_from_dict(model.to_dict())


def _clone_loss(model: LossModel) -> LossModel:
    """Fresh equivalent of ``model``, in its reset state."""
    return loss_from_dict(model.to_dict())


@dataclass(frozen=True)
class PathPhase:
    """One regime of a time-varying path.

    Attributes:
        name: label for traces, logs and experiment rows.
        duration: how long the phase lasts (seconds).  ``None`` means
            "until the end of the run" and is only allowed for the final
            phase of a non-cycling profile.
        delay: delay model while the phase is active; ``None`` inherits
            the link's base model (state preserved across phases).
        loss: loss model while the phase is active; ``None`` inherits
            the link's base model.  Non-``None`` models are entered
            *fresh* (a Gilbert-Elliott phase starts GOOD on every
            entry).
        up: ``False`` makes the phase a blackhole window — every packet
            offered while it is active is silently dropped (counted in
            ``Link.blackholed``), the deployment-visible signature of a
            routing outage.
        fifo: ``True``/``False`` overrides the link's in-order clamp for
            the phase (a reorder regime); ``None`` keeps the link's
            setting.
        jitter: fraction of ``duration`` by which the realised length
            varies, uniformly in ``[-jitter, +jitter]``, drawn per entry
            from the timeline's seed-derived RNG.
    """

    name: str
    duration: float | None = None
    delay: DelayModel | None = None
    loss: LossModel | None = None
    up: bool = True
    fifo: bool | None = None
    jitter: float = 0.0

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("phase name must be non-empty")
        if self.duration is not None and self.duration <= 0:
            raise ValueError(f"phase duration must be > 0, got {self.duration}")
        if not 0.0 <= self.jitter < 1.0:
            raise ValueError(f"jitter must be in [0, 1), got {self.jitter}")
        if self.jitter > 0 and self.duration is None:
            raise ValueError("a terminal phase (duration=None) cannot jitter")

    def to_dict(self) -> dict[str, Any]:
        data: dict[str, Any] = {"name": self.name, "duration": self.duration}
        if self.delay is not None:
            data["delay"] = self.delay.to_dict()
        if self.loss is not None:
            data["loss"] = self.loss.to_dict()
        if not self.up:
            data["up"] = False
        if self.fifo is not None:
            data["fifo"] = self.fifo
        if self.jitter:
            data["jitter"] = self.jitter
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "PathPhase":
        return cls(
            name=data["name"],
            duration=data.get("duration"),
            delay=(
                delay_from_dict(data["delay"]) if data.get("delay") is not None else None
            ),
            loss=(
                loss_from_dict(data["loss"]) if data.get("loss") is not None else None
            ),
            up=data.get("up", True),
            fifo=data.get("fifo"),
            jitter=data.get("jitter", 0.0),
        )


@dataclass(frozen=True)
class PathProfile:
    """An ordered timeline of path regimes.

    Attributes:
        phases: the regimes, entered in order starting at ``t = 0``.
        cycle: after the last phase ends, loop back to the first
            (periodic conditions — flapping routes, diurnal load).
            Requires every phase to carry a duration.
    """

    phases: tuple[PathPhase, ...]
    cycle: bool = False

    def __post_init__(self) -> None:
        object.__setattr__(self, "phases", tuple(
            phase if isinstance(phase, PathPhase) else PathPhase.from_dict(phase)
            for phase in self.phases
        ))
        if not self.phases:
            raise ValueError("a path profile needs at least one phase")
        for index, phase in enumerate(self.phases):
            terminal = (index == len(self.phases) - 1) and not self.cycle
            if phase.duration is None and not terminal:
                raise ValueError(
                    f"phase {phase.name!r} has no duration but is not the "
                    "final phase of a non-cycling profile"
                )

    @classmethod
    def static(
        cls,
        delay: DelayModel | None = None,
        loss: LossModel | None = None,
        name: str = "static",
    ) -> "PathProfile":
        """The degenerate profile: one regime, forever — today's ``Link``."""
        return cls(phases=(PathPhase(name=name, delay=delay, loss=loss),))

    @property
    def is_static(self) -> bool:
        """Whether the profile never transitions (one terminal up phase)."""
        if len(self.phases) != 1 or self.cycle:
            return False
        phase = self.phases[0]
        return phase.duration is None and phase.up

    # ------------------------------------------------------------------
    # Serialisation
    # ------------------------------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        data: dict[str, Any] = {"phases": [phase.to_dict() for phase in self.phases]}
        if self.cycle:
            data["cycle"] = True
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "PathProfile":
        return cls(
            phases=tuple(PathPhase.from_dict(p) for p in data["phases"]),
            cycle=data.get("cycle", False),
        )

    # ------------------------------------------------------------------
    # Runtime
    # ------------------------------------------------------------------
    def bind(self, seed: int | None = None) -> "PathTimeline":
        """Instantiate the runtime timeline for one link.

        ``seed`` feeds the jitter RNG (spawn-key derived, so the timeline
        is independent of every other random stream in the simulation).
        """
        return PathTimeline(self, seed)


class PathTimeline:
    """The mutable runtime of one profile on one link.

    A link holds at most one; it reads the resolved regime attributes
    (:attr:`delay`, :attr:`loss`, :attr:`up`, :attr:`fifo` — ``None``
    meaning "inherit the link's base model") and calls :meth:`advance`
    whenever ``now`` has passed :attr:`next_change`.  The link never
    imports this module: the coupling is duck-typed so ``repro.net``
    stays import-cycle-free below ``repro.netpath``.
    """

    def __init__(self, profile: PathProfile, seed: int | None = None) -> None:
        self.profile = profile
        self._rng = make_rng(derive_seed(seed if seed is not None else 0, "netpath"))
        self._index = 0
        self.transitions = 0
        #: ``(time, phase name)`` per entered phase, first entry included.
        self.log: list[tuple[float, str]] = []
        self._enter(self.profile.phases[0], now=0.0)

    # Resolved attributes of the current regime ------------------------
    delay: DelayModel | None
    loss: LossModel | None
    up: bool
    fifo: bool | None
    next_change: float

    @property
    def is_static(self) -> bool:
        """True when no transition will ever fire (the link may then drop
        the per-packet timeline check entirely)."""
        return math.isinf(self.next_change)

    @property
    def phase(self) -> PathPhase:
        """The currently active phase."""
        return self.profile.phases[self._index]

    def _realised_duration(self, phase: PathPhase) -> float:
        if phase.duration is None:
            return math.inf
        if phase.jitter:
            return phase.duration * (1.0 + self._rng.uniform(-phase.jitter, phase.jitter))
        return phase.duration

    def _enter(self, phase: PathPhase, now: float) -> None:
        self.delay = _clone_delay(phase.delay) if phase.delay is not None else None
        self.loss = _clone_loss(phase.loss) if phase.loss is not None else None
        self.up = phase.up
        self.fifo = phase.fifo
        self.next_change = now + self._realised_duration(phase)
        self.log.append((now, phase.name))

    def advance(self, now: float) -> None:
        """Step to the phase active at ``now`` (may cross several)."""
        phases = self.profile.phases
        while now >= self.next_change:
            boundary = self.next_change
            if self._index + 1 < len(phases):
                self._index += 1
            elif self.profile.cycle:
                self._index = 0
            else:
                # A *timed* final phase simply runs on once its duration
                # elapses: nothing is left to enter, so park the boundary
                # at infinity or every later packet would re-check it.
                self.next_change = math.inf
                return
            self.transitions += 1
            self._enter(phases[self._index], now=boundary)
