"""Time-varying network paths: profiles, path faults, NAT rebinding.

The paper's channel is fixed for the lifetime of an SA.  Deployed SAs
live on paths that change mid-SA: loss/delay regimes shift, routes flap
and blackhole, and NAT rebindings move the peer's network address while
in-flight (and adversary-recorded) packets still carry the old one.
This package makes those conditions first-class, schedulable simulation
objects:

* :mod:`~repro.netpath.profile` — :class:`PathPhase` /
  :class:`PathProfile`: an ordered, seed-deterministic timeline of
  delay/loss/up regimes a :class:`~repro.net.link.Link` steps through.
  A static single-phase profile is byte-identical to the fixed channel
  (golden-parity pinned by ``tests/netpath/test_netpath_parity.py``).
* :mod:`~repro.netpath.faults` — :class:`PathOutage`,
  :class:`PathFlap`, :class:`RegimeShift`, :class:`NatRebinding`: the
  injected path events, JSON-round-trippable through fleet campaign
  specs (the ``__pathfault__`` / ``__pathprofile__`` tags in
  :mod:`repro.fleet.spec`).
* :mod:`~repro.netpath.nat` — :class:`NatGate`: the receiver-side
  peer-address check enforcing an SA's rebinding policy
  (:data:`repro.ipsec.sa.REBIND_POLICIES`), with the authoritative
  binding in the SAD when the SA layer is wired.

Scenarios ``nat_rebinding``, ``path_flap`` and ``mobile_handover``
(registry names in :data:`repro.workloads.SCENARIOS`) run the stories
end to end; E16 sweeps phase pattern x reset schedule;
``python -m repro netpath`` is the CLI demo;
``benchmarks/bench_m6_netpath.py`` pins the regime-switching overhead
against the static link.
"""

from repro.netpath.faults import (
    PATH_FAULT_KINDS,
    NatRebinding,
    PathEnv,
    PathFault,
    PathFlap,
    PathOutage,
    RegimeShift,
    path_fault_from_dict,
)
from repro.netpath.nat import NatGate
from repro.netpath.profile import PathPhase, PathProfile, PathTimeline

__all__ = [
    "NatGate",
    "NatRebinding",
    "PATH_FAULT_KINDS",
    "PathEnv",
    "PathFault",
    "PathFlap",
    "PathOutage",
    "PathPhase",
    "PathProfile",
    "PathTimeline",
    "RegimeShift",
    "path_fault_from_dict",
]
