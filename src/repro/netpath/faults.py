"""Schedulable path faults: outages, flaps, regime shifts, NAT rebinds.

Where a :class:`~repro.netpath.profile.PathProfile` declares the path's
*planned* timeline, a path fault is an *injected* event — the netpath
analogue of :mod:`repro.core.reset` (endpoint faults) and
:mod:`repro.gateway.faults` (correlated gateway faults).  Four kinds,
each a frozen dataclass with a dict round-trip so fleet campaign specs
carry them as JSON (the ``__pathfault__`` tag in
:mod:`repro.fleet.spec`):

* :class:`PathOutage` — a blackhole window: from ``at`` for
  ``duration`` seconds every packet offered to the link vanishes
  (counted in ``Link.blackholed``), with none of the ICMP courtesy an
  *availability* outage produces.  Routing failures look like this.
* :class:`PathFlap` — a repeating outage: ``cycles`` down/up periods, a
  route that cannot make up its mind.
* :class:`RegimeShift` — the path's conditions change: at ``at`` the
  link adopts the given :class:`~repro.netpath.profile.PathPhase`'s
  delay/loss models (congestion onset, a failover onto a longer route).
* :class:`NatRebinding` — the sender's network binding changes mid-SA:
  packets sealed afterwards carry the new source address, in-flight and
  adversary-recorded packets keep the old one, and the receiver-side
  policy (:class:`~repro.netpath.nat.NatGate`) decides what that means.

Faults are armed with :meth:`PathFault.apply` against a
:class:`PathEnv` — the slice of a wired harness a fault can touch.
Triggers are an absolute time (``at``) or, for :class:`NatRebinding`, a
sender traffic count (``after_sends``), mirroring
:func:`repro.core.reset.reset_at_count`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Mapping

from repro.core.reset import call_at_count
from repro.netpath.profile import PathPhase

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.sender import BaseSender
    from repro.net.link import Link
    from repro.netpath.nat import NatGate
    from repro.sim.engine import Engine


@dataclass
class PathEnv:
    """What a path fault may act on: the link, and (for NAT rebindings)
    the sender whose binding changes.  Scenarios build one per harness;
    the gateway builds one per SA so a fault can hit one SA of N."""

    engine: "Engine"
    link: "Link | None" = None
    sender: "BaseSender | None" = None
    gate: "NatGate | None" = None

    def require_link(self, fault: "PathFault") -> "Link":
        if self.link is None:
            raise ValueError(f"{type(fault).__name__} needs a link in its PathEnv")
        return self.link

    def require_sender(self, fault: "PathFault") -> "BaseSender":
        if self.sender is None:
            raise ValueError(f"{type(fault).__name__} needs a sender in its PathEnv")
        return self.sender


class PathFault:
    """Base for the path fault kinds (dict round-trip + arming)."""

    kind: str = ""

    def apply(self, env: PathEnv) -> None:
        raise NotImplementedError

    def to_dict(self) -> dict[str, Any]:
        return {"kind": self.kind, **vars(self)}


@dataclass(frozen=True)
class PathOutage(PathFault):
    """One blackhole window on the path.

    Attributes:
        at: when the window opens (absolute simulated time).
        duration: how long it stays open.
    """

    at: float
    duration: float

    kind = "outage"

    def __post_init__(self) -> None:
        if self.duration <= 0:
            raise ValueError(f"outage duration must be > 0, got {self.duration}")

    def apply(self, env: PathEnv) -> None:
        link = env.require_link(self)
        env.engine.call_at(self.at, link.path_down)
        env.engine.call_at(self.at + self.duration, link.path_up)


@dataclass(frozen=True)
class PathFlap(PathFault):
    """A repeating outage: ``cycles`` down/up periods starting at ``at``.

    Attributes:
        at: start of the first down window.
        down_time: length of each blackhole window.
        up_time: carrying time between windows.
        cycles: how many down/up periods.
    """

    at: float
    down_time: float
    up_time: float
    cycles: int = 1

    kind = "flap"

    def __post_init__(self) -> None:
        if self.down_time <= 0 or self.up_time <= 0:
            raise ValueError(
                f"flap down_time/up_time must be > 0, got "
                f"{self.down_time}/{self.up_time}"
            )
        if self.cycles < 1:
            raise ValueError(f"cycles must be >= 1, got {self.cycles}")

    @property
    def period(self) -> float:
        return self.down_time + self.up_time

    @property
    def ends_at(self) -> float:
        """When the last down window closes."""
        return self.at + (self.cycles - 1) * self.period + self.down_time

    def apply(self, env: PathEnv) -> None:
        link = env.require_link(self)
        for cycle in range(self.cycles):
            start = self.at + cycle * self.period
            env.engine.call_at(start, link.path_down)
            env.engine.call_at(start + self.down_time, link.path_up)


@dataclass(frozen=True)
class RegimeShift(PathFault):
    """The path's conditions change at one instant.

    The link adopts ``phase``'s delay/loss/fifo/up immediately; a
    later transition of an attached :class:`PathProfile` still
    overrides (a shift splices, it does not replace the timeline).
    """

    at: float
    phase: PathPhase

    kind = "regime_shift"

    def __post_init__(self) -> None:
        if not isinstance(self.phase, PathPhase):
            object.__setattr__(self, "phase", PathPhase.from_dict(self.phase))

    def apply(self, env: PathEnv) -> None:
        link = env.require_link(self)
        env.engine.call_at(self.at, link.shift_regime, self.phase)

    def to_dict(self) -> dict[str, Any]:
        return {"kind": self.kind, "at": self.at, "phase": self.phase.to_dict()}


@dataclass(frozen=True)
class NatRebinding(PathFault):
    """The sender's network binding changes mid-SA.

    Attributes:
        new_address: the binding after the change.
        after_sends / at: the trigger (exactly one) — a sender traffic
            count or an absolute time.
    """

    new_address: str
    after_sends: int | None = None
    at: float | None = None

    kind = "nat_rebinding"

    def __post_init__(self) -> None:
        if not self.new_address:
            raise ValueError("new_address must be non-empty")
        # Validate at construction, not at apply(): a misconfigured fault
        # must fail while the campaign spec is being authored, not after
        # it expanded into a worker deep inside a fleet run.
        if (self.at is None) == (self.after_sends is None):
            raise ValueError(
                "NatRebinding needs exactly one trigger: 'at' (absolute "
                "time) or 'after_sends' (sender traffic count)"
            )

    def apply(self, env: PathEnv) -> None:
        sender = env.require_sender(self)

        def rebind() -> None:
            sender.address = self.new_address

        if self.at is not None:
            env.engine.call_at(self.at, rebind)
        else:
            call_at_count(sender, self.after_sends, rebind)


#: kind tag -> fault class (the JSON codec's dispatch table).
PATH_FAULT_KINDS: dict[str, type[PathFault]] = {
    cls.kind: cls for cls in (PathOutage, PathFlap, RegimeShift, NatRebinding)
}


def path_fault_from_dict(data: Mapping[str, Any]) -> PathFault:
    """Rebuild a path fault from its :meth:`PathFault.to_dict` form."""
    payload = dict(data)
    kind = payload.pop("kind", None)
    if kind not in PATH_FAULT_KINDS:
        known = ", ".join(sorted(PATH_FAULT_KINDS))
        raise ValueError(f"unknown path fault kind {kind!r}; known: {known}")
    return PATH_FAULT_KINDS[kind](**payload)
