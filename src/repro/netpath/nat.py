"""Receiver-side NAT handling: the peer-address binding and its policy.

A NAT rebinding is invisible to the paper's protocol — messages carry no
addresses — but very visible to a deployment: the receiver suddenly sees
the same SA's traffic arrive from a different source address, while
packets that left before the rebinding (and anything an adversary
recorded) still carry the old one.  :class:`NatGate` models the
receiving gateway's address check as a front end on the receive path::

    link -> NatGate.on_receive -> receiver.on_receive -> window

The gate enforces one of :data:`repro.ipsec.sa.REBIND_POLICIES`:

* ``"static"`` — forward everything, never move the binding (the
  paper's address-less model; the gate is pure instrumentation).
* ``"strict"`` — only the bound address may speak.  After a NAT
  rebinding the fresh traffic is dropped at the gate: safe against
  address spoofing, fatal to the tunnel (the failure mode E16 tables).
* ``"rebind_on_valid"`` — MOBIKE-style: packets from unknown addresses
  are forwarded, and the binding moves the first time one of them is
  *accepted by the anti-replay window*.  Old-binding in-flight packets
  keep flowing through the window — which is the point: the window, not
  the address, is the replay authority, so a recorded-history replay
  from the old binding is rejected exactly as it would be without NAT.

When the SA layer is in play, pass ``sad``/``sa``: the policy then comes
from the SA and the authoritative binding lives in the
:class:`~repro.ipsec.sad.SecurityAssociationDatabase`
(:meth:`~repro.ipsec.sad.SecurityAssociationDatabase.rebind_peer`
enforces the policy).  Without them the gate keeps the binding itself —
the plain-message scenarios in :mod:`repro.workloads.scenarios` use that
form.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

from repro.ipsec.sa import REBIND_POLICIES

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.receiver import BaseReceiver
    from repro.ipsec.sa import SecurityAssociation
    from repro.ipsec.sad import SecurityAssociationDatabase


class NatGate:
    """Address check in front of a receiver (see module docstring).

    Args:
        receiver: the protocol receiver whose ``on_receive`` the gate
            forwards to.  The gate registers a process listener to learn
            window verdicts (how ``rebind_on_valid`` decides).
        policy: one of :data:`~repro.ipsec.sa.REBIND_POLICIES`; ignored
            when ``sa`` is given (the SA's negotiated policy wins).
        initial_binding: the address the SA was established from
            (``None`` latches to the first source seen).
        sad / sa: optional SA-layer integration — the binding is then
            read from and written through the SAD.
    """

    def __init__(
        self,
        receiver: "BaseReceiver",
        policy: str = "rebind_on_valid",
        initial_binding: str | None = None,
        sad: "SecurityAssociationDatabase | None" = None,
        sa: "SecurityAssociation | None" = None,
    ) -> None:
        if (sad is None) != (sa is None):
            raise ValueError("sad and sa must be given together")
        if sa is not None:
            policy = sa.rebind_policy
        if policy not in REBIND_POLICIES:
            raise ValueError(
                f"unknown rebind policy {policy!r}; expected one of {REBIND_POLICIES}"
            )
        self.receiver = receiver
        self.policy = policy
        self.sad = sad
        self.sa = sa
        self._binding = initial_binding
        if sad is not None and sa is not None and initial_binding is not None:
            sad.bind_peer(sa, initial_binding)
        #: Candidate source per in-flight packet, awaiting its window
        #: verdict.  Keyed by ``id(packet)`` with the packet kept as a
        #: strong reference — like :class:`~repro.core.audit.DeliveryAuditor`,
        #: holding the object pins its id, so a packet that never gets a
        #: verdict (dropped while the receiver is down, or wiped from the
        #: wake buffer by a reset) can never alias a later packet and
        #: trigger a spurious rebind; its entry just stays, bounded by
        #: the scenario's packet count.
        self._pending: dict[int, tuple[Any, str]] = {}
        # Statistics (monotonic; scenario extras read these).
        self.forwarded = 0
        self.rejected = 0
        self.off_binding = 0
        self.rebinds = 0
        receiver.add_process_listener(self._on_verdict)

    @property
    def binding(self) -> str | None:
        """The current peer binding (SAD-authoritative when wired)."""
        if self.sad is not None and self.sa is not None:
            return self.sad.peer_binding(self.sa)
        return self._binding

    def _set_binding(self, address: str) -> None:
        self._binding = address
        if self.sad is not None and self.sa is not None:
            self.sad.bind_peer(self.sa, address)

    def _try_rebind(self, address: str) -> bool:
        if self.sad is not None and self.sa is not None:
            if not self.sad.rebind_peer(self.sa, address):
                return False
            self._binding = address
            return True
        self._binding = address
        return True

    # ------------------------------------------------------------------
    # Receive path
    # ------------------------------------------------------------------
    def on_receive(self, packet: Any) -> None:
        """Link sink: apply the address policy, then forward."""
        src = getattr(packet, "src", None)
        if src is None:
            # Address-less traffic (the paper's model) bypasses the check.
            self.forwarded += 1
            self.receiver.on_receive(packet)
            return
        if self.binding is None:
            self._set_binding(src)  # first contact establishes the binding
        if src != self.binding:
            if self.policy == "strict":
                self.rejected += 1
                return
            self.off_binding += 1
            if self.policy == "rebind_on_valid":
                self._pending[id(packet)] = (packet, src)
        self.forwarded += 1
        self.receiver.on_receive(packet)

    def _on_verdict(self, packet: Any, verdict: Any) -> None:
        entry = self._pending.get(id(packet))
        if entry is None or entry[0] is not packet:
            return
        del self._pending[id(packet)]
        if not getattr(verdict, "accepted", False):
            return
        src = entry[1]
        if src != self.binding and self._try_rebind(src):
            self.rebinds += 1

    def metrics(self) -> dict[str, Any]:
        """JSON-safe counters for scenario ``extra`` metrics."""
        return {
            "policy": self.policy,
            "binding": self.binding,
            "forwarded": self.forwarded,
            "rejected": self.rejected,
            "off_binding": self.off_binding,
            "rebinds": self.rebinds,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<NatGate policy={self.policy!r} binding={self.binding!r}>"
