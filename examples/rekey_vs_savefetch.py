#!/usr/bin/env python3
"""Why not just rekey?  The Section 3 cost argument, measured.

The IETF remedy for a reset deletes every SA shared with the reset peer
and renegotiates each via IKE.  This example runs *real* simulated IKE
handshakes (each ISAKMP message crosses a latency link; each DH
exponentiation burns virtual compute) for growing SA counts and RTTs, and
compares against SAVE/FETCH recovery — one FETCH plus one synchronous
SAVE per SA, no network at all.

Run:  python examples/rekey_vs_savefetch.py
"""

from repro import RekeySimulation, savefetch_recovery_outcome


def main() -> None:
    print("=== reset recovery: IETF delete-and-rekey vs SAVE/FETCH ===")
    header = (
        f"{'SAs':>4} {'RTT(ms)':>8} {'rekey(s)':>10} {'msgs':>6} "
        f"{'save/fetch(s)':>14} {'speedup':>9}"
    )
    print(header)
    print("-" * len(header))
    for n_sas in (1, 4, 16, 64):
        for rtt in (0.001, 0.01, 0.05):
            rekey = RekeySimulation(n_sas=n_sas, rtt=rtt).run()
            savefetch = savefetch_recovery_outcome(n_sas=n_sas)
            speedup = rekey.total_recovery_time / savefetch.recovery_time
            print(
                f"{n_sas:>4} {rtt * 1000:>8.0f} "
                f"{rekey.total_recovery_time:>10.4f} "
                f"{rekey.messages_exchanged:>6} "
                f"{savefetch.recovery_time:>14.6f} "
                f"{speedup:>8.0f}x"
            )
    print()
    print("rekey cost grows with both the SA count (sequential IKE "
          "negotiations) and the RTT (~4.5 round trips each); SAVE/FETCH "
          "is local disk IO, flat in RTT — 'the efforts to delete and "
          "reconstruct the whole IPsec SA can be saved'.")


if __name__ == "__main__":
    main()
