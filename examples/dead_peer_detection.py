#!/usr/bin/env python3
"""Dead-peer detection over real links: heartbeat vs traffic-based.

The paper's recovery story needs the live host to *detect* its peer's
reset (the IETF remedy fires "once the reset is detected"; Section 6
keeps SAs alive from that moment).  This demo wires both cited mechanisms
over simulated links against the same outage and compares detection
times — the quantity that feeds the total-recovery comparison of
examples/rekey_vs_savefetch.py.

Run:  python examples/dead_peer_detection.py
"""

from repro.core.dpd import HeartbeatDpd, TrafficDpd
from repro.net.link import Link
from repro.net.message import Message
from repro.sim.engine import Engine
from repro.sim.process import Timer

RTT = 0.01
RESET_AT = 1.0


class Peer:
    """A peer that answers probes until it is reset."""

    def __init__(self, engine: Engine) -> None:
        self.engine = engine
        self.up = True
        self.reply_to = None

    def on_probe(self, token: int) -> None:
        if self.up and self.reply_to is not None:
            self.engine.call_later(RTT / 2, self.reply_to, token)


def run_heartbeat(interval: float) -> float:
    engine = Engine()
    peer = Peer(engine)
    dead_at: list[float] = []
    dpd = HeartbeatDpd(
        engine,
        "hb",
        send_probe=lambda token: engine.call_later(RTT / 2, peer.on_probe, token),
        on_dead=lambda: dead_at.append(engine.now),
        interval=interval,
        timeout=4 * RTT,
        max_misses=3,
    )
    peer.reply_to = dpd.on_probe_ack
    dpd.start()
    engine.call_at(RESET_AT, lambda: setattr(peer, "up", False))
    engine.run(until=RESET_AT + 60 * interval)
    dpd.stop()
    return dead_at[0] - RESET_AT if dead_at else float("nan")


def run_traffic_based(idle_threshold: float) -> float:
    engine = Engine()
    peer = Peer(engine)
    dead_at: list[float] = []
    dpd = TrafficDpd(
        engine,
        "dpd",
        send_probe=lambda token: engine.call_later(RTT / 2, peer.on_probe, token),
        on_dead=lambda: dead_at.append(engine.now),
        idle_threshold=idle_threshold,
        timeout=4 * RTT,
        max_misses=3,
    )
    peer.reply_to = dpd.on_probe_ack

    # Steady bidirectional traffic until the peer dies.
    def chat() -> None:
        dpd.note_sent()
        if peer.up:
            engine.call_later(RTT / 2, dpd.note_received)

    chatter = Timer(engine, idle_threshold / 4, chat)
    chatter.start()
    dpd.start()
    engine.call_at(RESET_AT, lambda: setattr(peer, "up", False))
    engine.run(until=RESET_AT + 60 * idle_threshold)
    chatter.stop()
    dpd.stop()
    return dead_at[0] - RESET_AT if dead_at else float("nan")


def main() -> None:
    print("=== dead-peer detection time after a reset (RTT = 10 ms) ===")
    print(f"{'mechanism':<16} {'parameter':>12} {'detection time':>15}")
    for interval in (0.1, 0.5, 2.0):
        t = run_heartbeat(interval)
        print(f"{'heartbeat':<16} {interval:>10.1f}s {t:>14.2f}s")
    for idle in (0.1, 0.5, 2.0):
        t = run_traffic_based(idle)
        print(f"{'traffic-based':<16} {idle:>10.1f}s {t:>14.2f}s")
    print()
    print("detection scales with the probe interval / idle threshold — the "
          "'detection_delay' term of the rekey-vs-SAVE/FETCH comparison; "
          "traffic-based DPD costs nothing while the conversation is healthy.")


if __name__ == "__main__":
    main()
