#!/usr/bin/env python3
"""Quickstart: the SAVE/FETCH anti-replay protocol surviving a reset.

Builds the paper's (p, q) pair with the Pentium-III cost constants
(T_save = 100 us, T_send = 4 us, hence Kp = Kq = 25), streams messages at
line rate, resets the sender mid-stream, and scores the run against the
Section 5 guarantees.

Run:  python examples/quickstart.py
"""

from repro import PAPER_COSTS, build_protocol


def main() -> None:
    harness = build_protocol(protected=True, k_p=25, k_q=25, w=64)

    # Stream 2000 messages at the paper's line rate (4 us per message).
    harness.sender.start_traffic(count=2000)

    # 2 ms in: a reset strikes p.  It stays down for 1 ms (250 messages'
    # worth) and then recovers via FETCH + the 2K leap + one synchronous
    # SAVE before sending again.
    harness.engine.call_at(0.002, harness.sender.reset, 0.001)

    harness.run(until=0.1)

    report = harness.score()
    record = harness.sender.reset_records[0]

    print("=== quickstart: sender reset under SAVE/FETCH ===")
    print(f"cost model: T_save={PAPER_COSTS.t_save * 1e6:.0f}us, "
          f"T_send={PAPER_COSTS.t_send * 1e6:.0f}us, "
          f"min safe K={PAPER_COSTS.min_save_interval()}")
    print(f"last seq used before reset : {record.last_used_seq}")
    print(f"FETCH returned             : {record.fetched}")
    print(f"resumed at seq             : {record.resumed_seq} "
          f"(leap = 2K = {2 * harness.sender.k})")
    print(f"sequence numbers lost      : {record.lost_seqnums} "
          f"(bound 2Kp = {2 * harness.sender.k})")
    print(f"fresh messages discarded   : {report.fresh_discarded} (claim: 0)")
    print(f"replayed messages accepted : {report.replays_accepted} (claim: 0)")
    print()
    print(report.summary())
    if not report.converged:
        raise SystemExit("BUG: the run violated the paper's bounds")


if __name__ == "__main__":
    main()
