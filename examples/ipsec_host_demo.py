#!/usr/bin/env python3
"""A multi-SA IPsec host surviving a host-wide reset (RFC 2401 stack).

Two hosts run the full processing model — SPD policy lookup, SAD lookup,
ESP seal/open, per-SA anti-replay — over several SAs at once.  A
host-wide reset erases *every* SA's volatile counters; with per-SA
SAVE/FETCH each association recovers independently in microseconds,
which is the multi-SA scenario the paper contrasts with tearing all of
them down and re-running IKE (priced by examples/rekey_vs_savefetch.py).

Run:  python examples/ipsec_host_demo.py
"""

from repro.ipsec.sa import make_sa_pair
from repro.ipsec.sad import SecurityAssociationDatabase
from repro.ipsec.spd import PolicyAction, SecurityPolicyDatabase
from repro.ipsec.stack import IpsecStack
from repro.net.link import Link
from repro.sim.engine import Engine

N_SAS = 8


def main() -> None:
    engine = Engine()
    spd = SecurityPolicyDatabase()
    spd.add_rule("*", "*", "*", PolicyAction.PROTECT)
    sad_a, sad_b = SecurityAssociationDatabase(), SecurityAssociationDatabase()

    inbox_b: list[bytes] = []
    stack_a = IpsecStack(engine, "a", spd, sad_a, k=25)
    stack_b = IpsecStack(
        engine, "b", spd, sad_b, k=25,
        deliver_upward=lambda src, data: inbox_b.append(data),
    )
    link_ab = Link(engine, "link:a->b", sink=stack_b.on_receive)
    link_ba = Link(engine, "link:b->a", sink=stack_a.on_receive)
    stack_a.add_route("b", link_ab.send)
    stack_b.add_route("a", link_ba.send)

    for seed in range(N_SAS):
        pair = make_sa_pair("a", "b", seed_or_rng=seed)
        for sad in (sad_a, sad_b):
            sad.add(pair.forward)
            sad.add(pair.backward)

    wire: list = []
    link_ab.add_tap(lambda t, p, injected: wire.append(p))

    # Phase 1: traffic (the outbound lookup uses the newest SA; all eight
    # exist, exercising SAD generation selection).
    for i in range(200):
        stack_a.send("b", f"msg-{i}".encode())
    engine.run(until=0.01)

    # Phase 2: host-wide reset of a — all SA counters lost at once.
    stack_a.reset(down_for=0.001)
    engine.run(until=0.02)

    # Phase 3: traffic resumes; every SA recovered via FETCH + leap.
    for i in range(200, 400):
        stack_a.send("b", f"msg-{i}".encode())
    engine.run(until=0.05)

    seqs = [p.seq for p in wire]
    print("=== multi-SA host reset (RFC 2401 stack, per-SA SAVE/FETCH) ===")
    print(f"SAs on host a                : {len(sad_a)}")
    print(f"packets sealed + sent        : {stack_a.stats.sent_protected}")
    print(f"delivered at b               : {stack_b.stats.delivered}")
    print(f"replay discards at b         : {stack_b.stats.replay_discarded}")
    print(f"integrity failures at b      : {stack_b.stats.integrity_failures}")
    print(f"sequence numbers reused      : {len(seqs) - len(set(seqs))}")
    assert len(seqs) == len(set(seqs)), "BUG: sequence number reuse"
    assert stack_b.stats.replay_discarded == 0
    print("every SA recovered independently; no reuse, nothing replayable.")


if __name__ == "__main__":
    main()
