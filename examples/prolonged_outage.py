#!/usr/bin/env python3
"""Section 6 end-to-end: a bidirectional SA pair surviving a long outage.

Host b goes down for 300 ms.  Host a learns of it from ICMP
destination-unreachable, holds both SAs alive on a keep-alive timer, and
ignores everything an adversary replays in b's name during the outage.
When b wakes it recovers its counters (FETCH + 2K leap + SAVE) and sends
a secured resync message; a validates it against its anti-replay window
right edge and resumes traffic.

Run:  python examples/prolonged_outage.py
"""

from repro import ProlongedResetSession


def main() -> None:
    session = ProlongedResetSession(
        k=25,
        keep_alive_timeout=1.0,
        rtt=0.002,
        with_adversary=True,
    )
    session.start_traffic()

    outage = 0.3
    session.engine.call_at(0.05, session.host_b.reset_host, outage)
    # Mid-outage, the adversary replays everything b ever sent to a.
    session.engine.call_at(
        0.05 + outage / 2,
        lambda: session.adversary.replay_history(rate=2000.0),
    )

    session.run(until=1.0)
    session.stop_traffic()
    session.run(until=1.2)

    report = session.report()
    a = report.host_a
    print("=== Section 6: prolonged reset over a bidirectional SA ===")
    print(f"outage                       : {outage * 1000:.0f} ms")
    print(f"a detected b down at         : {a.peer_down_detected_at:.4f}s (via ICMP)")
    print(f"keep-alive expired           : {a.keepalive_expired}")
    print(f"replays injected during outage: {report.replayed_into_live_host}")
    print(f"replays accepted (any side)  : {report.replays_accepted_total}")
    print(f"b announced recovery at      : {a.peer_back_up_at:.4f}s "
          f"with resync seq {a.resync_seq}")
    print(f"session recovered            : {report.recovered}")
    if not report.recovered:
        raise SystemExit("BUG: session failed to recover cleanly")


if __name__ == "__main__":
    main()
