#!/usr/bin/env python3
"""Machine-checking the paper's theorems (and finding their boundary).

Explores *every* interleaving of the APN protocol specs in small bounded
configurations:

1. the unprotected Section 2 protocol — the explorer finds the Section 3
   attacks as concrete minimal traces;
2. SAVE/FETCH in the paper's stated scope (one side resets, no loss) —
   exhaustively safe: the Section 5 theorems, machine-checked;
3. SAVE/FETCH outside that scope (channel loss before a receiver reset,
   or staggered dual resets) — counterexamples, a finding of this
   reproduction;
4. the write-ahead ceiling repair — safe even there.

Run:  python examples/model_check_protocols.py   (~1 minute)
"""

from dataclasses import replace

from repro.apn.specs import SpecConfig, make_savefetch_system, make_unprotected_system
from repro.apn.specs_ceiling import make_ceiling_system
from repro.verify.explorer import StateExplorer

BASE = SpecConfig(w=2, k=1, max_seq=4, chan_cap=2, max_replays=2)


def check(title: str, system) -> None:
    result = StateExplorer(system).explore()
    status = "SAFE" if result.ok else "COUNTEREXAMPLE"
    print(f"{title:<58} {status:>15} "
          f"({result.states_explored} states)")
    for violation in result.violations[:1]:
        print(f"    {violation.error}")
        print(f"    witness: {' -> '.join(violation.trace)}")


def main() -> None:
    print("=== exhaustive model checking (bounded configurations) ===\n")

    print("-- Section 2 protocol (unprotected): Section 3 attacks found --")
    check(
        "unprotected, sender may reset",
        make_unprotected_system(replace(BASE, max_resets_p=1, max_resets_q=0)),
    )
    check(
        "unprotected, receiver may reset",
        make_unprotected_system(replace(BASE, max_resets_p=0, max_resets_q=1)),
    )

    print("\n-- Section 4 SAVE/FETCH inside the proofs' scope: safe --")
    check(
        "save/fetch, sender resets, lossless",
        make_savefetch_system(replace(BASE, max_resets_p=1, max_resets_q=0)),
    )
    check(
        "save/fetch, receiver resets, lossless",
        make_savefetch_system(replace(BASE, max_resets_p=0, max_resets_q=1)),
    )

    print("\n-- outside the scope: this reproduction's finding --")
    check(
        "save/fetch, receiver resets + channel loss",
        make_savefetch_system(
            replace(BASE, max_resets_p=0, max_resets_q=1, with_loss=True)
        ),
    )
    check(
        "save/fetch, staggered dual resets",
        make_savefetch_system(replace(BASE, max_resets_p=1, max_resets_q=1)),
    )
    check(
        "save/fetch, sizing rule ablated (overlapping saves)",
        make_savefetch_system(
            replace(BASE, max_resets_p=1, max_resets_q=0, enforce_sizing=False,
                    max_seq=5)
        ),
    )

    print("\n-- the write-ahead ceiling repair: safe even there --")
    check(
        "ceiling, receiver resets + channel loss",
        make_ceiling_system(
            replace(BASE, max_resets_p=0, max_resets_q=1, with_loss=True)
        ),
    )
    check(
        "ceiling, staggered dual resets",
        make_ceiling_system(replace(BASE, max_resets_p=1, max_resets_q=1)),
    )


if __name__ == "__main__":
    main()
