#!/usr/bin/env python3
"""The Section 3 replay attack, against both protocols.

Scenario (the paper's receiver-reset failure): q crashes and restarts; an
on-path adversary that recorded all prior traffic replays the entire
history in order.

* Against the *unprotected* Section 2 protocol every replayed message is
  "unsuspectedly accepted by q" — acceptance grows with however much
  traffic existed before the reset.
* Against the Section 4 SAVE/FETCH protocol the receiver wakes with its
  right edge leaped past everything it ever delivered: zero acceptances.

Run:  python examples/replay_attack_demo.py
"""

from repro import build_protocol


def attack(protected: bool, pre_reset_traffic: int) -> tuple[int, int]:
    """Run the attack; return (replays injected, replays accepted)."""
    harness = build_protocol(protected=protected, with_adversary=True)
    assert harness.adversary is not None

    # Phase 1: normal traffic, silently recorded by the adversary.
    harness.sender.start_traffic(count=pre_reset_traffic)
    harness.run(until=1.0)

    # Phase 2: q crashes and comes back 200 us later.
    harness.receiver.reset(down_for=200e-6)
    harness.run(until=2.0)

    # Phase 3: the adversary replays the entire recorded history.
    injected = harness.adversary.replay_history(rate=250_000)
    harness.run(until=3.0)

    return injected, harness.score(check_bounds=False).replays_accepted


def main() -> None:
    print("=== Section 3 attack: full-history replay after a receiver reset ===")
    print(f"{'traffic':>8}  {'protocol':<12} {'injected':>9}  {'accepted':>9}")
    for traffic in (250, 1000, 4000):
        for protected, label in ((False, "unprotected"), (True, "save/fetch")):
            injected, accepted = attack(protected, traffic)
            print(f"{traffic:>8}  {label:<12} {injected:>9}  {accepted:>9}")
    print()
    print("unprotected acceptance grows linearly with recorded traffic "
          "(unbounded); SAVE/FETCH rejects every replay.")


if __name__ == "__main__":
    main()
