#!/usr/bin/env python3
"""Fleet campaign walkthrough: declare, run, interrupt, resume, aggregate.

Builds a mixed reset/loss/replay campaign spec, round-trips it through
JSON (the same file format ``python -m repro fleet`` consumes), runs the
first half serially, then "resumes the interrupted campaign" across a
two-worker pool and prints the cross-fleet summary — worst-case sessions
ship with their repro seeds, so any outlier replays as one deterministic
scenario call.

Run:  python examples/fleet_campaign.py
"""

import tempfile
from pathlib import Path

from repro.fleet import (
    CampaignSpec,
    FleetRunner,
    ResultStore,
    ScenarioGrid,
    execute_task,
    summarize,
)


def make_spec() -> CampaignSpec:
    return CampaignSpec(
        name="walkthrough",
        base_seed=2003,
        grids=(
            # Grid mode: the full cartesian product of the axes — the
            # Fig. 1 sweep of a sender reset across the SAVE cycle.
            ScenarioGrid(
                scenario="sender_reset",
                params={
                    "k": 25,
                    "reset_after_sends": [40, 45, 50, 55, 60],
                    "messages_after_reset": 60,
                },
            ),
            # Population mode: 12 randomized receiver-reset sessions,
            # half of them with the Section 3 history-replay attack.
            ScenarioGrid(
                scenario="receiver_reset",
                params={
                    "k": 25,
                    "reset_after_receives": [40, 50, 60],
                    "messages_after_reset": 60,
                    "replay_history_after": [True, False],
                },
                sessions=12,
            ),
            # Mixed fault story: Bernoulli loss plus a sender reset.
            ScenarioGrid(
                scenario="loss_reset",
                params={
                    "k": 25,
                    "loss_rate": [0.0, 0.02, 0.05],
                    "reset_after_sends": 50,
                    "messages_after_reset": 60,
                },
                sessions=12,
            ),
        ),
    )


def main() -> None:
    spec = make_spec()
    workdir = Path(tempfile.mkdtemp(prefix="fleet_campaign_"))

    spec_path = spec.dump(workdir / "campaign.json")
    spec = CampaignSpec.load(spec_path)  # same round-trip the CLI does
    total = spec.session_count()
    print("=== fleet campaign walkthrough ===")
    print(f"spec: {spec_path} ({total} sessions, 3 scenario grids)")

    # --- first invocation, "interrupted" partway ---------------------
    store = ResultStore(workdir / "results.jsonl")
    half = spec.tasks()[: total // 2]
    for task in half:
        store.append(execute_task(task, spec.max_events))
    print(f"first run (interrupted): {len(half)} sessions persisted")

    # --- resume: same spec, same store, now on a worker pool ---------
    outcome = FleetRunner(spec, store, jobs=2).run()
    print(f"resume: skipped {outcome.skipped} finished sessions, "
          f"executed {len(outcome.executed)} new ones "
          f"({outcome.sessions_per_second:.0f} sessions/s)")

    # --- aggregate the whole campaign --------------------------------
    print()
    print(summarize(store.records()).render())
    print()
    print(f"durable store: {store.path}")
    print("re-running this spec against that store would recompute nothing.")


if __name__ == "__main__":
    main()
