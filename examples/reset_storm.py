#!/usr/bin/env python3
"""A reset storm: repeated crashes on both endpoints, with an adversary.

Stress scenario beyond anything the paper evaluates directly: six resets
alternating between sender and receiver while an adversary replays random
recorded messages throughout.  The Section 5 guarantees are per-reset, so
the whole storm must stay within budget: zero replays accepted, and lost
sequence numbers bounded by 2Kp per sender reset.

Run:  python examples/reset_storm.py
"""

from repro import ResetSchedule, build_protocol


def main() -> None:
    k = 25
    harness = build_protocol(protected=True, k_p=k, k_q=k, with_adversary=True)
    assert harness.adversary is not None

    # Alternating faults: sender at 1, 3, 5 ms; receiver at 2, 4, 6 ms.
    ResetSchedule([(0.001 * t, 0.0003) for t in (1, 3, 5)]).apply(
        harness.engine, harness.sender
    )
    ResetSchedule([(0.001 * t, 0.0003) for t in (2, 4, 6)]).apply(
        harness.engine, harness.receiver
    )

    # Background replay pressure: 40 random recorded messages per ms.
    for ms in range(1, 8):
        harness.engine.call_at(
            0.001 * ms + 0.0005,
            lambda: harness.adversary.replay_random(40, rate=250_000),
        )

    harness.sender.start_traffic(count=4000)
    harness.run(until=0.05)

    report = harness.score()
    print("=== reset storm: 3 sender + 3 receiver resets + replay noise ===")
    print(f"messages sent fresh        : {report.audit.fresh_sent}")
    print(f"delivered                  : {report.audit.delivered_uids}")
    print(f"replays injected           : {harness.adversary.injections}")
    print(f"replays accepted           : {report.replays_accepted}")
    print(f"lost seqnums per p-reset   : {report.lost_seqnums_per_reset} "
          f"(bound {2 * k} each)")
    print(f"sender gaps                : {report.gaps_sender}")
    print(f"receiver gaps              : {report.gaps_receiver}")
    print(f"converged                  : {report.converged}")
    if not report.converged:
        raise SystemExit(f"BUG: {report.bound_violations}")


if __name__ == "__main__":
    main()
